#!/usr/bin/env python3
"""A quick tour of every figure in the paper's evaluation, at reduced
scale so it finishes in under a minute.  Full-scale paper-parameter runs
live in benchmarks/ (pytest benchmarks/ --benchmark-only).

Run:  python examples/benchmark_tour.py
"""

from repro.workloads import (FIG10_CACHE_FRACTIONS, LABELS,
                             OPERATIONS, PAPER_FIG9, make_env, run_andrew,
                             run_create_and_list, run_op_costs,
                             run_postmark)
from repro.workloads.report import ComparisonRow, format_comparison, \
    format_table

SMALL = dict(files=100, dirs=10)


def tour_fig9() -> None:
    print("\n--- Figure 9: Create-And-List (scaled to 100 files) ---")
    rows_create, rows_list = [], []
    for impl in ("no-enc-md-d", "no-enc-md", "sharoes", "public",
                 "pub-opt"):
        result = run_create_and_list(make_env(impl), **SMALL)
        scale = 100 / 500
        rows_create.append(ComparisonRow(
            LABELS[impl], PAPER_FIG9[impl]["create"] * scale,
            result.create_seconds))
        rows_list.append(ComparisonRow(
            LABELS[impl], PAPER_FIG9[impl]["list"] * scale,
            result.list_seconds))
    print(format_comparison("create phase (paper scaled /5)", rows_create))
    print(format_comparison("list phase (paper scaled /5)", rows_list))


def tour_fig10() -> None:
    print("\n--- Figure 10: Postmark vs cache size (scaled) ---")
    fractions = (0.05, 0.25, 1.0)
    headers = ["implementation"] + [f"{int(f*100)}%" for f in fractions]
    rows = []
    for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
        env = make_env(impl)
        cells = [f"{run_postmark(env, files=80, transactions=80, cache_fraction=f).total_seconds:.0f}"
                 for f in fractions]
        rows.append([LABELS[impl]] + cells)
    print(format_table("postmark seconds (80 files/80 tx)", headers, rows))


def tour_andrew() -> None:
    print("\n--- Figures 11+12: Andrew benchmark ---")
    headers = ["implementation", "mkdir", "copy", "stat", "read",
               "compile", "total"]
    rows = []
    for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
        result = run_andrew(make_env(impl))
        rows.append([LABELS[impl]]
                    + [f"{result.phase_seconds[p]:.1f}"
                       for p in ("mkdir", "copy", "stat", "read",
                                 "compile")]
                    + [f"{result.total_seconds:.1f}"])
    print(format_table("andrew phase seconds", headers, rows))


def tour_fig13() -> None:
    print("\n--- Figure 13: SHAROES operation cost breakdown ---")
    costs = run_op_costs(make_env("sharoes"))
    rows = [[op,
             f"{costs[op].network_s * 1000:.0f}",
             f"{costs[op].crypto_s * 1000:.0f}",
             f"{costs[op].other_s * 1000:.0f}",
             f"{costs[op].crypto_fraction * 100:.1f}%"]
            for op in OPERATIONS]
    print(format_table("per-op costs (ms)",
                       ["operation", "NETWORK", "CRYPTO", "OTHER",
                        "crypto%"], rows))


def main() -> None:
    tour_fig9()
    tour_fig10()
    tour_andrew()
    tour_fig13()
    print("\n(benchmarks/ runs the full paper-scale versions)")


if __name__ == "__main__":
    main()
