#!/usr/bin/env python3
"""Security operations: revocation flows and SSP-misbehaviour detection.

Demonstrates (1) immediate vs lazy revocation, (2) group-membership
revocation with key rotation, and (3) what happens when the SSP tampers
with stored blobs -- every paper threat either fails for lack of a key or
is detected by client-side verification.

Run:  python examples/revocation_audit.py
"""

from repro import (IntegrityError, PermissionDenied, PrincipalRegistry,
                   SharoesFilesystem, SharoesVolume)
from repro.crypto.provider import CryptoProvider
from repro.fs.client import ClientConfig
from repro.fs.volume import block_blob_id
from repro.principals.groups import GroupKeyService
from repro.storage.faults import TamperingServer


def fresh(volume, registry, user, **cfg):
    fs = SharoesFilesystem(volume, registry.user(user),
                           config=ClientConfig(**cfg))
    fs.mount()
    return fs


def main() -> None:
    registry = PrincipalRegistry()
    for name in ("amy", "ben", "eve"):
        registry.create_user(name)
    registry.create_group("eng", {"amy", "ben"})

    # The SSP is malicious-capable: we enable tampering later.
    server = TamperingServer(should_tamper=lambda bid: False)
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="amy", root_group="eng")
    service = GroupKeyService(registry, server, CryptoProvider())
    service.publish_all()

    amy = fresh(volume, registry, "amy")
    amy.create_file("/spec.txt", b"confidential spec", mode=0o640)

    # --- immediate revocation -------------------------------------------------
    print("ben reads:", fresh(volume, registry, "ben")
          .read_file("/spec.txt").decode())
    amy.chmod("/spec.txt", 0o600)  # immediate: re-encrypts right now
    try:
        fresh(volume, registry, "ben").read_file("/spec.txt")
    except PermissionDenied:
        print("ben revoked (immediate mode: data re-encrypted at chmod)")

    # --- lazy revocation -----------------------------------------------------------
    lazy_amy = fresh(volume, registry, "amy", immediate_revocation=False)
    lazy_amy.create_file("/notes.txt", b"draft", mode=0o644)
    lazy_amy.chmod("/notes.txt", 0o600)
    print("lazy chmod done -- re-encryption deferred to the next write")
    lazy_amy.write_file("/notes.txt", b"final")  # rekey happens here
    print("next write rotated the keys (Plutus-style lazy revocation)")

    # --- group membership revocation ------------------------------------------------
    amy.create_file("/eng-only.txt", b"team data", mode=0o640)
    service.revoke_member("eng", "ben")
    amy.rekey("/eng-only.txt")
    amy.rekey("/")  # ancestors too: ben knew their group MEKs
    try:
        fresh(volume, registry, "ben").read_file("/eng-only.txt")
    except PermissionDenied:
        print("ben left eng: group key rotated, objects rekeyed, denied")

    # --- the SSP turns malicious -------------------------------------------------------
    inode = amy.getattr("/spec.txt").inode
    server._should_tamper = (
        lambda bid: bid.kind == "data" and bid.inode == inode)
    auditor = fresh(volume, registry, "amy")
    try:
        auditor.read_file("/spec.txt")
    except IntegrityError as exc:
        print("SSP tampering detected:", type(exc).__name__)

    # Blob swapping (a validly-signed blob served at the wrong address)
    server._should_tamper = lambda bid: False
    amy2 = fresh(volume, registry, "amy")
    amy2.create_file("/a.txt", b"AAAA", mode=0o600)
    amy2.create_file("/b.txt", b"BBBB", mode=0o600)
    ia = amy2.getattr("/a.txt").inode
    ib = amy2.getattr("/b.txt").inode
    server.put(block_blob_id(ib, 0), server.get(block_blob_id(ia, 0)))
    amy2.cache.clear()
    try:
        amy2.read_file("/b.txt")
    except Exception as exc:
        print("blob-swap detected:", type(exc).__name__)

    # The curious SSP never saw a byte of plaintext.
    everything = b"".join(server.raw_blobs().values())
    for secret in (b"confidential spec", b"team data", b"final"):
        assert secret not in everything
    print("audit: no plaintext at the SSP, ever")


if __name__ == "__main__":
    main()
