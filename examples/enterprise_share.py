#!/usr/bin/env python3
"""Enterprise transition: migrate an existing *nix tree to the SSP,
then exercise the sharing semantics the paper's introduction motivates --
group collaboration, exec-only drop boxes, and POSIX-ACL split points.

Run:  python examples/enterprise_share.py
"""

from repro import (AclEntry, PermissionDenied, PrincipalRegistry,
                   SharoesFilesystem, SharoesVolume, StorageServer)
from repro.crypto.provider import CryptoProvider
from repro.migration import LocalTree, MigrationTool
from repro.principals.groups import GroupKeyService
from repro.sim import PAPER_2008, CostModel


def build_local_tree() -> LocalTree:
    """What the enterprise's storage looked like before outsourcing."""
    tree = LocalTree(root_owner="root", root_group="staff")
    tree.add_dir("/home", "root", "staff", mode=0o755)
    tree.add_dir("/home/amy", "amy", "eng", mode=0o711)  # exec-only!
    tree.add_dir("/home/amy/public", "amy", "eng", mode=0o755)
    tree.add_file("/home/amy/public/howto.md", b"# Onboarding\n...",
                  "amy", "eng", mode=0o644)
    tree.add_file("/home/amy/.netrc", b"machine ssp login amy",
                  "amy", "eng", mode=0o600)
    tree.add_dir("/teams", "root", "staff", mode=0o755)
    tree.add_dir("/teams/eng", "amy", "eng", mode=0o775)
    tree.add_file("/teams/eng/design.doc", b"the SHAROES design",
                  "amy", "eng", mode=0o664)
    # A POSIX ACL: pat (in sales) gets read on one engineering file.
    tree.add_file("/teams/eng/roadmap.txt", b"Q3: ship", "amy", "eng",
                  mode=0o660, acl=(AclEntry("pat", 0o4),))
    return tree


def main() -> None:
    registry = PrincipalRegistry()
    for name in ("root", "amy", "ben", "pat"):
        registry.create_user(name)
    registry.create_group("staff", {"root", "amy", "ben", "pat"})
    registry.create_group("eng", {"amy", "ben"})
    registry.create_group("sales", {"pat"})

    server = StorageServer()
    volume = SharoesVolume(server, registry)
    cost = CostModel(PAPER_2008)
    tool = MigrationTool(volume, cost_model=cost, compression_ratio=0.7)
    report = tool.migrate(build_local_tree())
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    print("migration:", report.summary())
    print(f"simulated transition time over the paper's DSL link: "
          f"{cost.clock.now:.1f}s")

    amy = SharoesFilesystem(volume, registry.user("amy"))
    ben = SharoesFilesystem(volume, registry.user("ben"))
    pat = SharoesFilesystem(volume, registry.user("pat"))
    for fs in (amy, ben, pat):
        fs.mount()

    # Group collaboration: ben (eng) edits the shared design doc.
    ben.append_file("/teams/eng/design.doc", b"\n+ ben's review notes")
    amy.cache.clear()
    print("amy sees:", amy.read_file("/teams/eng/design.doc").decode())

    # Exec-only home directory: pat cannot list amy's home...
    try:
        pat.readdir("/home/amy")
    except PermissionDenied:
        print("pat cannot list /home/amy (exec-only CAP)")
    # ...but can fetch a file whose exact name he knows.
    print("pat fetches by name:",
          pat.read_file("/home/amy/public/howto.md").decode().split()[1])
    # amy's private dotfile stays hers alone.
    try:
        pat.read_file("/home/amy/.netrc")
    except PermissionDenied:
        print("pat denied /home/amy/.netrc")

    # ACL split point: pat reads the roadmap through his lockbox.
    print("pat reads via ACL:",
          pat.read_file("/teams/eng/roadmap.txt").decode())
    try:
        pat.write_file("/teams/eng/roadmap.txt", b"Q3: slip")
    except PermissionDenied:
        print("pat's ACL grants read only -- write denied")

    # New hire: under Scheme-2, provisioning is just a superblock.
    registry.create_user("zoe")
    registry.add_member("staff", "zoe")
    volume.provision_user("zoe")
    zoe = SharoesFilesystem(volume, registry.user("zoe"))
    zoe.mount()
    print("zoe (new hire) lists /teams:", zoe.readdir("/teams"))


if __name__ == "__main__":
    main()
