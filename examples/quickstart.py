#!/usr/bin/env python3
"""Quickstart: set up an outsourced volume, share a file, see the paper's
access-control semantics work end to end.

Run:  python examples/quickstart.py
"""

from repro import (PermissionDenied, PrincipalRegistry, SharoesFilesystem,
                   SharoesVolume, StorageServer, format_mode)
from repro.crypto.provider import CryptoProvider
from repro.principals.groups import GroupKeyService


def main() -> None:
    # 1. Enterprise-side setup: users, groups, their key pairs (the PKI).
    registry = PrincipalRegistry()
    alice = registry.create_user("alice")
    bob = registry.create_user("bob")
    carol = registry.create_user("carol")
    registry.create_group("eng", {"alice", "bob"})

    # 2. The untrusted SSP, and a formatted SHAROES volume on it.
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    # 3. alice mounts (one public-key op: decrypting her superblock).
    fs = SharoesFilesystem(volume, alice)
    fs.mount()
    fs.mkdir("/projects", mode=0o750)
    fs.create_file("/projects/plan.txt", b"ship the prototype", mode=0o640)
    stat = fs.getattr("/projects/plan.txt")
    print(f"created /projects/plan.txt "
          f"({format_mode(stat.mode)}, {stat.owner}:{stat.group})")

    # 4. bob is in eng: group read works, in-band -- no key exchange.
    bob_fs = SharoesFilesystem(volume, bob)
    bob_fs.mount()
    print("bob reads:", bob_fs.read_file("/projects/plan.txt").decode())

    # 5. carol is not in eng: the 750 directory stops her at traversal.
    carol_fs = SharoesFilesystem(volume, carol)
    carol_fs.mount()
    try:
        carol_fs.read_file("/projects/plan.txt")
    except PermissionDenied as exc:
        print("carol denied:", exc)

    # 6. The SSP stored only ciphertext -- prove it.
    everything = b"".join(server.raw_blobs().values())
    assert b"ship the prototype" not in everything
    assert b"plan.txt" not in everything
    print(f"SSP holds {server.blob_count()} blobs, "
          f"{server.stored_bytes()} bytes -- zero plaintext leaked")


if __name__ == "__main__":
    main()
