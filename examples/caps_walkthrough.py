#!/usr/bin/env python3
"""CAP walkthrough: how file and directory CAPs interplay along a path
(the paper's Appendix-A integrated example, made executable).

Builds /home/amy (exec-only) / papers (read-exec) / draft.txt (group rw)
and narrates, for each user class, exactly which keys each hop yields and
therefore what each user can do.

Run:  python examples/caps_walkthrough.py
"""

from repro import (PermissionDenied, PrincipalRegistry, SharoesFilesystem,
                   SharoesVolume, StorageServer, format_mode)
from repro.caps.model import cap_for_bits
from repro.crypto.provider import CryptoProvider
from repro.fs.permissions import triple
from repro.principals.groups import GroupKeyService

CLASSES = ("owner", "group", "other")


def describe(fs, path: str) -> None:
    stat = fs.getattr(path)
    print(f"\n{path}  ({stat.ftype}, {format_mode(stat.mode)}, "
          f"{stat.owner}:{stat.group})")
    for cls in CLASSES:
        bits = triple(stat.mode, cls)
        try:
            cap = cap_for_bits(bits, stat.ftype)
        except Exception as exc:
            print(f"  {cls:6s} -> unsupported ({exc})")
            continue
        keys = [name for name, have in (
            ("DEK", cap.dek), ("DVK", cap.dvk), ("DSK", cap.dsk)) if have]
        extra = (f", table view: {cap.table_view}"
                 if stat.ftype == "dir" else "")
        print(f"  {cls:6s} -> CAP {cap.cap_id:5s} keys: "
              f"{'+'.join(keys) or 'none'}{extra}")


def attempt(label, fn) -> None:
    try:
        result = fn()
        shown = result if isinstance(result, (str, list)) else (
            result.decode() if isinstance(result, bytes) else "ok")
        print(f"  {label:42s} -> {shown}")
    except PermissionDenied:
        print(f"  {label:42s} -> PermissionDenied")
    except FileNotFoundError:
        print(f"  {label:42s} -> not found")


def main() -> None:
    registry = PrincipalRegistry()
    for name in ("amy", "ben", "carl"):
        registry.create_user(name)
    registry.create_group("eng", {"amy", "ben"})
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="amy", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    amy = SharoesFilesystem(volume, registry.user("amy"))
    amy.mount()
    amy.mkdir("/home", mode=0o755)
    amy.mkdir("/home/amy", mode=0o711)            # exec-only to others
    amy.mkdir("/home/amy/papers", mode=0o755)     # read-exec to others
    amy.create_file("/home/amy/papers/draft.txt",
                    b"sharoes draft v1", mode=0o664)
    amy.create_file("/home/amy/todo.txt", b"private", mode=0o600)

    print("=== CAP designs along the hierarchy (Figures 4 & 5) ===")
    for path in ("/home", "/home/amy", "/home/amy/papers",
                 "/home/amy/papers/draft.txt", "/home/amy/todo.txt"):
        describe(amy, path)

    print("\n=== what each principal can actually do ===")
    ben = SharoesFilesystem(volume, registry.user("ben"))    # group eng
    carl = SharoesFilesystem(volume, registry.user("carl"))  # other
    ben.mount()
    carl.mount()

    print("ben (group eng):")
    attempt("ls /home/amy", lambda: ben.readdir("/home/amy"))
    attempt("read papers/draft.txt",
            lambda: ben.read_file("/home/amy/papers/draft.txt"))
    attempt("write papers/draft.txt (group rw-)",
            lambda: ben.write_file("/home/amy/papers/draft.txt",
                                   b"sharoes draft v2 (ben)"))
    attempt("read todo.txt (600)",
            lambda: ben.read_file("/home/amy/todo.txt"))

    print("carl (other):")
    attempt("ls /home/amy (exec-only)",
            lambda: carl.readdir("/home/amy"))
    attempt("cd through by exact name + ls papers",
            lambda: carl.readdir("/home/amy/papers"))
    attempt("read papers/draft.txt (other r--)",
            lambda: carl.read_file("/home/amy/papers/draft.txt"))
    attempt("write papers/draft.txt",
            lambda: carl.write_file("/home/amy/papers/draft.txt", b"x"))

    print("\nkey insight: every hop's directory table handed over exactly")
    print("the child MEK/MVK the reader's class is entitled to -- the key")
    print("distribution WAS the access control, with zero SSP trust.")


if __name__ == "__main__":
    main()
