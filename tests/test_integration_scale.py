"""Scale/soak integration: a larger migrated enterprise, randomized
operation storms, and a final audit -- all invariants must hold.
"""

import random

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import FileNotFound, PermissionDenied, SharoesError
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.migration.localfs import make_enterprise_tree
from repro.migration.migrate import MigrationTool
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.storage.server import StorageServer
from repro.tools.fsck import VolumeAuditor

N_USERS = 5


@pytest.fixture(scope="module")
def big_deployment():
    registry = PrincipalRegistry()
    users = [registry.create_user(f"user{i}", key_bits=512).user_id
             for i in range(N_USERS)]
    registry.create_group("staff", set(users), key_bits=512)
    tree = make_enterprise_tree(users, "staff", dirs_per_user=3,
                                files_per_dir=5, file_bytes=2000)
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    MigrationTool(volume).migrate(tree)
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    return registry, server, volume, tree, users


def _mount(volume, registry, user):
    fs = SharoesFilesystem(volume, registry.user(user))
    fs.mount()
    return fs


class TestMigratedScale:
    def test_every_owner_reads_their_tree(self, big_deployment):
        registry, server, volume, tree, users = big_deployment
        for user in users:
            fs = _mount(volume, registry, user)
            for d in range(3):
                names = fs.readdir(f"/home/{user}/dir{d}")
                assert len(names) == 5
                for name in names:
                    path = f"/home/{user}/dir{d}/{name}"
                    expected = tree.get(path).content
                    assert fs.read_file(path) == expected

    def test_audit_clean_after_migration(self, big_deployment):
        registry, server, volume, tree, users = big_deployment
        report = VolumeAuditor(volume).audit()
        assert report.clean, (report.integrity_errors,
                              report.structural_errors)
        dirs, files = tree.count()
        assert report.objects_visited == dirs + files

    def test_random_op_storm_preserves_invariants(self, big_deployment):
        """200 random operations by random users; afterwards the volume
        audits clean, a reference shadow model agrees on content, and
        no plaintext ever reached the SSP."""
        registry, server, volume, tree, users = big_deployment
        rng = random.Random(1234)
        clients = {u: _mount(volume, registry, u) for u in users}
        shadow: dict[str, bytes] = {}
        sentinel = b"STORM-SENTINEL-"

        for step in range(200):
            user = rng.choice(users)
            fs = clients[user]
            own_dir = f"/home/{user}/dir{rng.randrange(3)}"
            action = rng.random()
            path = f"{own_dir}/storm{step}.bin"
            if action < 0.45:
                content = sentinel + bytes([step % 256]) * rng.randint(
                    10, 400)
                fs.create_file(path, content, mode=0o640)
                shadow[path] = content
            elif action < 0.7 and shadow:
                victim = rng.choice(sorted(shadow))
                owner = victim.split("/")[2]
                clients[owner].unlink(victim)
                del shadow[victim]
            elif shadow:
                victim = rng.choice(sorted(shadow))
                owner = victim.split("/")[2]
                new_content = sentinel + b"v2" + bytes(
                    [step % 256]) * rng.randint(10, 200)
                clients[owner].write_file(victim, new_content)
                shadow[victim] = new_content

        # Shadow model agreement (fresh client, cold caches).
        checker = _mount(volume, registry, users[0])
        for path, content in shadow.items():
            owner = path.split("/")[2]
            reader = clients[owner]
            reader.cache.clear()
            assert reader.read_file(path) == content
        # Deleted files stay deleted.
        # (unlink removes the rows; resolution must fail)
        # Plaintext audit.
        everything = b"".join(server.raw_blobs().values())
        assert sentinel not in everything
        # Structural audit.
        report = VolumeAuditor(volume).audit()
        assert report.clean, (report.integrity_errors[:3],
                              report.structural_errors[:3])
        assert report.orphaned_blobs == []

    def test_cross_user_permissions_hold_at_scale(self, big_deployment):
        registry, server, volume, tree, users = big_deployment
        fs0 = _mount(volume, registry, users[0])
        denied = allowed = 0
        for path, node in tree.walk():
            if node.is_dir() or node.owner == users[0]:
                continue
            try:
                fs0.read_file(path)
                allowed += 1
                assert node.perms_readable if hasattr(
                    node, "perms_readable") else True
            except (PermissionDenied, FileNotFound):
                denied += 1
        # The generated tree mixes 600/640/644/664 modes: both outcomes
        # must occur, and group membership (staff) makes 640 readable.
        assert allowed > 0
        assert denied > 0
