"""Chaos suite: a full filesystem workload against a flaky SSP.

A seeded random workload (creates, overwrites, reads, deletes, listings)
runs through the resilient transport against a :class:`FlakyServer`
injecting transient faults at p in {0.05, 0.2}.  The invariants:

* every operation either succeeds or raises the *typed*
  :class:`TransientStorageError` -- nothing else escapes, nothing hangs;
* no undetected corruption: reads of paths whose every mutation fully
  succeeded must return exactly the modelled bytes (a giveup mid-write
  legitimately leaves old/new/mixed content, so those paths are
  quarantined until repaired);
* after healing the SSP and repairing quarantined paths, a full
  :class:`VolumeAuditor` fsck is clean (orphaned blobs from interrupted
  operations are allowed; integrity/structural errors are not);
* the transport's retry/backoff/breaker counters reconcile exactly with
  the injector's fault count, and total backoff shows up in the
  simulated-clock :class:`CostBreakdown` (FREE profile: the NETWORK
  bucket is *only* backoff);
* the same seed replays the same run, event for event.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (ClientCrashed, FileNotFound, SharoesError,
                          TransientStorageError)
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.sim.costmodel import CostModel
from repro.sim.profiles import FREE
from repro.storage.resilient import (CrashingServer, FlakyServer,
                                     RetryPolicy)
from repro.storage.server import StorageServer
from repro.tools.fsck import VolumeAuditor

DIRS = ("/d0", "/d1", "/d2")
OPS = ("create", "read", "overwrite", "read", "delete", "readdir")


def _no_faults(flaky: FlakyServer) -> dict[str, float]:
    previous = dict(flaky.rates)
    flaky.rates = {op: 0.0 for op in FlakyServer.OPS}
    return previous


def run_chaos(registry, p: float, seed: int, ops: int = 120):
    """One full chaos run; returns the replay-comparable event log."""
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    flaky = FlakyServer(server, failure_rate=p, seed=seed)
    cost = CostModel(FREE)
    # cache_bytes=0: every read genuinely crosses the (flaky) transport.
    config = ClientConfig(cache_bytes=0,
                          retry_policy=RetryPolicy(seed=seed))
    fs = SharoesFilesystem(volume, registry.user("alice"),
                           cost_model=cost, config=config, server=flaky)

    # Deterministic fault-free setup: mount + a few work directories.
    saved_rates = _no_faults(flaky)
    fs.mount()
    for directory in DIRS:
        fs.mkdir(directory)
    flaky.rates = saved_rates
    transport = fs.server
    assert transport is not server  # the resilient layer is in place

    rng = random.Random(seed)
    model: dict[str, bytes] = {}  # path -> bytes the SSP must hold
    uncertain: set[str] = set()  # a mutation gave up: content unknown
    events: list[tuple] = []
    max_size = volume.block_size * 3

    for index in range(ops):
        op = rng.choice(OPS)
        certain = sorted(model)
        if op == "create" or not certain:
            op, path = "create", f"{rng.choice(DIRS)}/f{index}"
            data = rng.randbytes(rng.randrange(0, max_size))
        elif op == "overwrite":
            path = rng.choice(certain)
            data = rng.randbytes(rng.randrange(0, max_size))
        elif op == "readdir":
            path, data = rng.choice(DIRS), b""
        else:
            path, data = rng.choice(certain), b""
        try:
            if op == "create":
                fs.create_file(path, data)
                model[path] = data
            elif op == "overwrite":
                fs.write_file(path, data)
                model[path] = data
            elif op == "delete":
                fs.unlink(path)
                del model[path]
            elif op == "readdir":
                listed = set(fs.readdir(path))
                for known in model:
                    parent, name = known.rsplit("/", 1)
                    if parent == path:
                        assert name in listed, (
                            f"{known}: committed file missing from "
                            f"readdir -- undetected corruption")
            else:
                degraded_before = transport.degraded_reads
                content = fs.read_file(path)
                if transport.degraded_reads == degraded_before:
                    assert content == model[path], (
                        f"{path}: fresh read diverged from model -- "
                        f"undetected corruption")
            events.append((index, op, path, "ok"))
        except TransientStorageError:
            # The one failure every caller must be prepared for.  A
            # mutation that gave up leaves the path indeterminate (the
            # SSP may hold old, new or partially-uploaded state), so it
            # is quarantined until the repair phase.
            events.append((index, op, path, "transient"))
            if op in ("create", "overwrite", "delete"):
                model.pop(path, None)
                uncertain.add(path)
        # Any other exception type is an undetected-corruption bug (or
        # a typing bug) and propagates to fail the test.

    # -- reconcile observability with ground truth ------------------------
    assert transport.failed_attempts == flaky.injected_faults
    assert (transport.failed_attempts
            == transport.retries + transport.giveups)
    assert transport.attempts >= flaky.injected_faults
    if flaky.injected_faults:
        assert transport.backoff_seconds > 0
    # FREE profile: requests cost zero, so NETWORK time *is* backoff.
    assert cost.totals.seconds["network"] == pytest.approx(
        transport.backoff_seconds)
    snap = fs.metrics.snapshot()
    assert snap["transport.failures"] == flaky.injected_faults
    assert snap["transport.backoff_seconds"] == pytest.approx(
        transport.backoff_seconds)

    # -- heal, repair quarantined paths, verify survivors ------------------
    _no_faults(flaky)
    healed = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(cache_bytes=0),
                               server=flaky)
    healed.mount()
    for path in sorted(uncertain):
        try:
            healed.read_file(path)
        except (FileNotFound, TransientStorageError):
            pass  # never materialized (or no entry in alice's replica)
        except SharoesError:
            # Partially-uploaded state: readable metadata pointing at
            # incomplete content.  Repair by removal.
            healed.unlink(path)
    for path, expected in sorted(model.items()):
        assert healed.read_file(path) == expected, (
            f"{path}: post-heal content diverged -- undetected "
            f"corruption")

    report = VolumeAuditor(volume).audit()
    assert report.clean, (report.summary(), report.integrity_errors,
                          report.structural_errors)

    counters = {"attempts": transport.attempts,
                "retries": transport.retries,
                "failed": transport.failed_attempts,
                "giveups": transport.giveups,
                "degraded": transport.degraded_reads,
                "breaker_opens": transport.breaker_opens,
                "backoff": transport.backoff_seconds,
                "injected": flaky.injected_faults,
                "faults_by_op": dict(flaky.faults_by_op)}
    return events, counters


@pytest.mark.parametrize("p", [0.05, 0.2])
def test_chaos_workload_survives(registry, p):
    events, counters = run_chaos(registry, p=p, seed=2008, ops=120)
    assert counters["injected"] > 0  # the run actually hurt
    assert counters["retries"] > 0  # and the transport actually healed
    outcomes = {outcome for *_rest, outcome in events}
    assert "ok" in outcomes


def test_chaos_is_deterministic_per_seed(registry):
    first = run_chaos(registry, p=0.2, seed=77, ops=60)
    second = run_chaos(registry, p=0.2, seed=77, ops=60)
    assert first[0] == second[0]  # identical event logs
    assert first[1] == second[1]  # identical counters, backoff included
    third = run_chaos(registry, p=0.2, seed=78, ops=60)
    assert third[0] != first[0]  # a different seed is a different run


def test_chaos_high_rate_mostly_transient_not_crash(registry):
    # At p=0.5 with few attempts the transport gives up often; the
    # contract (typed error or success) must still hold.
    events, counters = run_chaos(registry, p=0.5, seed=5, ops=40)
    assert counters["giveups"] > 0
    transients = [e for e in events if e[-1] == "transient"]
    assert transients  # plenty of typed failures, zero crashes


# -- writeback crash points ---------------------------------------------------
#
# The flaky faults above model an SSP that misbehaves; CrashingServer
# models a *client* that dies.  For the write-back path (pwrite /
# truncate on close) every put boundary is a distinct crash point, and
# the journal must make each one recover to exactly-old or exactly-new
# content -- never a torn file.


def run_writeback_crashes(registry, seed: int, op: str):
    """Crash a journaled client at every mutation of one writeback.

    Returns ``(total_crash_points, outcome_log)`` where the log has one
    ``(k, "old" | "new")`` entry per crash point -- replay-comparable,
    like ``run_chaos``'s event log.
    """
    rng = random.Random(seed)
    server = StorageServer()
    volume = SharoesVolume(server, registry, block_size=128)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    config = ClientConfig(journal=True, cache_bytes=0)

    def client(backend=None) -> SharoesFilesystem:
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=config, server=backend)
        fs.mount()  # replays whatever the dead client left pending
        return fs

    old = rng.randbytes(128 * 3)
    new = rng.randbytes(200)
    offset = rng.randrange(0, 128 * 2)
    cut = rng.randrange(0, len(old))
    client().create_file("/f", old)
    if op == "pwrite":
        buf = bytearray(old)
        buf[offset:offset + len(new)] = new
        expected = bytes(buf)
    else:
        expected = old[:cut]

    def run(fs: SharoesFilesystem) -> None:
        with fs.open("/f", "rw") as handle:
            if op == "pwrite":
                handle.pwrite(new, offset)
            else:
                handle.truncate(cut)

    snapshot = server.snapshot_blobs()
    counting = CrashingServer(server)
    run(client(counting))
    total = counting.mutations
    assert client().read_file("/f") == expected

    log = []
    for k in range(1, total + 1):
        server.restore_blobs(snapshot)
        crasher = CrashingServer(server, crash_after=k)
        with pytest.raises(ClientCrashed):
            run(client(crasher))
        fs = client()
        content = fs.read_file("/f")
        assert content in (old, expected), (
            f"{op} k={k}: torn writeback -- {len(content)} bytes "
            f"matching neither old nor new content")
        report = VolumeAuditor(volume).audit()
        assert report.clean and not report.orphaned_blobs, (
            f"{op} k={k}: {report.summary()}")
        log.append((k, "old" if content == old else "new"))
    return total, log


@pytest.mark.parametrize("op", ["pwrite", "truncate"])
def test_writeback_crash_every_put_boundary_recovers(registry, op):
    total, log = run_writeback_crashes(registry, seed=2008, op=op)
    assert total >= 3  # genuinely multi-blob: block 0 + data + journal
    # k=1 kills the intent append: nothing was sent, content stays old.
    assert log[0] == (1, "old")
    # Every later point is past the intent: recovery rolls forward.
    assert all(state == "new" for _, state in log[1:])


@pytest.mark.parametrize("op", ["pwrite", "truncate"])
def test_writeback_crash_sweep_deterministic_per_seed(registry, op):
    first = run_writeback_crashes(registry, seed=31, op=op)
    second = run_writeback_crashes(registry, seed=31, op=op)
    assert first == second
