"""Chaos suite: a full filesystem workload against a flaky SSP.

A seeded random workload (creates, overwrites, reads, deletes, listings)
runs through the resilient transport against a :class:`FlakyServer`
injecting transient faults at p in {0.05, 0.2}.  The invariants:

* every operation either succeeds or raises the *typed*
  :class:`TransientStorageError` -- nothing else escapes, nothing hangs;
* no undetected corruption: reads of paths whose every mutation fully
  succeeded must return exactly the modelled bytes (a giveup mid-write
  legitimately leaves old/new/mixed content, so those paths are
  quarantined until repaired);
* after healing the SSP and repairing quarantined paths, a full
  :class:`VolumeAuditor` fsck is clean (orphaned blobs from interrupted
  operations are allowed; integrity/structural errors are not);
* the transport's retry/backoff/breaker counters reconcile exactly with
  the injector's fault count, and total backoff shows up in the
  simulated-clock :class:`CostBreakdown` (FREE profile: the NETWORK
  bucket is *only* backoff);
* the same seed replays the same run, event for event.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (ClientCrashed, FileNotFound, SharoesError,
                          StaleEpochError, TransientStorageError)
from repro.fs.client import (_BATCH_SIZE_BUCKETS, ClientConfig,
                             SharoesFilesystem)
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.sim.costmodel import CostModel
from repro.sim.profiles import FREE
from repro.storage.blobs import data_blob, lease_blob
from repro.storage.resilient import (CrashingServer, FlakyServer,
                                     ResilientTransport, RetryPolicy,
                                     ServerWrapper)
from repro.storage.server import BatchOp, StorageServer
from repro.tools.fsck import VolumeAuditor

DIRS = ("/d0", "/d1", "/d2")
OPS = ("create", "read", "overwrite", "read", "delete", "readdir")


def _no_faults(flaky: FlakyServer) -> dict[str, float]:
    previous = dict(flaky.rates)
    flaky.rates = {op: 0.0 for op in FlakyServer.OPS}
    return previous


def run_chaos(registry, p: float, seed: int, ops: int = 120):
    """One full chaos run; returns the replay-comparable event log."""
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    flaky = FlakyServer(server, failure_rate=p, seed=seed)
    cost = CostModel(FREE)
    # cache_bytes=0: every read genuinely crosses the (flaky) transport.
    config = ClientConfig(cache_bytes=0,
                          retry_policy=RetryPolicy(seed=seed))
    fs = SharoesFilesystem(volume, registry.user("alice"),
                           cost_model=cost, config=config, server=flaky)

    # Deterministic fault-free setup: mount + a few work directories.
    saved_rates = _no_faults(flaky)
    fs.mount()
    for directory in DIRS:
        fs.mkdir(directory)
    flaky.rates = saved_rates
    transport = fs.server
    assert transport is not server  # the resilient layer is in place

    rng = random.Random(seed)
    model: dict[str, bytes] = {}  # path -> bytes the SSP must hold
    uncertain: set[str] = set()  # a mutation gave up: content unknown
    events: list[tuple] = []
    max_size = volume.block_size * 3

    for index in range(ops):
        op = rng.choice(OPS)
        certain = sorted(model)
        if op == "create" or not certain:
            op, path = "create", f"{rng.choice(DIRS)}/f{index}"
            data = rng.randbytes(rng.randrange(0, max_size))
        elif op == "overwrite":
            path = rng.choice(certain)
            data = rng.randbytes(rng.randrange(0, max_size))
        elif op == "readdir":
            path, data = rng.choice(DIRS), b""
        else:
            path, data = rng.choice(certain), b""
        try:
            if op == "create":
                fs.create_file(path, data)
                model[path] = data
            elif op == "overwrite":
                fs.write_file(path, data)
                model[path] = data
            elif op == "delete":
                fs.unlink(path)
                del model[path]
            elif op == "readdir":
                listed = set(fs.readdir(path))
                for known in model:
                    parent, name = known.rsplit("/", 1)
                    if parent == path:
                        assert name in listed, (
                            f"{known}: committed file missing from "
                            f"readdir -- undetected corruption")
            else:
                degraded_before = transport.degraded_reads
                content = fs.read_file(path)
                if transport.degraded_reads == degraded_before:
                    assert content == model[path], (
                        f"{path}: fresh read diverged from model -- "
                        f"undetected corruption")
            events.append((index, op, path, "ok"))
        except TransientStorageError:
            # The one failure every caller must be prepared for.  A
            # mutation that gave up leaves the path indeterminate (the
            # SSP may hold old, new or partially-uploaded state), so it
            # is quarantined until the repair phase.
            events.append((index, op, path, "transient"))
            if op in ("create", "overwrite", "delete"):
                model.pop(path, None)
                uncertain.add(path)
        # Any other exception type is an undetected-corruption bug (or
        # a typing bug) and propagates to fail the test.

    # -- reconcile observability with ground truth ------------------------
    assert transport.failed_attempts == flaky.injected_faults
    assert (transport.failed_attempts
            == transport.retries + transport.giveups)
    assert transport.attempts >= flaky.injected_faults
    if flaky.injected_faults:
        assert transport.backoff_seconds > 0
    # FREE profile: requests cost zero, so NETWORK time *is* backoff.
    assert cost.totals.seconds["network"] == pytest.approx(
        transport.backoff_seconds)
    snap = fs.metrics.snapshot()
    assert snap["transport.failures"] == flaky.injected_faults
    assert snap["transport.backoff_seconds"] == pytest.approx(
        transport.backoff_seconds)

    # -- heal, repair quarantined paths, verify survivors ------------------
    _no_faults(flaky)
    healed = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(cache_bytes=0),
                               server=flaky)
    healed.mount()
    for path in sorted(uncertain):
        try:
            healed.read_file(path)
        except (FileNotFound, TransientStorageError):
            pass  # never materialized (or no entry in alice's replica)
        except SharoesError:
            # Partially-uploaded state: readable metadata pointing at
            # incomplete content.  Repair by removal.
            healed.unlink(path)
    for path, expected in sorted(model.items()):
        assert healed.read_file(path) == expected, (
            f"{path}: post-heal content diverged -- undetected "
            f"corruption")

    report = VolumeAuditor(volume).audit()
    assert report.clean, (report.summary(), report.integrity_errors,
                          report.structural_errors)

    counters = {"attempts": transport.attempts,
                "retries": transport.retries,
                "failed": transport.failed_attempts,
                "giveups": transport.giveups,
                "degraded": transport.degraded_reads,
                "breaker_opens": transport.breaker_opens,
                "backoff": transport.backoff_seconds,
                "injected": flaky.injected_faults,
                "faults_by_op": dict(flaky.faults_by_op)}
    return events, counters


@pytest.mark.parametrize("p", [0.05, 0.2])
def test_chaos_workload_survives(registry, p):
    events, counters = run_chaos(registry, p=p, seed=2008, ops=120)
    assert counters["injected"] > 0  # the run actually hurt
    assert counters["retries"] > 0  # and the transport actually healed
    outcomes = {outcome for *_rest, outcome in events}
    assert "ok" in outcomes


def test_chaos_is_deterministic_per_seed(registry):
    first = run_chaos(registry, p=0.2, seed=77, ops=60)
    second = run_chaos(registry, p=0.2, seed=77, ops=60)
    assert first[0] == second[0]  # identical event logs
    assert first[1] == second[1]  # identical counters, backoff included
    third = run_chaos(registry, p=0.2, seed=78, ops=60)
    assert third[0] != first[0]  # a different seed is a different run


def test_chaos_high_rate_mostly_transient_not_crash(registry):
    # At p=0.5 with few attempts the transport gives up often; the
    # contract (typed error or success) must still hold.
    events, counters = run_chaos(registry, p=0.5, seed=5, ops=40)
    assert counters["giveups"] > 0
    transients = [e for e in events if e[-1] == "transient"]
    assert transients  # plenty of typed failures, zero crashes


# -- writeback crash points ---------------------------------------------------
#
# The flaky faults above model an SSP that misbehaves; CrashingServer
# models a *client* that dies.  For the write-back path (pwrite /
# truncate on close) every put boundary is a distinct crash point, and
# the journal must make each one recover to exactly-old or exactly-new
# content -- never a torn file.


def run_writeback_crashes(registry, seed: int, op: str):
    """Crash a journaled client at every mutation of one writeback.

    Returns ``(total_crash_points, outcome_log)`` where the log has one
    ``(k, "old" | "new")`` entry per crash point -- replay-comparable,
    like ``run_chaos``'s event log.
    """
    rng = random.Random(seed)
    server = StorageServer()
    volume = SharoesVolume(server, registry, block_size=128)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    config = ClientConfig(journal=True, cache_bytes=0)

    def client(backend=None) -> SharoesFilesystem:
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=config, server=backend)
        fs.mount()  # replays whatever the dead client left pending
        return fs

    old = rng.randbytes(128 * 3)
    new = rng.randbytes(200)
    offset = rng.randrange(0, 128 * 2)
    cut = rng.randrange(0, len(old))
    client().create_file("/f", old)
    if op == "pwrite":
        buf = bytearray(old)
        buf[offset:offset + len(new)] = new
        expected = bytes(buf)
    else:
        expected = old[:cut]

    def run(fs: SharoesFilesystem) -> None:
        with fs.open("/f", "rw") as handle:
            if op == "pwrite":
                handle.pwrite(new, offset)
            else:
                handle.truncate(cut)

    snapshot = server.snapshot_blobs()
    counting = CrashingServer(server)
    run(client(counting))
    total = counting.mutations
    assert client().read_file("/f") == expected

    log = []
    for k in range(1, total + 1):
        server.restore_blobs(snapshot)
        crasher = CrashingServer(server, crash_after=k)
        with pytest.raises(ClientCrashed):
            run(client(crasher))
        fs = client()
        content = fs.read_file("/f")
        assert content in (old, expected), (
            f"{op} k={k}: torn writeback -- {len(content)} bytes "
            f"matching neither old nor new content")
        report = VolumeAuditor(volume).audit()
        assert report.clean and not report.orphaned_blobs, (
            f"{op} k={k}: {report.summary()}")
        log.append((k, "old" if content == old else "new"))
    return total, log


@pytest.mark.parametrize("op", ["pwrite", "truncate"])
def test_writeback_crash_every_put_boundary_recovers(registry, op):
    total, log = run_writeback_crashes(registry, seed=2008, op=op)
    assert total >= 3  # genuinely multi-blob: block 0 + data + journal
    # k=1 kills the intent append: nothing was sent, content stays old.
    assert log[0] == (1, "old")
    # Every later point is past the intent: recovery rolls forward.
    assert all(state == "new" for _, state in log[1:])


@pytest.mark.parametrize("op", ["pwrite", "truncate"])
def test_writeback_crash_sweep_deterministic_per_seed(registry, op):
    first = run_writeback_crashes(registry, seed=31, op=op)
    second = run_writeback_crashes(registry, seed=31, op=op)
    assert first == second


# -- faults inside a batch frame ----------------------------------------------
#
# Batching changes the failure surface: one OP_BATCH frame can die at
# sub-op k with a committed prefix behind it.  The transport's contract
# is that the retry frame carries *only* the unapplied tail (re-sending
# an applied put would be wasted WAN bytes; re-sending an applied
# delete or CAS would change semantics), that fencing stays terminal
# even mid-frame, and that a client crash mid-frame leaves exactly the
# prefix the crash point dictates.


class _PutLog(ServerWrapper):
    """Records every put reaching the backend; optionally fails once.

    ``fail_on_call=k`` raises a transient fault on the k-th put (1-based,
    counted across frames) *before* it touches the backend, then heals --
    a deterministic "SSP hiccup at sub-op k" for batch-retry tests.
    """

    def __init__(self, inner, fail_on_call: int | None = None):
        super().__init__(inner, name="put-log")
        self.calls: list = []
        self.fail_on_call = fail_on_call

    def put(self, blob_id, payload):
        self.calls.append(blob_id)
        if self.fail_on_call is not None and \
                len(self.calls) == self.fail_on_call:
            self.fail_on_call = None
            raise TransientStorageError(
                f"injected fault at put #{len(self.calls)}")
        self.inner.put(blob_id, payload)


def _transport(injector) -> tuple[ResilientTransport, CostModel]:
    cost = CostModel(FREE)
    policy = RetryPolicy(jitter=False, base_delay_s=0.01, seed=0)
    return ResilientTransport(injector, policy, cost=cost), cost


def test_batch_retry_resends_only_unapplied_tail():
    server = StorageServer()
    injector = _PutLog(server, fail_on_call=3)
    transport, _ = _transport(injector)
    blobs = [data_blob(100 + i) for i in range(5)]
    ops = [BatchOp.put(b, bytes([i]) * 32) for i, b in enumerate(blobs)]

    replies = transport.batch(ops)

    assert [r.status for r in replies] == ["ok"] * 5
    # Frame 1 applied blobs 0-1 and died at blob 2; frame 2 carried only
    # the unapplied tail.  The committed prefix was never re-sent.
    assert injector.calls == [blobs[0], blobs[1], blobs[2],
                              blobs[2], blobs[3], blobs[4]]
    assert transport.retries == 1
    assert transport.failed_attempts == 1
    assert transport.giveups == 0
    for i, blob_id in enumerate(blobs):
        assert server.get(blob_id) == bytes([i]) * 32


def test_batch_flaky_first_subop_resends_whole_frame():
    # The degenerate boundary: k=1 means nothing committed, so the
    # "tail" is the entire frame.
    server = StorageServer()
    injector = _PutLog(server, fail_on_call=1)
    transport, _ = _transport(injector)
    blobs = [data_blob(110 + i) for i in range(3)]

    replies = transport.batch([BatchOp.put(b, b"x") for b in blobs])

    assert [r.status for r in replies] == ["ok"] * 3
    assert injector.calls == [blobs[0], blobs[0], blobs[1], blobs[2]]
    assert transport.retries == 1


def test_batch_exhausted_retries_mark_tail_unattempted():
    # Every attempt dies at the same sub-op: the transport gives up with
    # the committed prefix ok, the poisoned sub-op a transient error,
    # and the tail unattempted -- safe to re-send verbatim later.
    server = StorageServer()

    class _AlwaysFailBlob(ServerWrapper):
        def __init__(self, inner, poison):
            super().__init__(inner, name="poison")
            self.poison = poison

        def put(self, blob_id, payload):
            if blob_id == self.poison:
                raise TransientStorageError(f"poisoned {blob_id}")
            self.inner.put(blob_id, payload)

    blobs = [data_blob(120 + i) for i in range(4)]
    transport, _ = _transport(_AlwaysFailBlob(server, blobs[2]))

    replies = transport.batch([BatchOp.put(b, b"y") for b in blobs])

    assert [r.status for r in replies] == ["ok", "ok", "error",
                                           "unattempted"]
    assert replies[2].transient  # typed, retryable -- not a crash
    assert transport.giveups == 1
    assert server.exists(blobs[0]) and server.exists(blobs[1])
    assert not server.exists(blobs[2]) and not server.exists(blobs[3])


def test_batch_fenced_subop_is_terminal_no_retry_burn():
    server = StorageServer()
    transport, _ = _transport(server)
    fence = lease_blob(7)
    server.put(fence, (5).to_bytes(8, "big") + b"lease-record")
    blobs = [data_blob(130 + i) for i in range(3)]

    replies = transport.batch([
        BatchOp.put(blobs[0], b"a"),
        BatchOp.put_fenced(blobs[1], b"b", fence, 3),  # zombie epoch
        BatchOp.put(blobs[2], b"c"),
    ])

    assert [r.status for r in replies] == ["ok", "fenced", "unattempted"]
    assert replies[1].epoch == 5  # the store reports who fenced us out
    # Fencing is a verdict, not a fault: zero retries, zero backoff.
    assert transport.retries == 0
    assert transport.failed_attempts == 0
    assert transport.backoff_seconds == 0
    assert server.exists(blobs[0])
    assert not server.exists(blobs[1]) and not server.exists(blobs[2])
    with pytest.raises(StaleEpochError) as exc:
        replies[1].raise_for_status()
    assert exc.value.current_epoch == 5


def test_batch_crash_midframe_applies_exact_prefix():
    # A client crash at sub-op k is not a storage outcome: it must
    # propagate (no retry!) leaving exactly k-1 sub-ops applied.
    blobs = [data_blob(140 + i) for i in range(4)]
    for k in range(1, len(blobs) + 1):
        server = StorageServer()
        crasher = CrashingServer(server, crash_after=k)
        transport, _ = _transport(crasher)
        with pytest.raises(ClientCrashed):
            transport.batch([BatchOp.put(b, b"z") for b in blobs])
        assert transport.retries == 0
        applied = [b for b in blobs if server.exists(b)]
        assert applied == blobs[:k - 1], f"crash at k={k}"


def test_batch_chaos_workload_heals_and_audits_clean(registry):
    """End-to-end: multi-blob writes ride OP_BATCH frames through a
    flaky SSP; faults land *inside* frames, the transport heals them,
    counters reconcile, and fsck audits the volume clean."""
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()

    flaky = FlakyServer(server, failure_rate={"put": 0.2}, seed=11)
    cost = CostModel(FREE)
    config = ClientConfig(cache_bytes=0, retry_policy=RetryPolicy(seed=11))
    fs = SharoesFilesystem(volume, registry.user("alice"),
                           cost_model=cost, config=config, server=flaky)
    saved = _no_faults(flaky)
    fs.mount()
    flaky.rates = saved
    transport = fs.server

    # Multi-block files force multi-blob frames; every put inside them
    # rolls the injector's dice individually.
    payload = b"batched under fire " * (volume.block_size // 8)
    fs.create_file("/big", payload)
    for i in range(8):
        fs.create_file(f"/f{i}", bytes([65 + i]) * 64)
    fs.write_file("/big", payload[::-1])

    hist = fs.metrics.histogram("client.batch.size",
                                buckets=_BATCH_SIZE_BUCKETS)
    assert hist.count > 0 and hist.total > hist.count  # real frames
    assert flaky.injected_faults > 0  # faults really fired mid-frame
    # The single-op reconciliation survives batching: one transient
    # reply = one recorded failure, however many sub-ops rode the frame.
    assert transport.failed_attempts == flaky.injected_faults
    assert (transport.failed_attempts
            == transport.retries + transport.giveups)
    assert transport.giveups == 0  # this seed heals everything

    _no_faults(flaky)
    assert fs.read_file("/big") == payload[::-1]
    for i in range(8):
        assert fs.read_file(f"/f{i}") == bytes([65 + i]) * 64

    report = VolumeAuditor(volume).audit()
    assert report.clean, (report.summary(), report.integrity_errors,
                          report.structural_errors)
