"""Shared fixtures: a small enterprise with users, groups and a volume.

Key generation dominates test runtime, so user key pairs are minted once
per session and cloned into fresh registries per test.
"""

from __future__ import annotations

import pytest

from repro.crypto import rsa
from repro.crypto.provider import CryptoProvider
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.principals.users import User
from repro.sim.costmodel import CostModel
from repro.sim.profiles import FREE, PAPER_2008
from repro.storage.server import StorageServer

USER_NAMES = ("alice", "bob", "carol", "dave")


@pytest.fixture(scope="session")
def session_keypairs() -> dict[str, rsa.KeyPair]:
    """Expensive RSA key generation, done once per test session."""
    return {name: rsa.generate_keypair(512) for name in USER_NAMES}


@pytest.fixture
def registry(session_keypairs) -> PrincipalRegistry:
    """alice+bob in group eng; carol in group hr; dave groupless."""
    reg = PrincipalRegistry()
    for name in USER_NAMES:
        reg.add_user(User(user_id=name, keypair=session_keypairs[name]))
    reg.create_group("eng", {"alice", "bob"}, key_bits=512)
    reg.create_group("hr", {"carol"}, key_bits=512)
    return reg


@pytest.fixture
def server() -> StorageServer:
    return StorageServer()


@pytest.fixture
def volume(server, registry) -> SharoesVolume:
    """A formatted Scheme-2 volume rooted at alice:eng 0755."""
    vol = SharoesVolume(server, registry)
    vol.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    return vol


@pytest.fixture
def make_fs(volume, registry):
    """Factory: a mounted client for any user (zero-cost profile)."""

    def factory(user_id: str = "alice",
                config: ClientConfig | None = None,
                with_costs: bool = False) -> SharoesFilesystem:
        cost = CostModel(PAPER_2008 if with_costs else FREE)
        fs = SharoesFilesystem(volume, registry.user(user_id),
                               cost_model=cost, config=config)
        fs.mount()
        return fs

    return factory


@pytest.fixture
def alice_fs(make_fs) -> SharoesFilesystem:
    return make_fs("alice")


@pytest.fixture
def bob_fs(make_fs) -> SharoesFilesystem:
    return make_fs("bob")


@pytest.fixture
def carol_fs(make_fs) -> SharoesFilesystem:
    return make_fs("carol")


@pytest.fixture
def dave_fs(make_fs) -> SharoesFilesystem:
    return make_fs("dave")
