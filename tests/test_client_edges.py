"""Client edge cases: root operations, volume lifecycle, caching modes,
chmod corner cases, SP 800-38A multi-block AES vectors."""

import pytest

from repro.crypto import aes
from repro.errors import (FileExists, PermissionDenied, SharoesError,
                          UnsupportedPermission)
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.path import InvalidPath
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.crypto.provider import CryptoProvider


class TestSp80038aVectors:
    """Full four-block NIST SP 800-38A vectors for CBC and CTR."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    PLAIN = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710")

    def test_cbc_f21(self):
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
            "73bed6b8e3c1743b7116e69e22229516"
            "3ff1caa1681fac09120eca307586e1a7")
        sealed = aes.encrypt_cbc(self.KEY, self.PLAIN, iv=iv)
        # our format prepends the IV and pads; compare the raw blocks
        assert sealed[16:16 + 64] == expected
        assert aes.decrypt_cbc(self.KEY, sealed) == self.PLAIN

    def test_ctr_f51_keystream(self):
        """CTR with the NIST initial counter block: we emulate by using
        the raw block cipher on successive counters (our CTR format uses
        its own nonce layout, so the vector is checked at block level)."""
        counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        expected_first = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
        cipher = aes.AES(self.KEY)
        keystream = cipher.encrypt_block(counter)
        first = bytes(a ^ b for a, b in
                      zip(self.PLAIN[:16], keystream))
        assert first == expected_first


class TestRootOperations:
    def test_chmod_root_updates_superblocks(self, alice_fs, volume,
                                            registry):
        alice_fs.chmod("/", 0o750)
        dave = SharoesFilesystem(volume, registry.user("dave"))
        dave.mount()
        with pytest.raises(PermissionDenied):
            dave.readdir("/")
        # restore for other tests sharing the fixture volume
        alice_fs.chmod("/", 0o755)

    def test_rekey_root(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"x", mode=0o644)
        alice_fs.rekey("/")
        bob = SharoesFilesystem(volume, registry.user("bob"))
        bob.mount()
        assert bob.read_file("/f") == b"x"

    def test_cannot_unlink_root(self, alice_fs):
        with pytest.raises(InvalidPath):
            alice_fs.unlink("/")

    def test_cannot_create_root(self, alice_fs):
        with pytest.raises(InvalidPath):
            alice_fs.mkdir("/")


class TestVolumeLifecycle:
    def test_double_format_rejected(self, server, registry):
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        with pytest.raises(SharoesError):
            volume.format(root_owner="alice", root_group="eng")

    def test_provision_before_format_rejected(self, server, registry):
        volume = SharoesVolume(server, registry)
        with pytest.raises(SharoesError):
            volume.provision_user("alice")

    def test_user_with_zero_root_access_gets_no_superblock(self, server,
                                                           registry):
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng",
                      root_mode=0o750)
        dave = SharoesFilesystem(volume, registry.user("dave"))
        dave.mount()  # zero CAP on root still yields a stat-able replica
        with pytest.raises(PermissionDenied):
            dave.readdir("/")

    def test_unknown_scheme_rejected(self, server, registry):
        with pytest.raises(SharoesError):
            SharoesVolume(server, registry, scheme="scheme9")


class TestChmodCorners:
    def test_chmod_to_unsupported_rejected(self, alice_fs):
        alice_fs.mknod("/f", mode=0o644)
        with pytest.raises(UnsupportedPermission):
            alice_fs.chmod("/f", 0o642)  # other -w-
        assert alice_fs.getattr("/f").mode == 0o644  # unchanged

    def test_chmod_identity_is_cheap(self, alice_fs, server):
        alice_fs.mknod("/f", mode=0o644)
        server.stats.reset()
        alice_fs.chmod("/f", 0o644)
        assert server.stats.puts_by_kind.get("data", 0) == 0

    def test_chmod_dir_grants_listing(self, alice_fs, volume, registry):
        alice_fs.mkdir("/d", mode=0o711)
        alice_fs.mknod("/d/f", mode=0o644)
        alice_fs.chmod("/d", 0o755)
        carol = SharoesFilesystem(volume, registry.user("carol"))
        carol.mount()
        assert carol.readdir("/d") == ["f"]

    def test_chmod_file_then_dir_interplay(self, alice_fs, volume,
                                           registry):
        """Opening the dir but closing the file leaves stat-only."""
        alice_fs.mkdir("/d", mode=0o700)
        alice_fs.create_file("/d/f", b"inner", mode=0o644)
        alice_fs.chmod("/d", 0o755)
        alice_fs.chmod("/d/f", 0o600)
        carol = SharoesFilesystem(volume, registry.user("carol"))
        carol.mount()
        assert carol.getattr("/d/f").mode == 0o600
        with pytest.raises(PermissionDenied):
            carol.read_file("/d/f")


class TestCacheModes:
    def test_metadata_cache_off_refetches(self, volume, registry,
                                          server):
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(metadata_cache=False))
        fs.mount()
        fs.mknod("/nocache")
        server.stats.reset()
        fs.getattr("/nocache")
        fs.getattr("/nocache")
        assert server.stats.gets_by_kind["meta"] >= 4  # 2 per stat walk

    def test_data_cache_off_refetches(self, volume, registry, server):
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(data_cache=False))
        fs.mount()
        fs.create_file("/nc", b"data" * 50)
        server.stats.reset()
        fs.read_file("/nc")
        fs.read_file("/nc")
        data_gets = [k for k in range(2)]
        assert server.stats.gets_by_kind.get("data", 0) >= 2

    def test_zero_budget_cache(self, volume, registry):
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(cache_bytes=0))
        fs.mount()
        fs.create_file("/zb", b"works without any cache")
        assert fs.read_file("/zb") == b"works without any cache"


class TestCreateEdges:
    def test_many_children_one_directory(self, alice_fs):
        alice_fs.mkdir("/wide", mode=0o755)
        for i in range(60):
            alice_fs.mknod(f"/wide/f{i:03d}")
        names = alice_fs.readdir("/wide")
        assert len(names) == 60
        assert names == sorted(names)

    def test_sibling_name_reuse_after_rename(self, alice_fs):
        alice_fs.create_file("/a", b"first")
        alice_fs.rename("/a", "/b")
        alice_fs.create_file("/a", b"second")
        assert alice_fs.read_file("/a") == b"second"
        assert alice_fs.read_file("/b") == b"first"

    def test_case_only_rename(self, alice_fs):
        alice_fs.create_file("/name", b"x")
        alice_fs.rename("/name", "/Name")
        assert alice_fs.read_file("/Name") == b"x"

    def test_create_in_renamed_directory(self, alice_fs):
        alice_fs.mkdir("/old", mode=0o755)
        alice_fs.rename("/old", "/new")
        alice_fs.create_file("/new/child", b"y")
        assert alice_fs.read_file("/new/child") == b"y"

    def test_exec_only_rename_rederives_row_keys(self, alice_fs,
                                                 carol_fs):
        """Hidden-view row keys derive from the *name*: a rename must
        re-key the row or the new name would be unfindable."""
        alice_fs.mkdir("/drop", mode=0o711)
        alice_fs.create_file("/drop/old-name", b"payload", mode=0o644)
        alice_fs.rename("/drop/old-name", "/drop/new-name")
        assert carol_fs.read_file("/drop/new-name") == b"payload"
        from repro.errors import FileNotFound
        with pytest.raises(FileNotFound):
            carol_fs.read_file("/drop/old-name")
