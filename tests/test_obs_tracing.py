"""Operation span tracing: nesting, phase attribution, exporters.

The acceptance invariant: every simulated second the cost model charges
lands in exactly one phase of exactly one root span, so the per-op phase
decomposition reconciles with the whole-run CostBreakdown.
"""

import json

import pytest

from repro.errors import IntegrityError
from repro.obs.export import JsonLinesSpanExporter, spans_to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import PHASES, Tracer, phase_breakdown, traced
from repro.sim.costmodel import CRYPTO, NETWORK, OTHER, CostModel
from repro.sim.profiles import PAPER_2008


@pytest.fixture
def traced_cost():
    """A cost model whose charges feed a tracer on the shared clock."""
    cost = CostModel(PAPER_2008)
    tracer = Tracer(clock=cost.clock, registry=MetricsRegistry())
    cost.tracer = tracer
    return cost, tracer


class TestSpanTree:
    def test_nesting_and_ids(self, traced_cost):
        _, tracer = traced_cost
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            assert tracer.depth == 1
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.children == [inner]
        assert list(outer.walk()) == [outer, inner]
        # only the root lands in the finished deque
        assert list(tracer.finished) == [outer]

    def test_charges_go_to_innermost_span(self, traced_cost):
        cost, tracer = traced_cost
        with tracer.span("op") as root:
            cost.charge(NETWORK, 1.0)
            with tracer.span("child"):
                cost.charge(NETWORK, 2.0)
        assert root.self_costs == {NETWORK: 1.0}
        assert root.children[0].self_costs == {NETWORK: 2.0}
        assert root.total_costs() == {NETWORK: 3.0}
        assert root.duration == 3.0

    def test_charge_outside_any_span_is_dropped(self, traced_cost):
        cost, tracer = traced_cost
        cost.charge(NETWORK, 1.0)
        assert tracer.depth == 0
        assert cost.totals.total == 1.0  # the model still accounts for it

    def test_to_dict_is_json_serializable(self, traced_cost):
        cost, tracer = traced_cost
        with tracer.span("op", path="/f") as root:
            with tracer.span("network", op="get"):
                cost.charge(NETWORK, 0.5)
        doc = json.loads(json.dumps(root.to_dict()))
        assert doc["name"] == "op"
        assert doc["attrs"]["path"] == "/f"
        assert doc["children"][0]["costs"][NETWORK] == 0.5
        assert doc["duration"] == 0.5


class TestPhaseBreakdown:
    def test_attribution_rules(self, traced_cost):
        cost, tracer = traced_cost
        with tracer.span("op") as root:
            with tracer.span("resolve", path="/f"):
                cost.charge(NETWORK, 1.0)   # resolve wins over category
                cost.charge(CRYPTO, 0.25)
            with tracer.span("network", op="put"):
                cost.charge(NETWORK, 2.0)
            with tracer.span("crypto", op="encrypt"):
                cost.charge(CRYPTO, 0.5)
            with tracer.span("cache", kind="data"):
                cost.charge(OTHER, 0.125)
            cost.charge(OTHER, 0.0625)
        phases = phase_breakdown(root)
        assert phases["resolve"] == 1.25
        assert phases["network"] == 2.0
        assert phases["crypto"] == 0.5
        assert phases["cache"] == 0.125
        assert phases["other"] == 0.0625

    def test_every_second_lands_in_exactly_one_phase(self, traced_cost):
        cost, tracer = traced_cost
        with tracer.span("op") as root:
            with tracer.span("resolve"):
                cost.charge(NETWORK, 0.3)
                with tracer.span("crypto"):  # nested under resolve: resolve
                    cost.charge(CRYPTO, 0.7)
            cost.charge(CRYPTO, 0.11)
        phases = phase_breakdown(root)
        assert set(phases) == set(PHASES)
        assert sum(phases.values()) == pytest.approx(root.duration)
        assert phases["resolve"] == pytest.approx(1.0)
        assert phases["crypto"] == pytest.approx(0.11)


class TestRegistryCoupling:
    def test_root_span_feeds_histogram_and_counters(self, traced_cost):
        cost, tracer = traced_cost
        for _ in range(3):
            with tracer.span("read_file"):
                cost.charge(NETWORK, 1.0)
        reg = tracer.registry
        assert reg.value("ops.count") == 3
        assert reg.value("ops.read_file.seconds.count") == 3
        assert reg.value("ops.read_file.seconds.mean") == pytest.approx(1.0)

    def test_error_spans_counted(self, traced_cost):
        _, tracer = traced_cost
        with pytest.raises(RuntimeError):
            with tracer.span("write_file"):
                raise RuntimeError("boom")
        span = tracer.finished[-1]
        assert span.error == "RuntimeError"
        assert tracer.registry.value("ops.errors") == 1
        assert tracer.registry.get("client.integrity_failures") is None

    def test_integrity_error_counted_separately(self, traced_cost):
        _, tracer = traced_cost
        with pytest.raises(IntegrityError):
            with tracer.span("read_file"):
                raise IntegrityError("bad MAC")
        assert tracer.registry.value("ops.errors") == 1
        assert tracer.registry.value("client.integrity_failures") == 1


class TestTracedDecorator:
    class Thing:
        def __init__(self, tracer):
            self.tracer = tracer

        @traced("frob")
        def frob(self, path, flag=False):
            return path.upper()

        @traced("tick", path_arg=None)
        def tick(self):
            return 42

    def test_records_path_attr(self, traced_cost):
        _, tracer = traced_cost
        thing = self.Thing(tracer)
        assert thing.frob("/a/b") == "/A/B"
        span = tracer.finished[-1]
        assert span.name == "frob"
        assert span.attrs == {"path": "/a/b"}

    def test_path_arg_none_records_no_attrs(self, traced_cost):
        _, tracer = traced_cost
        thing = self.Thing(tracer)
        assert thing.tick() == 42
        assert tracer.finished[-1].attrs == {}

    def test_wrapped_is_exposed(self):
        assert self.Thing.frob.__wrapped__.__name__ == "frob"


class TestFilesystemIntegration:
    """Replay a mixed workload through a real client and reconcile."""

    def _workout(self, fs):
        fs.mkdir("/obs", mode=0o755)
        fs.create_file("/obs/a", b"alpha" * 100, mode=0o644)
        fs.create_file("/obs/b", b"beta" * 2000, mode=0o600)
        assert fs.read_file("/obs/a") == b"alpha" * 100
        fs.readdir("/obs")
        fs.getattr("/obs/b")
        fs.append_file("/obs/a", b"-tail")
        fs.rename("/obs/b", "/obs/c")
        fs.unlink("/obs/c")

    def test_every_root_span_has_a_child_phase(self, make_fs):
        fs = make_fs("alice", with_costs=True)
        self._workout(fs)
        roots = list(fs.tracer.finished)
        assert {"mount", "mkdir", "create_file", "read_file", "readdir",
                "getattr", "append_file", "rename",
                "unlink"} <= {s.name for s in roots}
        childless = [s.name for s in roots if not s.children]
        assert childless == []

    def test_phase_totals_reconcile_with_cost_model(self, make_fs):
        fs = make_fs("alice", with_costs=True)
        self._workout(fs)
        phase_total = sum(
            sum(phase_breakdown(span).values())
            for span in fs.tracer.finished)
        assert fs.cost.totals.total > 0
        assert phase_total == pytest.approx(fs.cost.totals.total, rel=0.01)

    def test_jsonl_export_replays_the_run(self, make_fs):
        fs = make_fs("alice", with_costs=True)
        exporter = JsonLinesSpanExporter()
        fs.tracer.add_sink(exporter)
        self._workout(fs)
        records = exporter.records()
        # one record per finished root span since the sink was attached
        assert [r["name"] for r in records] == \
            [s.name for s in fs.tracer.finished][-len(records):]
        for record in records:
            assert record["children"], record["name"]
            assert record["duration"] >= 0

    def test_spans_to_jsonl_round_trip(self, make_fs):
        fs = make_fs("alice", with_costs=True)
        fs.create_file("/f", b"x", mode=0o644)
        text = spans_to_jsonl(fs.tracer.finished)
        names = [json.loads(line)["name"] for line in text.splitlines()]
        assert names == [s.name for s in fs.tracer.finished]
