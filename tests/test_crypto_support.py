"""Primes, hashes/KDF, stream cipher, serialization helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import hashes, primes, stream
from repro.errors import CryptoError, IntegrityError
from repro.serialize import Reader, SerializationError, Writer


class TestPrimes:
    def test_small_primes_known(self):
        assert primes.SMALL_PRIMES[:8] == (2, 3, 5, 7, 11, 13, 17, 19)

    def test_is_prime_small(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 97, 101}
        for n in range(2, 102):
            assert primes.is_prime(n) == (n in known or n in
                                          primes.SMALL_PRIMES)

    def test_is_prime_edges(self):
        assert not primes.is_prime(0)
        assert not primes.is_prime(1)
        assert not primes.is_prime(-7)

    def test_carmichael_rejected(self):
        assert not primes.is_prime(561)       # 3 * 11 * 17
        assert not primes.is_prime(1105)
        assert not primes.is_prime(41041)

    def test_known_large_prime(self):
        assert primes.is_prime(2 ** 127 - 1)  # Mersenne
        assert not primes.is_prime(2 ** 128 - 1)

    def test_random_prime_bit_length(self):
        for bits in (32, 64, 128):
            p = primes.random_prime(bits)
            assert p.bit_length() == bits
            assert primes.is_prime(p)

    def test_random_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            primes.random_prime(2)

    def test_random_prime_3mod4(self):
        p = primes.random_prime_3mod4(64)
        assert p % 4 == 3
        assert primes.is_prime(p)


class TestHashes:
    def test_digest_sha256_known(self):
        assert hashes.hexdigest(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855")

    def test_hmac_verify(self):
        tag = hashes.hmac(b"key", b"data")
        assert hashes.hmac_verify(b"key", b"data", tag)
        assert not hashes.hmac_verify(b"key", b"datA", tag)
        assert not hashes.hmac_verify(b"kex", b"data", tag)

    def test_derive_key_deterministic(self):
        a = hashes.derive_key(b"secret", "label")
        assert a == hashes.derive_key(b"secret", "label")
        assert a != hashes.derive_key(b"secret", "other")
        assert a != hashes.derive_key(b"other", "label")

    def test_derive_key_length(self):
        for length in (1, 16, 32, 48, 100):
            assert len(hashes.derive_key(b"s", "l", length)) == length

    def test_row_key_name_sensitivity(self):
        dek = b"k" * 16
        assert (hashes.derive_row_key(dek, "report.txt")
                != hashes.derive_row_key(dek, "report.txT"))

    def test_row_key_dek_sensitivity(self):
        assert (hashes.derive_row_key(b"a" * 16, "f")
                != hashes.derive_row_key(b"b" * 16, "f"))

    def test_fingerprint_short(self):
        assert len(hashes.fingerprint(b"data")) == 16


class TestStreamCipher:
    def test_roundtrip(self):
        key = b"k" * 16
        msg = b"stream me" * 100
        assert stream.decrypt(key, stream.encrypt(key, msg)) == msg

    def test_empty_message(self):
        key = b"k" * 16
        assert stream.decrypt(key, stream.encrypt(key, b"")) == b""

    def test_nonce_randomizes(self):
        key = b"k" * 16
        assert stream.encrypt(key, b"same") != stream.encrypt(key, b"same")

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            stream.encrypt(b"", b"msg")

    def test_seal_open(self):
        key = b"k" * 16
        msg = b"sealed payload"
        assert stream.open_sealed(key, stream.seal(key, msg)) == msg

    def test_seal_detects_bitflip(self):
        key = b"k" * 16
        sealed = bytearray(stream.seal(key, b"payload"))
        sealed[20] ^= 1
        with pytest.raises(IntegrityError):
            stream.open_sealed(key, bytes(sealed))

    def test_seal_detects_truncation(self):
        key = b"k" * 16
        sealed = stream.seal(key, b"payload")
        with pytest.raises((IntegrityError, CryptoError)):
            stream.open_sealed(key, sealed[:-1])

    def test_open_wrong_key_rejected(self):
        sealed = stream.seal(b"a" * 16, b"payload")
        with pytest.raises(IntegrityError):
            stream.open_sealed(b"b" * 16, sealed)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=2000), st.binary(min_size=1, max_size=32))
    def test_seal_roundtrip_property(self, msg, key):
        assert stream.open_sealed(key, stream.seal(key, msg)) == msg


class TestSerialize:
    def test_mixed_roundtrip(self):
        w = Writer()
        w.put_bytes(b"abc").put_str("héllo").put_int(12345)
        w.put_bool(True).put_optional_bytes(None).put_optional_bytes(b"")
        r = Reader(w.getvalue())
        assert r.get_bytes() == b"abc"
        assert r.get_str() == "héllo"
        assert r.get_int() == 12345
        assert r.get_bool() is True
        assert r.get_optional_bytes() is None
        assert r.get_optional_bytes() == b""
        r.expect_end()

    def test_int_zero(self):
        w = Writer()
        w.put_int(0)
        assert Reader(w.getvalue()).get_int() == 0

    def test_int_negative_rejected(self):
        with pytest.raises(SerializationError):
            Writer().put_int(-1)

    def test_truncated_rejected(self):
        w = Writer()
        w.put_bytes(b"hello")
        raw = w.getvalue()
        with pytest.raises(SerializationError):
            Reader(raw[:-1]).get_bytes()

    def test_trailing_rejected(self):
        w = Writer()
        w.put_bytes(b"x")
        r = Reader(w.getvalue() + b"junk")
        r.get_bytes()
        with pytest.raises(SerializationError):
            r.expect_end()

    def test_bad_bool_rejected(self):
        w = Writer()
        w.put_bytes(b"\x02")
        with pytest.raises(SerializationError):
            Reader(w.getvalue()).get_bool()

    def test_bad_utf8_rejected(self):
        w = Writer()
        w.put_bytes(b"\xff\xfe")
        with pytest.raises(SerializationError):
            Reader(w.getvalue()).get_str()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.one_of(
        st.binary(max_size=100),
        st.text(max_size=50),
        st.integers(min_value=0, max_value=2 ** 128)), max_size=12))
    def test_roundtrip_property(self, fields):
        w = Writer()
        for field in fields:
            if isinstance(field, bytes):
                w.put_bytes(field)
            elif isinstance(field, str):
                w.put_str(field)
            else:
                w.put_int(field)
        r = Reader(w.getvalue())
        for field in fields:
            if isinstance(field, bytes):
                assert r.get_bytes() == field
            elif isinstance(field, str):
                assert r.get_str() == field
            else:
                assert r.get_int() == field
        r.expect_end()
