"""Online shard rebalancing: plans, fencing, pipeline, recovery.

Unit tests drive :mod:`repro.storage.rebalance` directly (ring
stability, signed-plan round trips and tamper refusal, plan-epoch CAS
fencing of zombie rebalancers, dual-placement counters, rollback and
resume recovery, the ``migrated`` repair classification, seeded read
rotation); the sampled crash matrix runs the twin-stack differential
harness (:mod:`repro.tools.rebalancematrix`) at representative crash
points x all four recovery variants -- CI runs the full k = 1..T sweep
through ``repro rebalance-matrix``.
"""

from __future__ import annotations

import pytest

from repro.crypto import rsa
from repro.errors import (ClientCrashed, IntegrityError, StaleEpochError,
                          TransientStorageError)
from repro.storage.blobs import (BlobId, LEASE, data_blob, lease_blob,
                                 meta_blob, plan_blob)
from repro.storage.faults import CrashingRebalancer
from repro.storage.rebalance import (ABORTED, COPYING, DONE, FLIPPED,
                                     VERIFIED, MidRunRebalance,
                                     RebalancePlan, Rebalancer,
                                     resolve_plan)
from repro.storage.shards import RingSpec, ShardedServer

#: module-wide signing identity (keygen is the slow part; signing is
#: deterministic, so sharing the pair across tests is safe).
KEY = rsa.generate_keypair(512)


def _loaded(shards: int = 4, replicas: int = 2, spares: int = 2,
            blobs: int = 18) -> tuple[ShardedServer, dict]:
    """A sharded store with data, metadata and lease blobs + spares."""
    server = ShardedServer(shards=shards, replicas=replicas)
    stored = {}
    for i in range(blobs):
        blob = data_blob(i) if i % 3 else meta_blob(i, "alice")
        stored[blob] = b"payload-%d" % i
        server.put(blob, stored[blob])
    lease = lease_blob(1)
    stored[lease] = (4).to_bytes(8, "big") + b"lease-body"
    server.put(lease, stored[lease])
    for _ in range(spares):
        server.add_shard()
    return server, stored


def _grown(server: ShardedServer) -> RingSpec:
    return RingSpec(tuple(range(len(server.shards))), 3)


# ---------------------------------------------------------------------------
# ring stability


class TestRingSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RingSpec((), 1)
        with pytest.raises(ValueError):
            RingSpec((0, 0, 1), 1)
        with pytest.raises(ValueError):
            RingSpec((0, 1), 3)

    def test_targets_deterministic_distinct(self):
        ring = RingSpec((0, 1, 2, 3, 4), 3)
        for i in range(50):
            targets = ring.targets(data_blob(i))
            assert targets == RingSpec((0, 1, 2, 3, 4), 3) \
                .targets(data_blob(i))
            assert len(set(targets)) == 3
            assert set(targets) <= set(ring.members)

    def test_growth_keeps_surviving_primaries(self):
        # Vnodes hash on *global* shard indices, so growing the ring
        # never reshuffles blobs between surviving members: a blob's
        # new primary is either a brand-new member or its old primary.
        old = RingSpec((0, 1, 2, 3), 1)
        new = RingSpec((0, 1, 2, 3, 4, 5), 1)
        kept = 0
        for i in range(200):
            blob = data_blob(i)
            primary = new.targets(blob)[0]
            if primary in old.members:
                assert primary == old.targets(blob)[0]
                kept += 1
        assert kept >= 80  # ~2/3 expected; far above by construction

    def test_shrink_only_moves_evicted_members_blobs(self):
        old = RingSpec((0, 1, 2, 3), 2)
        new = RingSpec((0, 1, 2), 2)
        for i in range(100):
            blob = data_blob(i)
            before = old.targets(blob)
            if 3 not in before:
                assert new.targets(blob) == before


# ---------------------------------------------------------------------------
# signed plan blobs


def _plan(state: str = COPYING, epoch: int = 1) -> RebalancePlan:
    return RebalancePlan(
        epoch=epoch, state=state,
        old=RingSpec((0, 1, 2, 3), 2), new=RingSpec((0, 1, 2, 3, 4), 3),
        moves=(data_blob(1), meta_blob(2, "alice"), lease_blob(1)),
    ).sign(KEY.private)


class TestPlanBlob:
    def test_round_trip(self):
        plan = _plan()
        assert RebalancePlan.from_blob(plan.to_blob(),
                                       KEY.public) == plan

    def test_prefix_monotone_over_states_then_epochs(self):
        states = (COPYING, VERIFIED, FLIPPED, DONE, ABORTED)
        prefixes = [_plan(state=s).prefix for s in states]
        assert prefixes == sorted(prefixes)
        assert _plan(state=COPYING, epoch=2).prefix > \
            _plan(state=ABORTED, epoch=1).prefix

    def test_state_rides_outside_the_signature(self):
        # A keyless recovery process can advance the state: the new
        # blob still verifies under the original signature.
        import dataclasses
        flipped = dataclasses.replace(_plan(), state=FLIPPED)
        parsed = RebalancePlan.from_blob(flipped.to_blob(), KEY.public)
        assert parsed.state == FLIPPED
        assert parsed.flipped

    def test_tampered_body_refused(self):
        raw = bytearray(_plan().to_blob())
        raw[40] ^= 0x01  # inside the signed body JSON
        with pytest.raises(IntegrityError):
            RebalancePlan.from_blob(bytes(raw), KEY.public)

    def test_tampered_prefix_refused(self):
        plan = _plan()
        raw = (99 * 256 + 1).to_bytes(8, "big") + plan.to_blob()[8:]
        with pytest.raises(IntegrityError):
            RebalancePlan.from_blob(raw, KEY.public)

    def test_garbage_refused(self):
        with pytest.raises(IntegrityError):
            RebalancePlan.from_blob(b"\x00" * 7, KEY.public)
        with pytest.raises(IntegrityError):
            RebalancePlan.from_blob(b"\x00" * 8 + b"not json",
                                    KEY.public)


# ---------------------------------------------------------------------------
# propose + fencing


class TestProposeFencing:
    def test_propose_signs_stores_and_adopts(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        plan = reb.propose(range(6), 3)
        assert plan.epoch == 1 and plan.state == COPYING
        assert server.plan is plan
        assert len(plan.moves) > 0
        stored = Rebalancer.load(server, KEY.public)
        assert stored == plan
        # The plan blob reached every member of *both* rings.
        holders = server.census()[plan_blob()]
        assert holders == set(range(6))

    def test_epochs_are_monotone_across_plans(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        reb.propose(range(6), 3)
        reb.execute()
        reb2 = Rebalancer(server, keypair=KEY)
        plan2 = reb2.propose(range(4), 2)  # shrink back
        assert plan2.epoch == 2

    def test_second_proposer_refused_while_plan_active(self):
        server, _ = _loaded()
        Rebalancer(server, keypair=KEY).propose(range(6), 3)
        with pytest.raises(ValueError):
            Rebalancer(server, keypair=KEY).propose(range(5), 2)

    def test_zombie_rebalancer_is_fenced(self):
        server, _ = _loaded()
        zombie = Rebalancer(server, keypair=KEY)
        zombie.propose(range(6), 3)
        stale = zombie.plan  # snapshot before another driver advances
        driver = Rebalancer(server, keypair=KEY)
        driver.plan = stale
        driver.execute(until=VERIFIED)
        # The zombie wakes up holding the stale COPYING plan: its next
        # CAS must be rejected mechanically.
        zombie.plan = stale
        with pytest.raises(StaleEpochError):
            zombie._advance(VERIFIED)
        # ...and so must its targeted data moves (per-shard fences).
        # Corrupt one staged copy so the zombie actually re-puts it
        # (idempotent skips would otherwise hide the fence).
        blob = next(b for b in stale.moves
                    if zombie._dsts(b, stale.old, stale.new))
        dst = zombie._dsts(blob, stale.old, stale.new)[0]
        server.shards[dst].backend.put(blob, b"corrupted-stage")
        with pytest.raises(StaleEpochError):
            zombie._copy(zombie.report)

    def test_tampered_stored_copy_is_ignored(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        plan = reb.propose(range(6), 3)
        raw = bytearray(server.shards[0].backend.raw_blobs()[plan_blob()])
        raw[40] ^= 0x01
        server.shards[0].backend.put(plan_blob(), bytes(raw))
        assert Rebalancer.load(server, KEY.public) == plan

    def test_all_copies_tampered_means_no_plan(self):
        # A malicious SSP fleet can *hide* a plan, never forge one:
        # with every copy tampered nothing loads, nothing executes.
        server, _ = _loaded()
        Rebalancer(server, keypair=KEY).propose(range(6), 3)
        for shard in server.shards:
            raw = shard.backend.raw_blobs().get(plan_blob())
            if raw is not None:
                bad = bytearray(raw)
                bad[40] ^= 0x01
                shard.backend.put(plan_blob(), bytes(bad))
        assert Rebalancer.load(server, KEY.public) is None
        recovered = Rebalancer.recover(server, KEY.public)
        assert recovered.plan is None
        assert server.plan is None


# ---------------------------------------------------------------------------
# the pipeline


class TestPipeline:
    def test_grow_and_rereplicate(self):
        server, stored = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        reb.propose(range(6), 3)
        report = reb.execute()
        assert report.state == DONE
        assert server.ring == RingSpec((0, 1, 2, 3, 4, 5), 3)
        assert server.plan is None
        for blob, payload in stored.items():
            assert server.get(blob) == payload
        assert not server.under_replicated()
        assert server.raw_blobs() == {
            b: p for b, p in stored.items()}

    def test_shrink_vacates_ex_members(self):
        server, stored = _loaded(spares=0)
        reb = Rebalancer(server, keypair=KEY)
        reb.propose((0, 1, 2), 2)
        reb.execute()
        assert server.ring == RingSpec((0, 1, 2), 2)
        # Ex-member 3 holds nothing at all -- not even control blobs.
        assert server.shards[3].backend.blob_count() == 0
        for blob, payload in stored.items():
            assert server.get(blob) == payload

    def test_counters_and_snapshot(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        reb.propose(range(6), 3)
        snap = server.shard_snapshot()
        assert snap["rebalance.active"] == 1.0
        assert snap["rebalance.plan_epoch"] == 1.0
        server.get(data_blob(1))
        server.put(data_blob(1), b"during")
        assert server.dual_reads >= 1
        assert server.dual_writes >= 1
        reb.execute()
        snap = server.shard_snapshot()
        assert snap["rebalance.active"] == 0.0
        assert snap["rebalance.moved"] > 0
        assert snap["rebalance.verified"] > 0
        assert snap["rebalance.dropped"] > 0

    def test_mutation_during_plan_fans_to_both_rings(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        plan = reb.propose(range(6), 3)
        blob = data_blob(1)
        server.put(blob, b"dual-written")
        holders = server.census()[blob]
        assert set(plan.old.targets(blob)) <= holders
        assert set(plan.new.targets(blob)) <= holders

    def test_deleted_blob_is_skipped(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        plan = reb.propose(range(6), 3)
        victim = next(b for b in plan.moves if b.kind != LEASE)
        server.delete(victim)
        report = reb.execute()
        assert report.skipped >= 1
        assert not server.exists(victim)


# ---------------------------------------------------------------------------
# crash recovery


def _crash_run(server: ShardedServer, members, replicas: int,
               crash_after: int) -> bool:
    """Propose + execute with a crash injector; True if it fired."""
    hook = CrashingRebalancer(crash_after=crash_after)
    reb = Rebalancer(server, keypair=KEY, hook=hook)
    try:
        reb.propose(members, replicas)
        reb.execute()
        return False
    except ClientCrashed:
        return True


class TestRecovery:
    def test_resume_from_sampled_crash_points(self):
        probe, _ = _loaded()
        counter = CrashingRebalancer()
        reb = Rebalancer(probe, keypair=KEY, hook=counter)
        reb.propose(range(6), 3)
        reb.execute()
        total = counter.actions
        for k in sorted({1, 2, total // 3, total // 2, total - 1,
                         total}):
            server, stored = _loaded()
            assert _crash_run(server, range(6), 3, k)
            recovered = Rebalancer.recover(server, KEY.public,
                                           keypair=KEY)
            recovered.resume()
            assert server.plan is None
            assert server.ring == RingSpec((0, 1, 2, 3, 4, 5), 3), k
            for blob, payload in stored.items():
                assert server.get(blob) == payload, k
            assert not server.under_replicated(), k

    def test_repair_rolls_back_unflipped_plan(self):
        server, stored = _loaded()
        assert _crash_run(server, range(6), 3, 3)  # mid-copy
        report = server.repair()
        assert report.plan_action == "rolled_back"
        assert server.plan is None
        assert server.ring == RingSpec((0, 1, 2, 3), 2)
        for blob, payload in stored.items():
            assert server.get(blob) == payload
        assert not server.under_replicated()
        # Spares hold nothing after the rollback swept them.
        assert server.shards[4].backend.blob_count() == 0
        assert server.shards[5].backend.blob_count() == 0

    def test_repair_resumes_flipped_plan(self):
        probe, _ = _loaded()
        counter = CrashingRebalancer()
        reb = Rebalancer(probe, keypair=KEY, hook=counter)
        reb.propose(range(6), 3)
        reb.execute()
        first_drop = next(i for i, (step, _) in enumerate(counter.log)
                          if step == "drop") + 1
        server, stored = _loaded()
        assert _crash_run(server, range(6), 3, first_drop + 2)
        report = server.repair()
        assert report.plan_action == "resumed"
        assert server.ring == RingSpec((0, 1, 2, 3, 4, 5), 3)
        for blob, payload in stored.items():
            assert server.get(blob) == payload
        assert not server.under_replicated()

    def test_rollback_preserves_write_that_raced_the_plan(self):
        # A dual write lands while the plan is staging; rollback must
        # keep the *newer* version even though it tears down the ring
        # the write also landed on.
        server, stored = _loaded()
        assert _crash_run(server, range(6), 3, 5)
        victim = next(iter(stored))
        server.put(victim, b"newer-during-plan")
        report = server.repair()
        assert report.plan_action == "rolled_back"
        assert server.get(victim) == b"newer-during-plan"
        assert not server.under_replicated()

    def test_done_plan_blob_survives_for_fencing(self):
        server, _ = _loaded()
        reb = Rebalancer(server, keypair=KEY)
        reb.propose(range(6), 3)
        reb.execute()
        stored = Rebalancer.load(server, KEY.public)
        assert stored is not None and stored.state == DONE
        # A later plan CAS'es past it: the epoch chain never resets.
        reb2 = Rebalancer(server, keypair=KEY)
        assert reb2.propose(range(4), 2).epoch == 2


# ---------------------------------------------------------------------------
# repair classification: migrated vs misplaced


class TestMigratedCounter:
    def test_plan_leftovers_count_as_migrated(self):
        server, _ = _loaded(spares=0)
        reb = Rebalancer(server, keypair=KEY)
        reb.propose((0, 1, 2), 2)
        reb.execute(until=FLIPPED)
        server.outage(3)  # the ex-member is down for the drop phase
        reb.execute()
        server.clear_wrappers()
        report = server.repair()
        assert report.migrated > 0
        assert report.dropped_misplaced == 0
        assert server.shards[3].backend.blob_count() == 0

    def test_stray_copies_still_count_as_misplaced(self):
        server = ShardedServer(shards=4, replicas=2)
        blob = data_blob(1)
        server.put(blob, b"x")
        stray = next(i for i in range(4)
                     if i not in server.placement(blob))
        server.shards[stray].backend.put(blob, b"x")
        report = server.repair()
        assert report.dropped_misplaced == 1
        assert report.migrated == 0


# ---------------------------------------------------------------------------
# hot-blob read rotation


class TestReadRotation:
    def test_single_copy_reads_spread_over_replicas(self):
        server = ShardedServer(shards=4, replicas=3, read_quorum=1)
        blob = data_blob(7)
        server.put(blob, b"hot")
        reads = 300
        for _ in range(reads):
            assert server.get(blob) == b"hot"
        shares = [server.shards[s].reads
                  for s in server.placement(blob)]
        assert sum(shares) == reads
        # Near-uniform: every replica takes a meaningful share.
        for share in shares:
            assert reads / 3 * 0.5 <= share <= reads / 3 * 1.5, shares

    def test_quorum_reads_keep_placement_order(self):
        server = ShardedServer(shards=4, replicas=3, read_quorum=2)
        blob = data_blob(7)
        server.put(blob, b"hot")
        first = server.placement(blob)[0]
        for _ in range(50):
            server.get(blob)
        assert server.shards[first].reads == 50

    def test_lease_reads_keep_placement_order(self):
        server = ShardedServer(shards=4, replicas=2, read_quorum=1)
        lease = lease_blob(3)
        server.put(lease, (2).to_bytes(8, "big") + b"l")
        for _ in range(40):
            server.get(lease)
        assert server.shards[server.placement(lease)[0]].reads == 40

    def test_read_share_exported(self):
        server = ShardedServer(shards=4, replicas=3, read_quorum=1)
        blob = data_blob(7)
        server.put(blob, b"hot")
        for _ in range(30):
            server.get(blob)
        snap = server.shard_snapshot()
        total = sum(snap[f"{i}.read_share"] for i in range(4))
        assert total == pytest.approx(1.0)

    def test_seed_changes_the_rotation(self):
        a = ShardedServer(shards=4, replicas=3, read_seed=1)
        b = ShardedServer(shards=4, replicas=3, read_seed=2)
        blob = data_blob(7)
        a.put(blob, b"x")
        b.put(blob, b"x")
        served_a, served_b = [], []
        for _ in range(12):
            a.get(blob)
            b.get(blob)
            served_a.append([s.reads for s in a.shards])
            served_b.append([s.reads for s in b.shards])
        assert served_a != served_b


# ---------------------------------------------------------------------------
# the mid-run trigger


class TestMidRunRebalance:
    def test_fires_stages_in_order_once(self):
        server = ShardedServer(shards=2, replicas=1)
        fired = []
        wrapper = MidRunRebalance(server, [(5, lambda: fired.append(1)),
                                           (3, lambda: fired.append(0))])
        for i in range(8):
            wrapper.put(data_blob(i), b"x")
        assert fired == [0, 1]
        assert wrapper.fired == 2
        assert wrapper.mutations == 8


# ---------------------------------------------------------------------------
# sampled crash matrix (CI runs the full sweep via the CLI)


@pytest.fixture(scope="module")
def matrix():
    from repro.tools.rebalancematrix import RebalanceMatrix
    m = RebalanceMatrix(seed=7)
    m.total = m.count_points()
    return m


@pytest.mark.parametrize("variant",
                         ("resume", "repair", "writes", "shard-down"))
def test_sampled_crash_matrix(matrix, variant):
    total = matrix.total
    ks = sorted({1, 2, total // 3, total // 2, total - 1, total})
    for k in ks:
        outcome = matrix.run_cell(k, variant, total)
        assert outcome.consistent, (variant, k, outcome)
