"""Scheme-1 vs Scheme-2 replication (paper section III-D).

Scheme-1: a replica tree per user.  Scheme-2: replicas per permission
chain, with split-point lockboxes.  Both must produce the same observable
semantics; they differ in storage, update cost and access cost.
"""

import pytest

from repro.caps.schemes import (SEL_GROUP, SEL_OWNER, SEL_WORLD, Scheme1,
                                Scheme2, make_scheme)
from repro.crypto.provider import CryptoProvider
from repro.errors import PermissionDenied, SharoesError
from repro.fs.client import SharoesFilesystem
from repro.fs.dirtable import DIRECT, SPLIT
from repro.fs.metadata import MetadataAttrs
from repro.fs.permissions import AclEntry
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.storage.blobs import principal_hash


def _attrs(owner="alice", group="eng", mode=0o640, ftype="file",
           inode=9, acl=()) -> MetadataAttrs:
    return MetadataAttrs(inode=inode, ftype=ftype, owner=owner,
                         group=group, mode=mode, acl=tuple(acl))


class TestScheme2Selectors:
    def test_selector_for_user_classes(self, registry):
        scheme = Scheme2(registry)
        attrs = _attrs()
        assert scheme.selector_for_user(attrs, "alice") == SEL_OWNER
        assert scheme.selector_for_user(attrs, "bob") == SEL_GROUP
        assert scheme.selector_for_user(attrs, "carol") == SEL_WORLD

    def test_acl_selector(self, registry):
        scheme = Scheme2(registry)
        attrs = _attrs(acl=(AclEntry("dave", 0o4),))
        assert (scheme.selector_for_user(attrs, "dave")
                == "a:" + principal_hash("dave"))

    def test_selectors_always_include_classes(self, registry):
        scheme = Scheme2(registry)
        assert scheme.selectors(_attrs(mode=0o600)) == [
            SEL_OWNER, SEL_GROUP, SEL_WORLD]

    def test_cap_for_selector(self, registry):
        scheme = Scheme2(registry)
        attrs = _attrs(mode=0o640)
        assert scheme.cap_for_selector(attrs, SEL_OWNER).cap_id == "frw"
        assert scheme.cap_for_selector(attrs, SEL_GROUP).cap_id == "fr"
        assert scheme.cap_for_selector(attrs, SEL_WORLD).cap_id == "f0"

    def test_users_of_selector(self, registry):
        scheme = Scheme2(registry)
        attrs = _attrs()
        assert scheme.users_of_selector(attrs, SEL_OWNER) == {"alice"}
        assert scheme.users_of_selector(attrs, SEL_GROUP) == {"bob"}
        assert scheme.users_of_selector(attrs, SEL_WORLD) == {"carol",
                                                              "dave"}

    def test_unknown_selector_rejected(self, registry):
        with pytest.raises(SharoesError):
            Scheme2(registry).cap_for_selector(_attrs(), "a:deadbeef")


class TestScheme2Pointers:
    def test_uniform_chain_direct(self, registry):
        scheme = Scheme2(registry)
        parent = _attrs(ftype="dir", mode=0o755, inode=1)
        child = _attrs(mode=0o640, inode=2)
        for selector in (SEL_OWNER, SEL_GROUP, SEL_WORLD):
            kind, child_sel = scheme.child_pointer(parent, child, selector)
            assert kind == DIRECT
            assert child_sel == selector

    def test_owner_change_splits_owner_chain(self, registry):
        scheme = Scheme2(registry)
        parent = _attrs(ftype="dir", mode=0o755, owner="alice", inode=1)
        child = _attrs(mode=0o640, owner="bob", inode=2)
        kind, _ = scheme.child_pointer(parent, child, SEL_OWNER)
        # alice is the only o-class user of the parent; on the child she
        # is group class -> single-user chain stays DIRECT to "g".
        assert kind == DIRECT

    def test_divergent_world_chain_splits(self, registry):
        """carol and dave are both w-class on the parent; an ACL for
        dave on the child makes their child classes diverge -> SPLIT."""
        scheme = Scheme2(registry)
        parent = _attrs(ftype="dir", mode=0o755, inode=1)
        child = _attrs(mode=0o640, inode=2, acl=(AclEntry("dave", 0o4),))
        kind, _ = scheme.child_pointer(parent, child, SEL_WORLD)
        assert kind == SPLIT

    def test_group_boundary(self, registry):
        """Parent grouped eng, child grouped hr: bob (g on parent) is w
        on the child -> DIRECT to the child's w selector."""
        scheme = Scheme2(registry)
        parent = _attrs(ftype="dir", mode=0o755, group="eng", inode=1)
        child = _attrs(mode=0o640, group="hr", inode=2)
        kind, child_sel = scheme.child_pointer(parent, child, SEL_GROUP)
        assert (kind, child_sel) == (DIRECT, SEL_WORLD)

    def test_lockbox_map_covers_all_classes(self, registry):
        scheme = Scheme2(registry)
        attrs = _attrs(acl=(AclEntry("dave", 0o4),))
        lockboxes = scheme.lockbox_map(attrs)
        assert lockboxes["alice"] == SEL_OWNER
        assert lockboxes["bob"] == SEL_GROUP
        assert lockboxes["carol"] == SEL_WORLD
        assert lockboxes["dave"] == "a:" + principal_hash("dave")


class TestScheme1:
    def test_selector_per_user(self, registry):
        scheme = Scheme1(registry)
        attrs = _attrs()
        sel_alice = scheme.selector_for_user(attrs, "alice")
        sel_bob = scheme.selector_for_user(attrs, "bob")
        assert sel_alice != sel_bob
        assert sel_alice.startswith("u:")

    def test_selectors_cover_every_user(self, registry):
        scheme = Scheme1(registry)
        assert len(scheme.selectors(_attrs())) == 4

    def test_owner_selector_first(self, registry):
        scheme = Scheme1(registry)
        attrs = _attrs(owner="carol")
        assert (scheme.selectors(attrs)[0]
                == scheme.selector_for_user(attrs, "carol"))

    def test_never_splits(self, registry):
        scheme = Scheme1(registry)
        parent = _attrs(ftype="dir", mode=0o755, inode=1)
        child = _attrs(mode=0o640, inode=2,
                       acl=(AclEntry("dave", 0o4),))
        for user in ("alice", "bob", "carol", "dave"):
            selector = scheme.selector_for_user(parent, user)
            kind, child_sel = scheme.child_pointer(parent, child, selector)
            assert kind == DIRECT
            assert child_sel == scheme.selector_for_user(child, user)

    def test_no_lockboxes(self, registry):
        assert Scheme1(registry).lockbox_map(_attrs()) == {}

    def test_factory(self, registry):
        assert make_scheme("scheme1", registry).name == "scheme1"
        assert make_scheme("scheme2", registry).name == "scheme2"
        with pytest.raises(SharoesError):
            make_scheme("scheme3", registry)


class TestScheme1EndToEnd:
    """The full filesystem over per-user replication."""

    @pytest.fixture
    def s1_volume(self, server, registry):
        vol = SharoesVolume(server, registry, scheme="scheme1")
        vol.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        return vol

    def _fs(self, volume, registry, user):
        fs = SharoesFilesystem(volume, registry.user(user))
        fs.mount()
        return fs

    def test_basic_sharing(self, s1_volume, registry):
        alice = self._fs(s1_volume, registry, "alice")
        alice.create_file("/doc", b"scheme1 data", mode=0o640)
        bob = self._fs(s1_volume, registry, "bob")
        assert bob.read_file("/doc") == b"scheme1 data"
        carol = self._fs(s1_volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.read_file("/doc")

    def test_exec_only_dir(self, s1_volume, registry):
        alice = self._fs(s1_volume, registry, "alice")
        alice.mkdir("/drop", mode=0o711)
        alice.create_file("/drop/known", b"found", mode=0o644)
        carol = self._fs(s1_volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.readdir("/drop")
        assert carol.read_file("/drop/known") == b"found"

    def test_acl_without_lockboxes(self, s1_volume, registry):
        """Scheme-1 expresses ACLs as just another per-user replica."""
        alice = self._fs(s1_volume, registry, "alice")
        alice.create_file("/f", b"x", mode=0o600)
        alice.set_acl("/f", (AclEntry("dave", 0o4),))
        dave = self._fs(s1_volume, registry, "dave")
        assert dave.read_file("/f") == b"x"

    def test_revocation(self, s1_volume, registry):
        alice = self._fs(s1_volume, registry, "alice")
        alice.create_file("/f", b"x", mode=0o644)
        alice.chmod("/f", 0o600)
        carol = self._fs(s1_volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.read_file("/f")

    def test_storage_scales_with_users(self, server, registry):
        """The paper's core observation: Scheme-1 metadata grows with the
        user population, Scheme-2 with the number of CAP chains."""
        from repro.storage.server import StorageServer
        sizes = {}
        for scheme_name in ("scheme1", "scheme2"):
            srv = StorageServer()
            vol = SharoesVolume(srv, registry, scheme=scheme_name)
            vol.format(root_owner="alice", root_group="eng")
            fs = SharoesFilesystem(vol, registry.user("alice"))
            # No group blobs published; mount still works for alice.
            fs.mount()
            for i in range(10):
                fs.create_file(f"/f{i}", b"payload", mode=0o644)
            sizes[scheme_name] = srv.stored_bytes("meta")
        # 4 users vs 3 chains -> scheme1 strictly bigger.
        assert sizes["scheme1"] > sizes["scheme2"]

    def test_scheme1_provision_user_refused(self, s1_volume):
        with pytest.raises(SharoesError):
            s1_volume.provision_user("dave")
