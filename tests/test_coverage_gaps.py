"""Coverage for remaining corners: engine incompatibility, Andrew
internals, group-key edge cases, exec-only interplay with groups."""

import pytest

from repro.crypto.provider import AesEngine, CryptoProvider, StreamEngine
from repro.errors import (CryptoError, IntegrityError, PermissionDenied)
from repro.fs.client import SharoesFilesystem
from repro.workloads.andrew import _source_tree
from repro.workloads.runner import LABELS


class TestEngineIncompatibility:
    def test_cross_engine_seals_rejected(self):
        """AES and stream seals must not silently interoperate."""
        key = b"k" * 16
        aes_blob = AesEngine().seal(key, b"payload")
        with pytest.raises((IntegrityError, CryptoError)):
            StreamEngine().open(key, aes_blob)
        stream_blob = StreamEngine().seal(key, b"payload")
        with pytest.raises((IntegrityError, CryptoError)):
            AesEngine().open(key, stream_blob)

    def test_provider_reports_engine(self):
        assert CryptoProvider("aes").engine_name == "aes"
        assert CryptoProvider().engine_name == "stream"


class TestAndrewInternals:
    def test_source_tree_deterministic(self):
        dirs_a, files_a = _source_tree(seed=5)
        dirs_b, files_b = _source_tree(seed=5)
        assert dirs_a == dirs_b
        assert files_a == files_b

    def test_source_tree_shape(self):
        dirs, files = _source_tree()
        assert len(files) == 70
        assert len(dirs) == 21  # /src + 20 modules
        total = sum(len(content) for content in files.values())
        assert 200_000 < total < 1_400_000

    def test_labels_are_paper_names(self):
        assert LABELS["sharoes"] == "SHAROES"
        assert LABELS["no-enc-md-d"] == "NO-ENC-MD-D"


class TestGroupEdgeCases:
    def test_file_group_not_in_registry_is_just_other(self, alice_fs,
                                                      bob_fs):
        """A file grouped to a nonexistent group: nobody matches the
        group class; world bits decide."""
        alice_fs.create_file("/odd", b"x", mode=0o640, group="ghosts")
        with pytest.raises(PermissionDenied):
            bob_fs.read_file("/odd")

    def test_owner_in_group_still_owner_class(self, alice_fs, bob_fs):
        """alice owns and is in eng: owner class wins (mode 0o060 grants
        the group but not the owner -- owner bits 0).  The owner can't
        even put initial content in (honest enforcement), while the
        group member can."""
        alice_fs.mknod("/strange", mode=0o060)
        with pytest.raises(PermissionDenied):
            alice_fs.read_file("/strange")
        with pytest.raises(PermissionDenied):
            alice_fs.write_file("/strange", b"x")
        bob_fs.write_file("/strange", b"from bob")
        assert bob_fs.read_file("/strange") == b"from bob"

    def test_group_exec_only_directory(self, alice_fs, bob_fs,
                                       carol_fs):
        """Group gets exec-only, world nothing: three-way split."""
        alice_fs.mkdir("/tri", mode=0o710)
        alice_fs.create_file("/tri/f", b"deep", mode=0o644)
        assert bob_fs.read_file("/tri/f") == b"deep"  # eng: --x + name
        with pytest.raises(PermissionDenied):
            bob_fs.readdir("/tri")
        with pytest.raises(PermissionDenied):
            carol_fs.read_file("/tri/f")  # other: ---


class TestStatSemantics:
    def test_version_monotone_across_owner_ops(self, alice_fs):
        alice_fs.mknod("/v", mode=0o644)
        versions = [alice_fs.getattr("/v").version]
        alice_fs.chmod("/v", 0o640)
        versions.append(alice_fs.getattr("/v").version)
        alice_fs.rekey("/v")
        versions.append(alice_fs.getattr("/v").version)
        assert versions == sorted(set(versions))

    def test_inode_stability_across_rename_and_chmod(self, alice_fs):
        alice_fs.create_file("/stable", b"x", mode=0o644)
        inode = alice_fs.getattr("/stable").inode
        alice_fs.chmod("/stable", 0o600)
        alice_fs.rename("/stable", "/moved")
        assert alice_fs.getattr("/moved").inode == inode

    def test_getattr_through_two_exec_only_levels(self, alice_fs,
                                                  carol_fs):
        alice_fs.mkdir("/l1", mode=0o711)
        alice_fs.mkdir("/l1/l2", mode=0o711)
        alice_fs.create_file("/l1/l2/leaf", b"deep", mode=0o644)
        stat = carol_fs.getattr("/l1/l2/leaf")
        assert stat.ftype == "file"
        assert carol_fs.read_file("/l1/l2/leaf") == b"deep"
