"""ObjectRecord view filtering: the Figure 4 / Figure 5 matrices.

For every CAP, the metadata replica must expose exactly the key fields
the paper's figures shade as accessible -- nothing more (confidentiality)
and nothing less (functionality).
"""

import pytest

from repro.caps.model import (ALL_CAPS, D_EXEC_ONLY, D_READ, D_READ_EXEC,
                              D_RWX, D_ZERO, F_READ, F_READ_WRITE, F_ZERO)
from repro.caps.record import ObjectRecord, open_metadata_blob
from repro.crypto.provider import CryptoProvider
from repro.errors import KeyAccessError
from repro.fs.metadata import MetadataAttrs

SELECTORS = ["o", "g", "w"]


def _record(ftype: str) -> ObjectRecord:
    attrs = MetadataAttrs(inode=42, ftype=ftype, owner="alice",
                          group="eng", mode=0o640)
    return ObjectRecord.create(attrs, SELECTORS, prime_bits=64)


class TestFileCapMatrix:
    """Figure 5, row by row, at the replica level."""

    @pytest.mark.parametrize("cap,dek,dvk,dsk", [
        (F_ZERO, False, False, False),
        (F_READ, True, True, False),
        (F_READ_WRITE, True, True, True),
    ])
    def test_non_owner_fields(self, cap, dek, dvk, dsk):
        record = _record("file")
        view = record.view_for("g", cap, is_owner=False)
        assert (view.dek is not None) == dek
        assert (view.dvk is not None) == dvk
        assert (view.dsk is not None) == dsk
        # Never: owner-only management material.
        assert view.msk is None
        assert view.selector_meks == {}
        assert view.table_deks == {}

    def test_owner_always_full(self):
        record = _record("file")
        for cap in (F_ZERO, F_READ, F_READ_WRITE):
            view = record.view_for("o", cap, is_owner=True)
            assert view.msk is not None
            assert view.dek == record.dek
            assert view.dsk is not None
            assert set(view.selector_meks) == set(SELECTORS)

    def test_attrs_present_even_in_zero_cap(self):
        record = _record("file")
        view = record.view_for("w", F_ZERO, is_owner=False)
        assert view.attrs.owner == "alice"
        assert view.attrs.mode == 0o640
        with pytest.raises(KeyAccessError):
            view.require_dek()


class TestDirectoryCapMatrix:
    """Figure 4, row by row."""

    @pytest.mark.parametrize("cap,dek,dsk", [
        (D_ZERO, False, False),
        (D_READ, True, False),
        (D_READ_EXEC, True, False),
        (D_EXEC_ONLY, True, False),
        (D_RWX, True, True),
    ])
    def test_non_owner_fields(self, cap, dek, dsk):
        record = _record("dir")
        view = record.view_for("g", cap, is_owner=False)
        if dek:
            # Directory DEKs are per-selector table keys.
            assert view.dek == record.table_deks["g"]
        else:
            assert view.dek is None
        assert (view.dsk is not None) == dsk
        assert view.msk is None

    def test_writer_gets_all_table_deks(self):
        """rwx holders rewrite every table view on create/delete."""
        record = _record("dir")
        view = record.view_for("g", D_RWX, is_owner=False)
        assert set(view.table_deks) == set(SELECTORS)

    def test_reader_gets_no_table_dek_map(self):
        record = _record("dir")
        for cap in (D_READ, D_READ_EXEC, D_EXEC_ONLY):
            view = record.view_for("g", cap, is_owner=False)
            assert view.table_deks == {}

    def test_selector_isolation(self):
        """The g replica must not carry the w table key and vice versa."""
        record = _record("dir")
        g_view = record.view_for("g", D_READ_EXEC, is_owner=False)
        w_view = record.view_for("w", D_READ_EXEC, is_owner=False)
        assert g_view.dek == record.table_deks["g"]
        assert w_view.dek == record.table_deks["w"]
        assert g_view.dek != w_view.dek


class TestRecordLifecycle:
    def test_blob_roundtrip(self):
        provider = CryptoProvider()
        record = _record("file")
        blob = record.metadata_blob(provider, "g", F_READ, is_owner=False)
        view = open_metadata_blob(provider, 42, "g",
                                  record.selector_meks["g"], record.mvk,
                                  blob)
        assert view.attrs == record.attrs
        assert view.dek == record.dek
        assert view.dsk is None

    def test_from_owner_view_reconstructs(self):
        provider = CryptoProvider()
        record = _record("dir")
        blob = record.metadata_blob(provider, "o", D_RWX, is_owner=True)
        view = open_metadata_blob(provider, 42, "o",
                                  record.selector_meks["o"], record.mvk,
                                  blob)
        rebuilt = ObjectRecord.from_owner_view(view, record.mvk)
        assert rebuilt.selector_meks == record.selector_meks
        assert rebuilt.table_deks == record.table_deks
        assert rebuilt.msk.to_bytes() == record.msk.to_bytes()

    def test_from_non_owner_view_refused(self):
        record = _record("file")
        view = record.view_for("g", F_READ_WRITE, is_owner=False)
        with pytest.raises(KeyAccessError):
            ObjectRecord.from_owner_view(view, record.mvk)

    def test_rekey_data_rotates(self):
        record = _record("file")
        old = (record.dek, record.dsk.to_bytes(), record.dvk.to_bytes())
        record.rekey_data()
        assert record.dek != old[0]
        assert record.dsk.to_bytes() != old[1]
        assert record.dvk.to_bytes() != old[2]
        assert record.needs_rekey is False

    def test_rekey_data_dir_rotates_table_deks(self):
        record = _record("dir")
        old = dict(record.table_deks)
        record.rekey_data()
        for selector in SELECTORS:
            assert record.table_deks[selector] != old[selector]

    def test_rekey_metadata_rotates_meks_and_msk(self):
        record = _record("file")
        old_meks = dict(record.selector_meks)
        old_msk = record.msk.to_bytes()
        record.rekey_metadata()
        assert record.msk.to_bytes() != old_msk
        for selector in SELECTORS:
            assert record.selector_meks[selector] != old_meks[selector]

    def test_ensure_and_drop_selectors(self):
        record = _record("file")
        record.ensure_selector_keys(["o", "g", "w", "a:xyz"])
        assert "a:xyz" in record.selector_meks
        dropped = record.drop_selectors(["o", "g", "w"])
        assert dropped == ["a:xyz"]
        assert "a:xyz" not in record.selector_meks
