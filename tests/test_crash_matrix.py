"""Crash-point matrix: every op x every crash point must recover.

The acceptance bar for the crash-consistency layer: for every mutation
op and every crash point k in its put/delete sequence, after re-mount
(journal recovery) or ``fsck --repair`` the volume is fsck-clean, the
op is fully applied or fully rolled back, and no orphaned blobs remain.
"""

from __future__ import annotations

import pytest

from repro.tools.crashmatrix import (FSCK, MOUNT, CrashMatrix,
                                     build_cases, outcomes_table)

OP_NAMES = [case.name for case in build_cases()]


@pytest.fixture(scope="module")
def matrix() -> CrashMatrix:
    """One enterprise reused across the module: each run_case restores
    the volume to its base snapshot, so cases stay independent."""
    return CrashMatrix(seed=1234)


def _case(matrix: CrashMatrix, name: str):
    [case] = [c for c in build_cases(matrix.data, matrix.new)
              if c.name == name]
    return case


@pytest.mark.parametrize("op", OP_NAMES)
def test_mount_recovery_converges(matrix, op):
    outcomes = matrix.run_case(_case(matrix, op), MOUNT)
    assert outcomes, f"{op}: no crash points discovered"
    bad = [o for o in outcomes if not o.consistent]
    assert not bad, outcomes_table(bad)


@pytest.mark.parametrize("op", OP_NAMES)
def test_fsck_repair_converges(matrix, op):
    outcomes = matrix.run_case(_case(matrix, op), FSCK)
    bad = [o for o in outcomes if not o.consistent]
    assert not bad, outcomes_table(bad)


@pytest.mark.parametrize("op", OP_NAMES)
def test_journal_append_crash_rolls_back(matrix, op):
    """k=1 is the intent append: nothing of the op reached the SSP, so
    recovery must observe a full rollback, and every later crash point
    must roll forward to fully applied."""
    outcomes = matrix.run_case(_case(matrix, op), MOUNT)
    assert outcomes[0].outcome == "rolled_back"
    assert all(o.outcome == "applied" for o in outcomes[1:])


def test_matrix_is_deterministic_per_seed():
    a = CrashMatrix(seed=7)
    b = CrashMatrix(seed=7)
    case = "rename"
    assert (a.run_case(_case(a, case), MOUNT)
            == b.run_case(_case(b, case), MOUNT))


def test_every_op_has_multiple_crash_points(matrix):
    """Each op is genuinely multi-blob: a single-put op would make the
    atomicity machinery vacuous."""
    for op in OP_NAMES:
        outcomes = matrix.run_case(_case(matrix, op), MOUNT)
        assert outcomes[0].total_points >= 3, (
            f"{op}: only {outcomes[0].total_points} mutations")
