"""Adversarial tests: the SSP and malicious principals.

The paper's threat model (section VII): the SSP faithfully stores bytes
but is trusted with neither confidentiality nor access control; users may
misbehave within the keys they hold.  Every attack here must be either
impossible (missing key) or detected (signature/MAC failure).
"""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (CryptoError, IntegrityError, KeyAccessError,
                          PermissionDenied)
from repro.fs.client import SharoesFilesystem
from repro.fs.sealed import open_unverified, replace_ciphertext
from repro.fs.volume import SharoesVolume, block_blob_id, table_blob_id
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.principals.users import User
from repro.storage.blobs import meta_blob
from repro.storage.faults import RollbackServer, TamperingServer


def _fresh(volume, registry, user_id):
    fs = SharoesFilesystem(volume, registry.user(user_id))
    fs.mount()
    return fs


class TestCuriousSsp:
    """Honest-but-curious SSP: scan everything it stores for plaintext."""

    def test_no_plaintext_content_at_ssp(self, alice_fs, server):
        secrets = [b"TOP-SECRET-PAYLOAD-ALPHA", b"TOP-SECRET-PAYLOAD-BETA"]
        alice_fs.mkdir("/vault", mode=0o700)
        for i, secret in enumerate(secrets):
            alice_fs.create_file(f"/vault/doc{i}", secret, mode=0o600)
        everything = b"".join(server.raw_blobs().values())
        for secret in secrets:
            assert secret not in everything

    def test_no_plaintext_names_in_tables(self, alice_fs, server):
        """Directory tables are encrypted: names never appear raw."""
        alice_fs.mkdir("/dir", mode=0o755)
        alice_fs.mknod("/dir/super-distinctive-filename.doc")
        everything = b"".join(
            payload for blob_id, payload in server.raw_blobs().items()
            if blob_id.kind == "data")
        assert b"super-distinctive-filename" not in everything

    def test_no_raw_user_ids_in_blob_index(self, alice_fs, server):
        alice_fs.mknod("/f")
        for blob_id in server.raw_blobs():
            assert "alice" not in str(blob_id)

    def test_keys_never_stored_raw(self, alice_fs, server):
        """The DEK of a file never appears unencrypted in any blob."""
        alice_fs.create_file("/f", b"x", mode=0o600)
        node = alice_fs._resolve("/f")
        dek = node.view.require_dek()
        for payload in server.raw_blobs().values():
            assert dek not in payload


class TestTamperingSsp:
    def _tampering_stack(self, registry, tamper_kind):
        server = TamperingServer(
            should_tamper=lambda bid: bid.kind == tamper_kind)
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        return server, volume

    def test_data_tamper_detected(self, registry):
        server, volume = self._tampering_stack(registry, "nothing-yet")
        fs = _fresh(volume, registry, "alice")
        fs.create_file("/f", b"integrity matters", mode=0o600)
        server._should_tamper = lambda bid: bid.kind == "data"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.read_file("/f")

    def test_metadata_tamper_detected(self, registry):
        server, volume = self._tampering_stack(registry, "nothing-yet")
        fs = _fresh(volume, registry, "alice")
        fs.mknod("/f")
        server._should_tamper = lambda bid: bid.kind == "meta"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.getattr("/f")

    def test_blob_swap_detected(self, volume, registry, server):
        """SSP serving file A's (validly signed) block for file B."""
        fs = _fresh(volume, registry, "alice")
        fs.create_file("/a", b"contents of A", mode=0o600)
        fs.create_file("/b", b"contents of B", mode=0o600)
        ia = fs.getattr("/a").inode
        ib = fs.getattr("/b").inode
        # Both files share the same DEK? No -- distinct; swap within one
        # file's namespace instead: move /a's block to /b's slot.
        server.put(block_blob_id(ib, 0), server.get(block_blob_id(ia, 0)))
        fs.cache.clear()
        with pytest.raises((IntegrityError, CryptoError)):
            fs.read_file("/b")

    def test_block_index_swap_detected(self, volume, registry, server):
        """Reordering blocks within one file is caught by context binding."""
        fs = _fresh(volume, registry, "alice")
        big = bytes(range(256)) * 600  # > 2 blocks at 64 KiB
        fs.create_file("/big", big, mode=0o600)
        inode = fs.getattr("/big").inode
        b0 = server.get(block_blob_id(inode, 0))
        b1 = server.get(block_blob_id(inode, 1))
        server.put(block_blob_id(inode, 0), b1)
        server.put(block_blob_id(inode, 1), b0)
        fs.cache.clear()
        with pytest.raises((IntegrityError, CryptoError)):
            fs.read_file("/big")

    def test_truncation_attack_detected(self, volume, registry, server):
        """Dropping trailing blocks is caught (block 0 carries the count)."""
        fs = _fresh(volume, registry, "alice")
        big = b"z" * (65536 * 2 + 10)
        fs.create_file("/big", big, mode=0o600)
        inode = fs.getattr("/big").inode
        server.delete(block_blob_id(inode, 2))
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.read_file("/big")


class TestMaliciousWriters:
    def test_reader_forgery_detected(self, volume, registry, server):
        """A reader holds the DEK, so they *can* encrypt -- but without
        the DSK their write fails verification (paper section II-B)."""
        alice = _fresh(volume, registry, "alice")
        alice.create_file("/f", b"original", mode=0o644)
        carol = _fresh(volume, registry, "carol")
        node = carol._resolve("/f")
        dek = node.view.require_dek()
        with pytest.raises(KeyAccessError):
            node.view.require_dsk()  # the CAP really lacks it
        # Carol forges anyway: encrypts with the DEK, splices the old
        # signature (the SSP accepts anything).
        forged_cipher = carol.provider.sym_encrypt(
            dek, (1).to_bytes(4, "big") + b"FORGED!!")
        old_blob = server.get(block_blob_id(node.inode, 0))
        server.put(block_blob_id(node.inode, 0),
                   replace_ciphertext(old_blob, forged_cipher))
        alice.cache.clear()
        with pytest.raises(IntegrityError):
            alice.read_file("/f")

    def test_reader_cannot_forge_table(self, volume, registry, server):
        """r-x CAP on a directory: can read the table, cannot rewrite it."""
        alice = _fresh(volume, registry, "alice")
        alice.mkdir("/d", mode=0o755)
        alice.mknod("/d/real")
        carol = _fresh(volume, registry, "carol")
        node = carol._resolve("/d")
        table = carol._fetch_table(node)
        with pytest.raises(KeyAccessError):
            node.view.require_dsk()
        forged = carol.provider.sym_encrypt(node.view.require_dek(),
                                            table.to_bytes())
        old_blob = server.get(table_blob_id(node.inode, node.selector))
        server.put(table_blob_id(node.inode, node.selector),
                   replace_ciphertext(old_blob, forged))
        alice2 = _fresh(volume, registry, "alice")
        # alice reads her own ("o") view -- untouched; carol's own view
        # now fails verification for *other* w-class readers:
        dave = _fresh(volume, registry, "dave")
        with pytest.raises(IntegrityError):
            dave.readdir("/d")

    def test_rebuild_never_leaks_owner_keys(self, volume, registry,
                                            server):
        """Regression: rekeying a directory must not copy the owner's
        canonical rows (with owner MEKs) into world-readable views."""
        alice = _fresh(volume, registry, "alice")
        alice.mkdir("/d", mode=0o755)
        alice.create_file("/d/f", b"x", mode=0o600)
        alice.rekey("/d")
        dave = _fresh(volume, registry, "dave")
        node = dave._resolve("/d")
        entry = dave._fetch_table(node).lookup(
            "f", provider=dave.provider,
            table_dek=node.view.require_dek())
        if entry.kind == "d":
            assert entry.pointer.selector != "o"
        # And functionally: dave still cannot read the 600 file.
        with pytest.raises(PermissionDenied):
            dave.read_file("/d/f")


class TestRollback:
    def test_rekeyed_object_rollback_detected(self, registry):
        """After a rekey, serving the pre-rekey blob fails decryption:
        the old blob cannot satisfy the new keys."""
        server = RollbackServer(should_rollback=lambda bid: False)
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        fs = _fresh(volume, registry, "alice")
        fs.create_file("/f", b"version 1", mode=0o600)
        fs.rekey("/f")
        fs.cache.clear()
        inode = fs.getattr("/f").inode
        server._should_rollback = (
            lambda bid: bid.kind == "data" and bid.inode == inode)
        fs.cache.clear()
        with pytest.raises((IntegrityError, CryptoError)):
            fs.read_file("/f")

    def test_same_epoch_rollback_undetected_documented(self, registry):
        """Within one key epoch, rollback of a whole object is NOT
        detected -- the paper defers this to SUNDR-style fork
        consistency (section VI).  This test documents the boundary."""
        server = RollbackServer(should_rollback=lambda bid: False)
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        fs = _fresh(volume, registry, "alice")
        fs.create_file("/f", b"version 1", mode=0o600)
        fs.write_file("/f", b"version 2")
        inode = fs.getattr("/f").inode
        server._should_rollback = (
            lambda bid: bid.kind == "data" and bid.inode == inode)
        fs.cache.clear()
        assert fs.read_file("/f") == b"version 1"  # silently rolled back


class TestKeyIsolation:
    def test_wrong_superblock_unusable(self, volume, registry, server):
        """carol cannot decrypt alice's superblock blob."""
        from repro.storage.blobs import superblock_blob
        blob = server.get(superblock_blob("alice"))
        carol = registry.user("carol")
        provider = CryptoProvider()
        with pytest.raises(Exception):
            provider.pk_decrypt(carol.private_key, blob)

    def test_unprovisioned_user_cannot_mount(self, volume, registry):
        mallory = User.create("mallory", key_bits=512)
        fs = SharoesFilesystem(volume, mallory)
        with pytest.raises(Exception):
            fs.mount()

    def test_open_unverified_still_needs_key(self, alice_fs, server):
        alice_fs.create_file("/f", b"secret", mode=0o600)
        inode = alice_fs.getattr("/f").inode
        blob = server.get(block_blob_id(inode, 0))
        with pytest.raises((IntegrityError, CryptoError)):
            open_unverified(CryptoProvider(), b"0" * 16, blob)
