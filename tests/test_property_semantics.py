"""Property-based equivalence: SHAROES enforcement == *nix semantics.

The paper's central claim is that CAPs replicate the *nix access control
model over untrusted storage.  This suite generates random trees with
random ownership and modes, then checks that what each user can actually
do through the cryptographic client matches the plain reference evaluator
from :mod:`repro.fs.permissions` -- for listing, traversal+read, and
write -- across both replication schemes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (FileNotFound, PermissionDenied, SharoesError,
                          UnsupportedPermission)
from repro.caps.model import supported_bits
from repro.fs.client import SharoesFilesystem
from repro.fs.permissions import EXEC, READ, WRITE, triple
from repro.fs.volume import SharoesVolume
from repro.migration.localfs import LocalTree
from repro.migration.migrate import MigrationTool
from repro.principals.groups import GroupKeyService
from repro.crypto.provider import CryptoProvider

USERS = ("alice", "bob", "carol", "dave")
GROUPS = ("eng", "hr")

# Supported mode pools (strict SHAROES permissions).
DIR_BITS = [b for b in range(8) if supported_bits(b, "dir")]
FILE_BITS = [b for b in range(8) if supported_bits(b, "file")]


def mode_strategy(bits_pool):
    return st.tuples(st.sampled_from(bits_pool), st.sampled_from(bits_pool),
                     st.sampled_from(bits_pool)).map(
        lambda t: (t[0] << 6) | (t[1] << 3) | t[2])


tree_spec = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),    # parent dir index
        st.sampled_from(USERS),                    # owner
        st.sampled_from(GROUPS),                   # group
        mode_strategy(DIR_BITS),                   # dir mode
        mode_strategy(FILE_BITS),                  # file mode
    ),
    min_size=1, max_size=4)


def _build_tree(spec) -> LocalTree:
    tree = LocalTree("alice", "eng", root_mode=0o755)
    dirs = ["/"]
    for i, (parent_idx, owner, group, dmode, fmode) in enumerate(spec):
        parent = dirs[parent_idx % len(dirs)]
        dpath = (parent.rstrip("/") + f"/d{i}")
        tree.add_dir(dpath, owner=owner, group=group, mode=dmode)
        dirs.append(dpath)
        tree.add_file(dpath + f"/f{i}", f"content-{i}".encode(),
                      owner=owner, group=group, mode=fmode)
    return tree


def _groups_of(user: str) -> set[str]:
    return {"eng"} if user in ("alice", "bob") else (
        {"hr"} if user == "carol" else set())


def _expected_rights(tree: LocalTree, path: str, user: str):
    """(can_reach, can_list_or_read, can_write) per plain *nix rules."""
    from repro.fs import path as fspath
    parts = fspath.split_path(path)
    node = tree.root
    groups = _groups_of(user)
    for name in parts:
        bits = node.mode if node.is_dir() else 0
        from repro.fs.permissions import ObjectPerms
        perms = ObjectPerms(owner=node.owner, group=node.group,
                            mode=node.mode, ftype=node.ftype)
        if not perms.bits_for(user, groups) & EXEC:
            return False, False, False
        node = node.children[name]
    from repro.fs.permissions import ObjectPerms
    perms = ObjectPerms(owner=node.owner, group=node.group,
                        mode=node.mode, ftype=node.ftype)
    bits = perms.bits_for(user, groups)
    if node.is_dir():
        return True, bool(bits & READ), bool(bits & WRITE and bits & EXEC)
    return True, bool(bits & READ), bool(bits & WRITE)


@pytest.fixture(scope="module")
def prop_registry(session_keypairs):
    from repro.principals.registry import PrincipalRegistry
    from repro.principals.users import User
    reg = PrincipalRegistry()
    for name in USERS:
        reg.add_user(User(user_id=name, keypair=session_keypairs[name]))
    reg.create_group("eng", {"alice", "bob"}, key_bits=512)
    reg.create_group("hr", {"carol"}, key_bits=512)
    return reg


class TestNixEquivalence:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=tree_spec, scheme=st.sampled_from(["scheme1", "scheme2"]))
    def test_access_matches_reference(self, prop_registry, spec, scheme):
        from repro.storage.server import StorageServer
        tree = _build_tree(spec)
        server = StorageServer()
        volume = SharoesVolume(server, prop_registry, scheme=scheme)
        MigrationTool(volume).migrate(tree)
        GroupKeyService(prop_registry, server,
                        CryptoProvider()).publish_all()

        all_paths = [p for p, _ in tree.walk() if p != "/"]
        for user in USERS:
            fs = SharoesFilesystem(volume, prop_registry.user(user))
            fs.mount()
            for path in all_paths:
                node = tree.get(path)
                reachable, readable, writable = _expected_rights(
                    tree, path, user)
                self._check_path(fs, path, node, reachable, readable,
                                 writable)

    def _check_path(self, fs, path, node, reachable, readable, writable):
        if not reachable:
            with pytest.raises((PermissionDenied, FileNotFound)):
                fs.getattr(path)
            return
        # Reachable: stat must succeed (zero CAP still allows stat).
        stat = fs.getattr(path)
        assert stat.owner == node.owner

        if node.is_dir():
            if readable:
                assert set(fs.readdir(path)) == set(node.children)
            else:
                with pytest.raises(PermissionDenied):
                    fs.readdir(path)
            if writable:
                fs.mknod(path + "/___probe", mode=0o600)
                fs.unlink(path + "/___probe")
            else:
                with pytest.raises(PermissionDenied):
                    fs.mknod(path + "/___probe", mode=0o600)
        else:
            if readable:
                assert fs.read_file(path) == node.content
            else:
                with pytest.raises(PermissionDenied):
                    fs.read_file(path)
            if writable:
                fs.write_file(path, node.content)  # idempotent rewrite
            else:
                with pytest.raises(PermissionDenied):
                    fs.write_file(path, b"denied")
