"""Write-ahead intent journal: sealing, atomicity, crash recovery.

The crash-point sweep across every op lives in test_crash_matrix.py;
this file covers the journal's own contracts -- the record codec, the
crypto envelope (tamper/forge rejection), batch staging semantics,
partial-write surfacing, and recovery idempotence.
"""

from __future__ import annotations

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (ClientCrashed, FileExists, IntegrityError,
                          PartialWriteError, TransientPartialWriteError,
                          TransientStorageError)
from repro.fs import journal
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.storage.blobs import BlobId, journal_blob
from repro.storage.resilient import CrashingServer, ServerWrapper
from repro.storage.server import StorageServer
from repro.tools.fsck import VolumeAuditor

JCONF = ClientConfig(journal=True, cache_bytes=0)


def make_journaled(volume, registry, user_id="alice", server=None,
                   config=JCONF):
    fs = SharoesFilesystem(volume, registry.user(user_id),
                           config=config, server=server)
    fs.mount()
    return fs


# -- record codec -------------------------------------------------------------


class TestCodec:
    def _record(self) -> journal.IntentRecord:
        return journal.IntentRecord(seq=7, op="rename", calls=(
            journal.StagedCall(journal.PUT_MANY, (
                (BlobId("meta", 3, "u"), b"sealed-meta"),
                (BlobId("data", 3, "t:u"), b"sealed-table"))),
            journal.StagedCall(journal.DELETE, (
                (BlobId("data", 4, "b0"), None),)),
        ))

    def test_roundtrip(self):
        record = self._record()
        [back] = journal.decode_records(
            journal.encode_records([record]))
        assert back == record
        assert back.mutation_count() == 3

    def test_empty_list_roundtrip(self):
        assert journal.decode_records(journal.encode_records([])) == []

    def test_unknown_call_kind_rejected(self):
        bad = journal.StagedCall.__new__(journal.StagedCall)
        object.__setattr__(bad, "kind", "format_volume")
        object.__setattr__(bad, "blobs", ())
        record = journal.IntentRecord(seq=1, op="x", calls=(bad,))
        with pytest.raises(Exception):
            journal.decode_records(journal.encode_records([record]))


# -- crypto envelope ----------------------------------------------------------


class TestEnvelope:
    def test_seal_open_roundtrip(self, registry):
        provider = CryptoProvider()
        alice = registry.user("alice")
        records = [journal.IntentRecord(seq=1, op="mkdir", calls=())]
        blob = journal.seal_journal(provider, alice, records)
        assert journal.open_journal(provider, alice, blob) == records

    def test_tampered_journal_rejected(self, registry):
        provider = CryptoProvider()
        alice = registry.user("alice")
        blob = bytearray(journal.seal_journal(
            provider, alice,
            [journal.IntentRecord(seq=1, op="mkdir", calls=())]))
        blob[len(blob) // 2] ^= 1
        with pytest.raises(IntegrityError):
            journal.open_journal(provider, alice, bytes(blob))

    def test_forged_journal_rejected(self, registry):
        """The SSP holds no user private key: a journal it seals under
        any key it *does* have fails alice's verification."""
        provider = CryptoProvider()
        forged = journal.seal_journal(
            provider, registry.user("bob"),
            [journal.IntentRecord(seq=9, op="unlink", calls=())])
        with pytest.raises(IntegrityError):
            journal.open_journal(provider, registry.user("alice"),
                                 forged)

    def test_journal_blob_is_ciphertext(self, volume, registry):
        """The SSP sees no blob ids or op names in a stored journal."""
        fs = make_journaled(volume, registry)
        crasher = CrashingServer(volume.server, crash_after=3)
        dying = make_journaled(volume, registry, server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/secret-name", b"secret-payload")
        raw = volume.server.get(journal_blob("alice"))
        assert b"secret-name" not in raw
        assert b"secret-payload" not in raw
        assert b"create" not in raw
        assert b"meta" not in raw


# -- recovery rejects bad journals -------------------------------------------


class TestRecoveryRejection:
    def _strand_intent(self, volume, registry) -> None:
        crasher = CrashingServer(volume.server, crash_after=3)
        dying = make_journaled(volume, registry, server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/f", b"x" * 100)

    def test_tampered_intent_never_replayed(self, volume, registry):
        self._strand_intent(volume, registry)
        jid = journal_blob("alice")
        blob = bytearray(volume.server.get(jid))
        blob[len(blob) // 2] ^= 1
        volume.server.put(jid, bytes(blob))
        census = volume.server.blob_count()
        with pytest.raises(IntegrityError):
            make_journaled(volume, registry)  # mount -> recovery
        # nothing was applied: the half-open op stays half-open until
        # fsck quarantines the journal, but no forged blob landed.
        assert volume.server.blob_count() == census

    def test_ssp_forged_intent_never_replayed(self, volume, registry):
        """An SSP that fabricates a whole journal (sealed under keys it
        controls) is caught at mount: IntegrityError, zero replays."""
        self._strand_intent(volume, registry)
        provider = CryptoProvider()
        forged = journal.seal_journal(
            provider, registry.user("bob"),
            [journal.IntentRecord(seq=1, op="unlink", calls=(
                journal.StagedCall(journal.DELETE, (
                    (journal_blob("alice"), None),)),))])
        volume.server.put(journal_blob("alice"), forged)
        census = volume.server.blob_count()
        with pytest.raises(IntegrityError):
            make_journaled(volume, registry)
        assert volume.server.blob_count() == census

    def test_fsck_quarantines_unverifiable_journal(self, volume,
                                                   registry):
        self._strand_intent(volume, registry)
        jid = journal_blob("alice")
        blob = bytearray(volume.server.get(jid))
        blob[-1] ^= 0xFF
        volume.server.put(jid, bytes(blob))
        auditor = VolumeAuditor(volume)
        assert not auditor.audit().clean
        report = auditor.repair()
        assert report.rejected_journals == ["alice"]
        assert report.audit.clean


# -- batch semantics ----------------------------------------------------------


class TestBatchAtomicity:
    def test_failed_op_sends_nothing(self, volume, registry):
        """An op that raises during staging leaves the SSP untouched."""
        fs = make_journaled(volume, registry)
        fs.create_file("/f", b"x")
        before = volume.server.raw_blobs()
        with pytest.raises(FileExists):
            fs.mknod("/f")
        assert volume.server.raw_blobs() == before

    def test_journal_truncated_after_commit(self, volume, registry):
        fs = make_journaled(volume, registry)
        fs.create_file("/f", b"x" * 50)
        provider = CryptoProvider()
        blob = volume.server.get(journal_blob("alice"))
        assert journal.open_journal(provider, registry.user("alice"),
                                    blob) == []
        assert fs.metrics.snapshot()["journal.pending"] == 0

    def test_symlink_reads_its_own_staged_writes(self, volume,
                                                 registry):
        """symlink re-resolves its fresh entry inside the batch; with
        caching off that read must hit the overlay, not the SSP."""
        fs = make_journaled(volume, registry)
        fs.create_file("/target", b"t")
        fs.symlink("/target", "/ln")
        assert fs.readlink("/ln") == "/target"

    def test_read_only_ops_do_not_journal(self, volume, registry):
        fs = make_journaled(volume, registry)
        fs.create_file("/f", b"data")
        puts_before = volume.server.stats.puts
        fs.read_file("/f")
        fs.getattr("/f")
        fs.readdir("/")
        assert volume.server.stats.puts == puts_before

    def test_pending_intent_replayed_before_next_mutation(
            self, volume, registry):
        """A same-session apply failure is healed by the next op, not
        left for the next mount."""

        class OneShotOutage(ServerWrapper):
            def __init__(self, inner):
                super().__init__(inner)
                self.fail_at: int | None = None
                self.puts = 0

            def put(self, blob_id, payload):
                self.puts += 1
                if self.fail_at is not None and \
                        self.puts == self.fail_at:
                    self.fail_at = None
                    raise TransientStorageError("blip")
                self.inner.put(blob_id, payload)

        wrapper = OneShotOutage(volume.server)
        fs = make_journaled(volume, registry, server=wrapper)
        wrapper.fail_at = wrapper.puts + 3  # die mid-apply
        with pytest.raises(TransientStorageError):
            fs.mkdir("/d")
        assert len(fs._pending) == 1
        fs.create_file("/other", b"x")  # replays /d's intent first
        assert fs._pending == []
        assert fs.readdir("/d") == []
        assert fs.metrics.snapshot()["journal.replays"] == 1


# -- recovery idempotence ----------------------------------------------------


class TestRecoveryIdempotence:
    def test_crash_during_recovery_recovers(self, volume, registry):
        """Recovery itself is a replay of overwrite-puts: a second
        crash mid-recovery changes nothing about the final state."""
        crasher = CrashingServer(volume.server, crash_after=4)
        dying = make_journaled(volume, registry, server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/f", b"y" * 200)

        crasher2 = CrashingServer(volume.server, crash_after=2)
        with pytest.raises(ClientCrashed):
            make_journaled(volume, registry, server=crasher2)

        fs = make_journaled(volume, registry)  # third client wins
        assert fs.read_file("/f") == b"y" * 200
        report = VolumeAuditor(volume).audit()
        assert report.clean and not report.orphaned_blobs
        assert report.pending_intents == []

    def test_double_mount_recovery_is_noop(self, volume, registry):
        crasher = CrashingServer(volume.server, crash_after=4)
        dying = make_journaled(volume, registry, server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/f", b"z" * 200)
        first = make_journaled(volume, registry)
        assert first.metrics.snapshot()["journal.recovered"] == 1
        second = make_journaled(volume, registry)
        assert "journal.recovered" not in second.metrics.snapshot() or \
            second.metrics.snapshot()["journal.recovered"] == 0
        assert second.read_file("/f") == b"z" * 200


# -- partial-write surfacing --------------------------------------------------


class _FailNthPut(ServerWrapper):
    def __init__(self, inner, fail_at: int, transient: bool = True):
        super().__init__(inner)
        self.fail_at = fail_at
        self.transient = transient
        self.puts = 0

    def put(self, blob_id, payload):
        self.puts += 1
        if self.puts == self.fail_at:
            if self.transient:
                raise TransientStorageError(f"dropped {blob_id}")
            raise OSError  # never: placeholder


class TestPartialWrite:
    def test_put_many_names_the_split(self, volume, registry):
        wrapper = _FailNthPut(volume.server, fail_at=2)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               server=wrapper)
        blobs = [(BlobId("data", 99, f"b{i}"), b"p%d" % i)
                 for i in range(4)]
        with pytest.raises(TransientPartialWriteError) as err:
            fs._put_many(blobs)
        assert err.value.applied == (blobs[0][0],)
        assert err.value.failed == blobs[1][0]
        assert err.value.remaining == (blobs[2][0], blobs[3][0])
        assert fs.metrics.snapshot()["transport.partial_writes"] == 1

    def test_partial_write_is_still_transient(self, volume, registry):
        """except TransientStorageError contracts keep working."""
        wrapper = _FailNthPut(volume.server, fail_at=1)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               server=wrapper)
        with pytest.raises(TransientStorageError):
            fs._put_many([(BlobId("data", 99, "b0"), b"p")])
        assert issubclass(TransientPartialWriteError, PartialWriteError)
