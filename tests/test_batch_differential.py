"""Differential harness: batching changes round trips, never semantics.

Every seeded workload is run twice -- ``ClientConfig(batching=True)``
(multi-blob writes ride one ``OP_BATCH`` frame) against
``batching=False`` (the honest one-round-trip-per-blob reference
execution).  The two runs must be indistinguishable to everyone except
the network:

* the final SSP state is **byte-identical** (same blob ids, same
  ciphertext bytes);
* the visible filesystem semantics are identical (same tree, same
  stats, same file contents);
* fsck audits the batched volume clean;
* the batched run issues **at most** as many requests, and the saved
  round trips reconcile *exactly* against the ``client.batch.size``
  histogram: every frame of n sub-ops saves n-1 requests, so
  ``unbatched = batched + (sum(n) - frames)``.

Byte-identical ciphertext across two independently-keyed runs needs the
crypto layer pinned: the harness swaps the ``secrets`` entropy calls for
a seeded generator per run, so both runs mint the same keys, IVs, and
signature nonces in the same order (batching happens strictly below the
crypto layer, so the call sequences match).
"""

from __future__ import annotations

import random
import secrets
from contextlib import contextmanager

import pytest

from repro.fs.client import _BATCH_SIZE_BUCKETS, ClientConfig
from repro.fs.permissions import DIRECTORY, AclEntry
from repro.tools.fsck import VolumeAuditor
from repro.workloads.runner import BenchEnv, make_env

_SEED = 0x5EED


class _SeededEntropy:
    """Drop-in for the ``secrets`` functions the crypto stack uses."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def token_bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def randbelow(self, n: int) -> int:
        return self._rng.randrange(n)

    def randbits(self, k: int) -> int:
        return self._rng.getrandbits(k)


@contextmanager
def _pinned_entropy(seed: int = _SEED):
    det = _SeededEntropy(seed)
    saved = (secrets.token_bytes, secrets.randbelow, secrets.randbits)
    secrets.token_bytes = det.token_bytes
    secrets.randbelow = det.randbelow
    secrets.randbits = det.randbits
    try:
        yield
    finally:
        secrets.token_bytes, secrets.randbelow, secrets.randbits = saved


@contextmanager
def _forced_config(**overrides):
    """Force config fields onto every client a run mounts.

    Workloads mount their own fresh clients with their own configs
    (cache settings etc.); the differential axis must apply to those
    too, so ``BenchEnv.fresh_client`` is wrapped to stamp the overrides
    onto whatever config the workload chose.
    """
    original = BenchEnv.fresh_client

    def stamped(self, config=None, reset_cost=True):
        config = config if config is not None else ClientConfig()
        for name, value in overrides.items():
            setattr(config, name, value)
        return original(self, config=config, reset_cost=reset_cost)

    BenchEnv.fresh_client = stamped
    try:
        yield
    finally:
        BenchEnv.fresh_client = original


def _sharing_script(env: BenchEnv) -> None:
    """Sharing/revocation mix: ACL grants, revocation (re-encryption),
    ownership churn, rename and unlink -- the mutation-heavy paths that
    fan multi-blob writes through ``_put_many``/``_delete_many``."""
    fs = env.fs
    payload = b"collaborative document " * 40
    fs.mkdir("/proj", mode=0o755)
    for i in range(6):
        fs.create_file(f"/proj/f{i}", payload + bytes([i]), mode=0o644)
    fs.set_acl("/proj/f0", (AclEntry("bob", 0o4),))
    fs.set_acl("/proj/f1", (AclEntry("bob", 0o6),))
    fs.chmod("/proj/f2", 0o600)
    fs.chown("/proj/f3", "bob")
    # Revoke bob's grant: with immediate_revocation this re-encrypts.
    fs.set_acl("/proj/f0", ())
    fs.rename("/proj/f4", "/proj/g4")
    fs.unlink("/proj/f5")


def _run_workload(workload: str, env: BenchEnv) -> None:
    if workload == "postmark":
        import itertools

        from repro.workloads import postmark
        # Postmark namespaces each pass with a process-global counter;
        # pin it so both differential runs build identical paths.
        postmark._RUN_COUNTER = itertools.count()
        postmark.run_postmark(env, files=30, transactions=40, subdirs=3)
    elif workload == "andrew":
        from repro.workloads.andrew import run_andrew
        run_andrew(env)
    elif workload == "createlist":
        from repro.workloads.createlist import run_create_and_list
        run_create_and_list(env, files=60, dirs=6)
    elif workload == "sharing":
        _sharing_script(env)
    else:  # pragma: no cover
        raise AssertionError(workload)


def _visible_tree(fs, path: str = "/") -> dict:
    """Everything an application can see below ``path``."""
    out = {}
    for name in sorted(fs.readdir(path)):
        child = (path.rstrip("/") + "/" + name)
        stat = fs.getattr(child)
        entry = {"stat": stat}
        if stat.ftype == DIRECTORY:
            entry["children"] = _visible_tree(fs, child)
        else:
            try:
                entry["content"] = fs.read_file(child)
            except Exception as exc:  # symlinks etc.: record the shape
                entry["content"] = type(exc).__name__
        out[name] = entry
    return out


def _differential_run(workload: str, batching: bool,
                      readahead: bool = False):
    with _pinned_entropy(), _forced_config(batching=batching,
                                           readahead=readahead):
        config = ClientConfig(batching=batching, readahead=readahead)
        env = make_env("sharoes", config=config, extra_users=("bob",))
        _run_workload(workload, env)
        fs = env.fs
        hist = fs.metrics.histogram("client.batch.size",
                                    buckets=_BATCH_SIZE_BUCKETS)
        return {
            "blobs": env.server.raw_blobs(),
            "tree": _visible_tree(fs),
            "requests": fs.request_count,
            "frames": hist.count,
            "frame_ops": hist.total,
            "volume": env._volume,
        }


WORKLOADS = ("postmark", "andrew", "createlist", "sharing")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_batching_differential(workload):
    batched = _differential_run(workload, batching=True)
    unbatched = _differential_run(workload, batching=False)

    # Byte-identical final SSP state: same blob ids, same ciphertext.
    assert set(batched["blobs"]) == set(unbatched["blobs"])
    assert batched["blobs"] == unbatched["blobs"]

    # Identical visible semantics.
    assert batched["tree"] == unbatched["tree"]

    # The reference run observes no frames...
    assert unbatched["frames"] == 0
    # ...and the batched run never issues more requests,
    assert batched["requests"] <= unbatched["requests"]
    # ...with the savings reconciling exactly against the histogram:
    # a frame of n sub-ops replaced n single-op round trips.
    saved = batched["frame_ops"] - batched["frames"]
    assert unbatched["requests"] == batched["requests"] + saved

    # Multi-blob mutations exist in every one of these workloads, so
    # batching must actually have batched something.
    assert batched["frames"] > 0
    assert batched["requests"] < unbatched["requests"]

    # The batched volume audits clean.
    report = VolumeAuditor(batched["volume"]).audit()
    assert report.clean, report


def test_readahead_differential_createlist():
    """Readahead is purely speculative: same state, same semantics,
    fewer round trips on the list-heavy phase."""
    plain = _differential_run("createlist", batching=True,
                              readahead=False)
    eager = _differential_run("createlist", batching=True,
                              readahead=True)
    assert eager["blobs"] == plain["blobs"]
    assert eager["tree"] == plain["tree"]
    assert eager["requests"] < plain["requests"]
    report = VolumeAuditor(eager["volume"]).audit()
    assert report.clean, report


def test_readahead_cold_component_falls_back():
    """A prefetch miss (cold/absent blob) must degrade to the demand
    path silently: same answers, fsck clean."""
    with _pinned_entropy():
        env = make_env("sharoes",
                       config=ClientConfig(batching=True, readahead=True))
        fs = env.fs
        fs.mkdir("/d", mode=0o755)
        fs.create_file("/d/f", b"x" * 100, mode=0o644)
        # Deep walk: intermediate components prefetch meta+table; the
        # file component has no table blob, so that sub-op misses.
        fs.mkdir("/d/e", mode=0o755)
        fs.create_file("/d/e/g", b"y" * 100, mode=0o644)
        assert fs.read_file("/d/e/g") == b"y" * 100
        assert sorted(fs.readdir("/d")) == ["e", "f"]
        hits = fs.metrics.counter("client.readahead.hits").value
        assert hits >= 0  # counter exists; misses never raised
        assert VolumeAuditor(env._volume).audit().clean
