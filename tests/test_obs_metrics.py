"""The unified metrics registry and its legacy-struct adapters."""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.fs.cache import LruCache
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               bind_cache_stats, bind_cost_model,
                               bind_crypto_counters, bind_server_stats)
from repro.sim.costmodel import NETWORK, CostModel
from repro.sim.stats import Percentiles
from repro.storage.blobs import BlobId
from repro.storage.server import StorageServer


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("ops").inc(-1)


class TestGauge:
    def test_settable(self):
        g = Gauge("temp")
        g.set(3.5)
        assert g.value == 3.5

    def test_callback_gauge_reads_live(self):
        box = {"v": 1.0}
        g = Gauge("live", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0

    def test_callback_gauge_is_read_only(self):
        g = Gauge("live", fn=lambda: 0.0)
        with pytest.raises(ValueError):
            g.set(1.0)


class TestHistogram:
    def test_basic_accounting(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(55.55 / 4)
        assert h.minimum == 0.05
        assert h.maximum == 50.0
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf bucket

    def test_buckets_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_percentile_validates_range(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(50) == 0.0

    def test_single_value_clamps_all_percentiles(self):
        h = Histogram("h")
        h.observe(0.3)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 0.3

    def test_percentiles_track_exact_ones(self):
        """Bucket interpolation vs the exact Percentiles.from_values:
        agreement within a bucket width on a well-populated series."""
        values = [i / 100 for i in range(1, 200)]  # 0.01 .. 1.99
        h = Histogram("h")
        for v in values:
            h.observe(v)
        exact = Percentiles.from_values(values)
        est = h.percentiles()
        assert est.p50 == pytest.approx(exact.p50, abs=0.5)
        assert est.p95 == pytest.approx(exact.p95, abs=0.6)
        assert est.p99 == pytest.approx(exact.p99, abs=0.6)
        assert est.p50 <= est.p95 <= est.p99

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "mean", "min", "max",
                                    "p50", "p95", "p99"}


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_value_raises_on_unknown(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("no.such.metric")

    def test_snapshot_flattens_histograms_and_sources(self):
        reg = MetricsRegistry()
        reg.counter("ops.count").inc(3)
        reg.histogram("ops.read.seconds").observe(0.2)
        reg.register_source("legacy", lambda: {"hits": 7})
        snap = reg.snapshot()
        assert snap["ops.count"] == 3
        assert snap["ops.read.seconds.count"] == 1
        assert snap["ops.read.seconds.p99"] == 0.2
        assert snap["legacy.hits"] == 7
        assert list(snap) == sorted(snap)


class TestPrometheusExport:
    def test_registered_sources_carry_type_and_help(self):
        from repro.obs.export import prometheus_text
        reg = MetricsRegistry()
        reg.register_source("legacy", lambda: {"hits": 7},
                            help="legacy cache hits")
        text = prometheus_text(reg)
        assert "# HELP sharoes_legacy_hits legacy cache hits" in text
        assert "# TYPE sharoes_legacy_hits gauge" in text
        assert "sharoes_legacy_hits 7" in text

    def test_helpless_source_still_typed(self):
        from repro.obs.export import prometheus_text
        reg = MetricsRegistry()
        reg.register_source("legacy", lambda: {"hits": 7})
        text = prometheus_text(reg)
        assert "# TYPE sharoes_legacy_hits gauge" in text
        assert "# HELP sharoes_legacy_hits" not in text

    def test_help_newlines_and_backslashes_escaped(self):
        from repro.obs.export import prometheus_text
        reg = MetricsRegistry()
        reg.counter("ops", help="multi\nline \\ slash")
        text = prometheus_text(reg)
        assert ("# HELP sharoes_ops multi\\nline \\\\ slash"
                in text.splitlines())

    def test_label_values_escaped(self):
        from repro.obs.export import _prom_escape_label
        assert _prom_escape_label('a"b\nc\\d') == 'a\\"b\\nc\\\\d'

    def test_every_line_is_wellformed(self):
        from repro.obs.export import prometheus_text
        reg = MetricsRegistry()
        reg.counter("ops", help="bad\nhelp")
        reg.histogram("lat").observe(0.5)
        reg.register_source("src", lambda: {"v": 1}, help="also\nbad")
        for line in prometheus_text(reg).strip().splitlines():
            assert line.startswith("#") or " " in line
            assert "\n" not in line


class TestCacheAdapter:
    def test_counters_flow_through(self):
        cache = LruCache(capacity_bytes=100)
        reg = MetricsRegistry()
        bind_cache_stats(reg, cache)
        cache.put("a", b"x", 10)          # insertion
        cache.put("a", b"y", 10)          # replacement
        cache.put("big", b"z", 1000)      # rejected: exceeds the budget
        cache.get("a")                    # hit
        cache.get("nope")                 # miss
        snap = reg.snapshot()
        assert snap["client.cache.insertions"] == 1
        assert snap["client.cache.replacements"] == 1
        assert snap["client.cache.rejected"] == 1
        assert snap["client.cache.hits"] == 1
        assert snap["client.cache.misses"] == 1
        assert snap["client.cache.hit_rate"] == 0.5
        assert snap["client.cache.used_bytes"] == 10
        assert snap["client.cache.entries"] == 1

    def test_zero_capacity_rejects_everything(self):
        cache = LruCache(capacity_bytes=0)
        cache.put("a", b"x", 1)
        cache.put("b", b"y", 1)
        assert cache.stats.rejected == 2
        assert cache.stats.insertions == 0
        assert len(cache) == 0

    def test_oversized_put_evicts_stale_entry(self):
        """Replacing a live key with an uncacheable value must not leave
        the stale value behind."""
        cache = LruCache(capacity_bytes=10)
        cache.put("k", b"old", 3)
        cache.put("k", b"new-but-huge", 100)
        assert cache.stats.rejected == 1
        assert cache.stats.replacements == 0
        assert cache.get("k") is None


class TestServerAdapter:
    def test_delete_parity(self):
        """record_delete carries bytes_freed and per-kind counts, same
        as puts/gets always did."""
        server = StorageServer()
        reg = MetricsRegistry()
        bind_server_stats(reg, server)
        bid = BlobId(kind="data", inode=1, selector="o")
        server.put(bid, b"payload-8")
        server.get(bid)
        server.delete(bid)
        snap = reg.snapshot()
        assert snap["ssp.puts"] == 1
        assert snap["ssp.gets"] == 1
        assert snap["ssp.deletes"] == 1
        assert snap["ssp.bytes_freed"] == len(b"payload-8")
        assert snap["ssp.deletes_by_kind.data"] == 1

    def test_stats_reset_clears_delete_fields(self):
        server = StorageServer()
        bid = BlobId(kind="meta", inode=2, selector="o")
        server.put(bid, b"m")
        server.delete(bid)
        server.stats.reset()
        assert server.stats.deletes == 0
        assert server.stats.bytes_freed == 0
        assert server.stats.deletes_by_kind == {}


class TestCryptoAdapter:
    def test_ops_and_bytes(self):
        provider = CryptoProvider()
        reg = MetricsRegistry()
        bind_crypto_counters(reg, provider)
        key = b"0" * 16
        provider.sym_decrypt(key, provider.sym_encrypt(key, b"x" * 32))
        snap = reg.snapshot()
        assert snap["client.crypto.ops.sym_encrypt"] == 1
        assert snap["client.crypto.ops.sym_decrypt"] == 1
        assert snap["client.crypto.bytes.sym_encrypt"] >= 32


class TestCostAdapter:
    def test_seconds_and_clock(self):
        from repro.sim.profiles import PAPER_2008
        cost = CostModel(PAPER_2008)
        reg = MetricsRegistry()
        bind_cost_model(reg, cost)
        cost.charge(NETWORK, 1.5)
        cost.charge_other(0.5)
        snap = reg.snapshot()
        assert snap["client.cost.seconds.network"] == 1.5
        assert snap["client.cost.seconds.other"] == 0.5
        assert snap["client.cost.seconds.total"] == 2.0
        assert snap["client.cost.clock"] == 2.0
