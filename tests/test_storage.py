"""SSP server, blob ids, fault-injecting variants, accounting."""

import pytest

from repro.errors import BlobNotFound, StorageError
from repro.storage.accounting import monthly_storage_dollars
from repro.storage.blobs import (BlobId, data_blob, group_key_blob,
                                 lockbox_blob, meta_blob, principal_hash,
                                 superblock_blob)
from repro.storage.faults import (FlakyServer, RollbackServer,
                                  TamperingServer)
from repro.storage.server import StorageServer


class TestBlobIds:
    def test_string_form(self):
        assert str(meta_blob(42, "o")) == "meta/42/o"
        assert str(data_blob(7)) == "data/7/-"

    def test_principal_hash_stable_and_opaque(self):
        h = principal_hash("alice")
        assert h == principal_hash("alice")
        assert "alice" not in h
        assert len(h) == 16

    def test_superblock_per_user(self):
        assert superblock_blob("alice") != superblock_blob("bob")

    def test_group_key_blob_distinct(self):
        assert (group_key_blob("eng", "alice")
                != group_key_blob("eng", "bob"))
        assert (group_key_blob("eng", "alice")
                != group_key_blob("hr", "alice"))

    def test_lockbox_addressing(self):
        a = lockbox_blob(5, "alice")
        assert a.inode == 5
        assert a == lockbox_blob(5, "alice")

    def test_ordering_and_hashing(self):
        ids = {meta_blob(1, "o"), meta_blob(1, "o"), meta_blob(2, "o")}
        assert len(ids) == 2
        assert sorted([meta_blob(2, "o"), meta_blob(1, "o")])[0].inode == 1


class TestStorageServer:
    def test_put_get_roundtrip(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"payload")
        assert server.get(meta_blob(1, "o")) == b"payload"

    def test_get_missing_raises(self):
        server = StorageServer()
        with pytest.raises(BlobNotFound):
            server.get(meta_blob(1, "o"))
        assert server.stats.misses == 1

    def test_overwrite(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"v1")
        server.put(meta_blob(1, "o"), b"v2")
        assert server.get(meta_blob(1, "o")) == b"v2"
        assert server.blob_count() == 1

    def test_delete_idempotent(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"x")
        server.delete(meta_blob(1, "o"))
        server.delete(meta_blob(1, "o"))
        assert not server.exists(meta_blob(1, "o"))

    def test_stats_accumulate(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"12345")
        server.get(meta_blob(1, "o"))
        assert server.stats.puts == 1
        assert server.stats.gets == 1
        assert server.stats.bytes_received == 5
        assert server.stats.bytes_served == 5
        assert server.stats.puts_by_kind == {"meta": 1}

    def test_stored_bytes_by_kind(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"12345")
        server.put(data_blob(1, "b0"), b"1234567890")
        assert server.stored_bytes() == 15
        assert server.stored_bytes("meta") == 5
        assert server.stored_bytes("data") == 10

    def test_list_kind(self):
        server = StorageServer()
        server.put(meta_blob(1, "o"), b"x")
        server.put(meta_blob(2, "o"), b"y")
        server.put(data_blob(1, "b0"), b"z")
        assert len(list(server.list_kind("meta"))) == 2

    def test_server_stores_bytes_immutably(self):
        server = StorageServer()
        payload = bytearray(b"mutable")
        server.put(meta_blob(1, "o"), payload)
        payload[0] = 0
        assert server.get(meta_blob(1, "o")) == b"mutable"


class TestFaultServers:
    def test_tampering_flips_on_get(self):
        server = TamperingServer()
        server.put(meta_blob(1, "o"), b"\x00\x00")
        assert server.get(meta_blob(1, "o")) == b"\x01\x00"
        assert server.tamper_count == 1

    def test_tampering_selective(self):
        server = TamperingServer(
            should_tamper=lambda bid: bid.kind == "data")
        server.put(meta_blob(1, "o"), b"\x00")
        server.put(data_blob(1, "b0"), b"\x00")
        assert server.get(meta_blob(1, "o")) == b"\x00"
        assert server.get(data_blob(1, "b0")) == b"\x01"

    def test_rollback_serves_first_version(self):
        server = RollbackServer()
        server.put(meta_blob(1, "o"), b"v1")
        server.put(meta_blob(1, "o"), b"v2")
        assert server.get(meta_blob(1, "o")) == b"v1"

    def test_rollback_selective(self):
        server = RollbackServer(should_rollback=lambda bid: False)
        server.put(meta_blob(1, "o"), b"v1")
        server.put(meta_blob(1, "o"), b"v2")
        assert server.get(meta_blob(1, "o")) == b"v2"

    def test_flaky_failures_deterministic(self):
        a = FlakyServer(failure_rate=0.5, seed=42)
        b = FlakyServer(failure_rate=0.5, seed=42)
        outcomes_a, outcomes_b = [], []
        for outcomes, server in ((outcomes_a, a), (outcomes_b, b)):
            for i in range(20):
                try:
                    server.put(meta_blob(i, "o"), b"x")
                    outcomes.append(True)
                except StorageError:
                    outcomes.append(False)
        assert outcomes_a == outcomes_b
        assert not all(outcomes_a)
        assert any(outcomes_a)

    def test_flaky_rate_bounds(self):
        with pytest.raises(ValueError):
            FlakyServer(failure_rate=1.5)

    def test_flaky_zero_never_fails(self):
        server = FlakyServer(failure_rate=0.0)
        for i in range(50):
            server.put(meta_blob(i, "o"), b"x")


class TestAccounting:
    def test_monthly_dollars(self):
        one_gb = 1024 ** 3
        assert monthly_storage_dollars(one_gb) == pytest.approx(0.15)
        assert monthly_storage_dollars(0) == 0.0

    def test_custom_price(self):
        assert monthly_storage_dollars(1024 ** 3, 0.30) == pytest.approx(0.3)
