"""RSA and ESIGN: roundtrips, tamper rejection, serialization, blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import esign, rsa
from repro.errors import CryptoError, IntegrityError


@pytest.fixture(scope="module")
def rsa_pair():
    return rsa.generate_keypair(512)


@pytest.fixture(scope="module")
def esign_pair():
    return esign.generate_keypair(prime_bits=96)


class TestRsaEncryption:
    def test_roundtrip_small(self, rsa_pair):
        msg = b"hello"
        assert rsa.decrypt(rsa_pair.private,
                           rsa.encrypt(rsa_pair.public, msg)) == msg

    def test_roundtrip_empty(self, rsa_pair):
        assert rsa.decrypt(rsa_pair.private,
                           rsa.encrypt(rsa_pair.public, b"")) == b""

    def test_randomized_padding(self, rsa_pair):
        a = rsa.encrypt(rsa_pair.public, b"same message")
        b = rsa.encrypt(rsa_pair.public, b"same message")
        assert a != b

    def test_message_too_long(self, rsa_pair):
        too_long = b"x" * (rsa_pair.public.max_payload + 1)
        with pytest.raises(CryptoError):
            rsa.encrypt(rsa_pair.public, too_long)

    def test_blob_roundtrip_multiblock(self, rsa_pair):
        msg = b"q" * (rsa_pair.public.max_payload * 3 + 5)
        blob = rsa.encrypt_blob(rsa_pair.public, msg)
        assert len(blob) % rsa_pair.public.byte_length == 0
        assert rsa.decrypt_blob(rsa_pair.private, blob) == msg

    def test_blob_empty_payload(self, rsa_pair):
        blob = rsa.encrypt_blob(rsa_pair.public, b"")
        assert rsa.decrypt_blob(rsa_pair.private, blob) == b""

    def test_blob_misaligned_rejected(self, rsa_pair):
        with pytest.raises(CryptoError):
            rsa.decrypt_blob(rsa_pair.private, b"x" * 63)

    def test_wrong_key_fails(self, rsa_pair):
        other = rsa.generate_keypair(512)
        blob = rsa.encrypt(rsa_pair.public, b"secret")
        with pytest.raises(CryptoError):
            rsa.decrypt(other.private, blob)

    def test_nominal_block_count(self):
        assert rsa.nominal_block_count(0) == 1
        assert rsa.nominal_block_count(245) == 1
        assert rsa.nominal_block_count(246) == 2
        assert rsa.nominal_block_count(4096) == 17

    def test_keygen_rejects_toy_modulus(self):
        with pytest.raises(CryptoError):
            rsa.generate_keypair(64)


class TestRsaSignatures:
    def test_sign_verify(self, rsa_pair):
        sig = rsa.sign(rsa_pair.private, b"message")
        rsa.verify(rsa_pair.public, b"message", sig)

    def test_tampered_message_rejected(self, rsa_pair):
        sig = rsa.sign(rsa_pair.private, b"message")
        with pytest.raises(IntegrityError):
            rsa.verify(rsa_pair.public, b"messagE", sig)

    def test_tampered_signature_rejected(self, rsa_pair):
        sig = bytearray(rsa.sign(rsa_pair.private, b"message"))
        sig[5] ^= 1
        with pytest.raises(IntegrityError):
            rsa.verify(rsa_pair.public, b"message", bytes(sig))

    def test_wrong_signer_rejected(self, rsa_pair):
        other = rsa.generate_keypair(512)
        sig = rsa.sign(other.private, b"message")
        with pytest.raises(IntegrityError):
            rsa.verify(rsa_pair.public, b"message", sig)

    def test_wrong_length_rejected(self, rsa_pair):
        with pytest.raises(IntegrityError):
            rsa.verify(rsa_pair.public, b"message", b"short")


class TestRsaSerialization:
    def test_public_roundtrip(self, rsa_pair):
        raw = rsa_pair.public.to_bytes()
        assert rsa.PublicKey.from_bytes(raw) == rsa_pair.public

    def test_private_roundtrip(self, rsa_pair):
        raw = rsa_pair.private.to_bytes()
        restored = rsa.PrivateKey.from_bytes(raw)
        assert restored == rsa_pair.private
        msg = b"still works"
        assert rsa.decrypt(restored,
                           rsa.encrypt(rsa_pair.public, msg)) == msg

    def test_fingerprint_stable(self, rsa_pair):
        assert (rsa_pair.public.fingerprint()
                == rsa_pair.public.fingerprint())


class TestEsign:
    def test_sign_verify(self, esign_pair):
        sig = esign.sign(esign_pair.signing, b"data block")
        esign.verify(esign_pair.verification, b"data block", sig)

    def test_many_messages(self, esign_pair):
        for i in range(40):
            msg = f"message-{i}".encode()
            esign.verify(esign_pair.verification, msg,
                         esign.sign(esign_pair.signing, msg))

    def test_tampered_message_rejected(self, esign_pair):
        sig = esign.sign(esign_pair.signing, b"payload")
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, b"Payload", sig)

    def test_tampered_signature_rejected(self, esign_pair):
        sig = bytearray(esign.sign(esign_pair.signing, b"payload"))
        sig[-1] ^= 1
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, b"payload", bytes(sig))

    def test_zero_signature_rejected(self, esign_pair):
        zero = bytes(esign_pair.verification.byte_length)
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, b"payload", zero)

    def test_wrong_length_rejected(self, esign_pair):
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, b"payload", b"xy")

    def test_cross_key_rejected(self, esign_pair):
        other = esign.generate_keypair(prime_bits=96)
        sig = esign.sign(other.signing, b"payload")
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, b"payload", sig)

    def test_signing_key_roundtrip(self, esign_pair):
        raw = esign_pair.signing.to_bytes()
        restored = esign.SigningKey.from_bytes(raw)
        sig = esign.sign(restored, b"roundtrip")
        esign.verify(esign_pair.verification, b"roundtrip", sig)

    def test_verification_key_roundtrip(self, esign_pair):
        raw = esign_pair.verification.to_bytes()
        restored = esign.VerificationKey.from_bytes(raw)
        sig = esign.sign(esign_pair.signing, b"roundtrip")
        esign.verify(restored, b"roundtrip", sig)

    def test_modulus_structure(self, esign_pair):
        key = esign_pair.signing
        assert key.n == key.p * key.p * key.q
        assert esign_pair.verification.n == key.n

    def test_rejects_small_exponent(self):
        with pytest.raises(CryptoError):
            esign.generate_keypair(prime_bits=96, e=2)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_roundtrip_property(self, esign_pair, msg):
        sig = esign.sign(esign_pair.signing, msg)
        esign.verify(esign_pair.verification, msg, sig)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_different_message_rejected_property(self, esign_pair, msg):
        sig = esign.sign(esign_pair.signing, msg)
        with pytest.raises(IntegrityError):
            esign.verify(esign_pair.verification, msg + b"!", sig)
