"""Unit tests for the resilient SSP transport (the tentpole layer).

Covers the three transient-fault injectors (Flaky / Slow / Outage), the
retry loop (backoff, jitter determinism, deadline), the circuit breaker
state machine, graceful degradation through the last-known-good cache,
and the observability wiring (cost-model charges, retry spans,
``bind_transport`` metrics).  Whole-filesystem chaos lives in
``test_chaos.py``; this file isolates each mechanism.
"""

from __future__ import annotations

import pytest

from repro.errors import (BlobNotFound, CircuitOpenError, StorageError,
                          TransientStorageError)
from repro.obs.metrics import MetricsRegistry, bind_transport
from repro.obs.tracing import Tracer
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.profiles import FREE
from repro.storage.blobs import data_blob
from repro.storage.resilient import (BREAKER_CLOSED, BREAKER_HALF_OPEN,
                                     BREAKER_OPEN, FlakyServer,
                                     OutageServer, ResilientTransport,
                                     RetryPolicy, ServerWrapper,
                                     SlowServer)
from repro.storage.server import StorageServer

BLOB = data_blob(1, "b0")
OTHER = data_blob(2, "b0")


class FailNTimes(ServerWrapper):
    """Fails the first ``fails`` requests, then behaves."""

    def __init__(self, inner, fails: int, exc=TransientStorageError):
        super().__init__(inner, name="fail-n")
        self.remaining = fails
        self._exc = exc

    def _gate(self):
        if self.remaining > 0:
            self.remaining -= 1
            raise self._exc("injected failure")

    def put(self, blob_id, payload):
        self._gate()
        self.inner.put(blob_id, payload)

    def get(self, blob_id):
        self._gate()
        return self.inner.get(blob_id)

    def delete(self, blob_id):
        self._gate()
        self.inner.delete(blob_id)

    def exists(self, blob_id):
        self._gate()
        return self.inner.exists(blob_id)


def seeded_backend() -> StorageServer:
    backend = StorageServer()
    backend.put(BLOB, b"payload-v1")
    return backend


# -- fault injectors ----------------------------------------------------------


class TestFlakyServer:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FlakyServer(StorageServer(), failure_rate=1.5)
        with pytest.raises(ValueError):
            FlakyServer(StorageServer(), failure_rate={"get": -0.1})

    def test_per_op_rates(self):
        flaky = FlakyServer(seeded_backend(),
                            failure_rate={"get": 1.0}, seed=1)
        flaky.put(OTHER, b"x")  # put rate defaults to 0: never fails
        with pytest.raises(TransientStorageError):
            flaky.get(BLOB)
        assert flaky.injected_faults == 1
        assert flaky.faults_by_op == {"put": 0, "get": 1, "delete": 0,
                                      "exists": 0}

    def test_seeded_determinism(self):
        def fault_pattern(seed):
            flaky = FlakyServer(seeded_backend(), failure_rate=0.5,
                                seed=seed)
            pattern = []
            for _ in range(40):
                try:
                    flaky.get(BLOB)
                    pattern.append(False)
                except TransientStorageError:
                    pattern.append(True)
            return pattern

        assert fault_pattern(7) == fault_pattern(7)
        assert fault_pattern(7) != fault_pattern(8)

    def test_delegates_unknown_attrs(self):
        backend = seeded_backend()
        flaky = FlakyServer(backend, failure_rate=0.0)
        assert flaky.blob_count() == backend.blob_count()
        assert flaky.stats is backend.stats


class TestSlowServer:
    def test_charges_network_time(self):
        cost = CostModel(FREE)
        slow = SlowServer(seeded_backend(), delay_s=0.25, cost=cost)
        slow.get(BLOB)
        slow.exists(BLOB)
        assert slow.delayed_requests == 2
        assert cost.totals.seconds["network"] == pytest.approx(0.5)
        assert cost.clock.now == pytest.approx(0.5)

    def test_clock_only_mode(self):
        clock = SimClock()
        slow = SlowServer(seeded_backend(), delay_s=1.5, clock=clock)
        slow.get(BLOB)
        assert clock.now == pytest.approx(1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SlowServer(StorageServer(), delay_s=-1.0)


class TestOutageServer:
    def test_fails_only_inside_window(self):
        clock = SimClock()
        outage = OutageServer(seeded_backend(), clock,
                              start_s=10.0, end_s=20.0)
        assert outage.get(BLOB) == b"payload-v1"  # before the window
        clock.advance(15.0)
        assert outage.in_outage
        with pytest.raises(TransientStorageError):
            outage.get(BLOB)
        clock.advance(5.0)  # t=20: window is half-open [start, end)
        assert outage.get(BLOB) == b"payload-v1"
        assert outage.rejected_requests == 1

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            OutageServer(StorageServer(), SimClock(), 5.0, 1.0)


# -- RetryPolicy --------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_threshold=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            RetryPolicy().max_attempts = 9


# -- retry loop ---------------------------------------------------------------


class TestRetryLoop:
    def test_success_needs_no_retry(self):
        transport = ResilientTransport(seeded_backend())
        assert transport.get(BLOB) == b"payload-v1"
        assert (transport.attempts, transport.retries,
                transport.failed_attempts) == (1, 0, 0)

    def test_masks_transient_failures(self):
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=2),
            RetryPolicy(max_attempts=4))
        assert transport.get(BLOB) == b"payload-v1"
        assert transport.retries == 2
        assert transport.failed_attempts == 2
        assert transport.giveups == 0
        assert transport.backoff_seconds > 0

    def test_exhaustion_raises_with_cause(self):
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=99),
            RetryPolicy(max_attempts=3, cache_fallback=False))
        with pytest.raises(TransientStorageError) as excinfo:
            transport.get(BLOB)
        assert isinstance(excinfo.value.__cause__, TransientStorageError)
        assert transport.giveups == 1
        assert transport.failed_attempts == 3
        assert transport.retries == 2
        # invariant the chaos suite reconciles against injected faults:
        assert (transport.failed_attempts
                == transport.retries + transport.giveups)

    def test_blob_not_found_is_not_retried(self):
        transport = ResilientTransport(StorageServer())
        with pytest.raises(BlobNotFound):
            transport.get(BLOB)
        assert transport.attempts == 1
        assert transport.retries == 0

    def test_plain_storage_error_is_not_retried(self):
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=99, exc=StorageError),
            RetryPolicy(cache_fallback=False))
        with pytest.raises(StorageError):
            transport.get(BLOB)
        assert transport.attempts == 1

    def test_jitter_off_doubles_deterministically(self):
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=3),
            RetryPolicy(max_attempts=4, base_delay_s=0.1,
                        max_delay_s=10.0, jitter=False))
        transport.get(BLOB)
        # delays: 0.1 + 0.2 + 0.4
        assert transport.backoff_seconds == pytest.approx(0.7)

    def test_jitter_is_seed_deterministic(self):
        def total_backoff(seed):
            transport = ResilientTransport(
                FailNTimes(seeded_backend(), fails=5),
                RetryPolicy(max_attempts=8, seed=seed))
            transport.get(BLOB)
            return transport.backoff_seconds

        assert total_backoff(3) == total_backoff(3)
        assert total_backoff(3) != total_backoff(4)

    def test_jitter_delays_respect_bounds(self):
        policy = RetryPolicy(base_delay_s=0.05, max_delay_s=0.4, seed=11)
        transport = ResilientTransport(StorageServer(), policy)
        delay = policy.base_delay_s
        for _ in range(200):
            delay = transport._next_delay(delay)
            assert policy.base_delay_s <= delay <= policy.max_delay_s

    def test_deadline_caps_total_backoff(self):
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=99),
            RetryPolicy(max_attempts=50, base_delay_s=1.0,
                        max_delay_s=4.0, deadline_s=3.0, jitter=False,
                        breaker_threshold=1000, cache_fallback=False))
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)
        # 1 + 2 = 3s spent; the next 4s delay would blow the deadline.
        assert transport.backoff_seconds == pytest.approx(3.0)
        assert transport.attempts == 3  # far fewer than max_attempts

    def test_put_and_delete_retry_too(self):
        backend = seeded_backend()
        transport = ResilientTransport(FailNTimes(backend, fails=1))
        transport.put(OTHER, b"fresh")
        assert backend.get(OTHER) == b"fresh"
        inner = FailNTimes(backend, fails=1)
        transport2 = ResilientTransport(inner)
        transport2.delete(OTHER)
        assert not backend.exists(OTHER)
        assert transport.retries == transport2.retries == 1


# -- circuit breaker ----------------------------------------------------------


def _down_transport(policy=None, cost=None):
    """Transport over a permanently-failing backend."""
    return ResilientTransport(FailNTimes(seeded_backend(), fails=10**9),
                              policy, cost=cost)


class TestCircuitBreaker:
    POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.01,
                         breaker_threshold=3, breaker_cooldown_s=5.0,
                         cache_fallback=False, jitter=False)

    def test_opens_after_consecutive_failures(self):
        transport = _down_transport(self.POLICY)
        assert transport.breaker_state == BREAKER_CLOSED
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)  # 2 failed attempts
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)  # 2 more: threshold crossed at 3
        assert transport.breaker_state == BREAKER_OPEN
        assert transport.breaker_opens == 1

    def test_open_breaker_rejects_without_touching_server(self):
        transport = _down_transport(self.POLICY)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                transport.get(BLOB)
        attempts_when_open = transport.attempts
        with pytest.raises(CircuitOpenError):
            transport.get(BLOB)
        assert transport.attempts == attempts_when_open
        assert transport.breaker_rejections == 1

    def test_half_open_probe_closes_on_success(self):
        cost = CostModel(FREE)
        inner = FailNTimes(seeded_backend(), fails=4)
        transport = ResilientTransport(inner, self.POLICY, cost=cost)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                transport.get(BLOB)
        assert transport.breaker_state == BREAKER_OPEN
        cost.clock.advance(5.0)  # cooldown elapses on the sim clock
        assert transport.get(BLOB) == b"payload-v1"  # half-open probe
        assert transport.breaker_state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        cost = CostModel(FREE)
        policy = RetryPolicy(max_attempts=1, breaker_threshold=3,
                             breaker_cooldown_s=5.0, cache_fallback=False,
                             jitter=False)
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=10**9), policy, cost=cost)
        for _ in range(3):
            with pytest.raises(TransientStorageError):
                transport.get(BLOB)
        assert transport.breaker_state == BREAKER_OPEN
        cost.clock.advance(5.0)
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)  # the probe fails -> snap back open
        assert transport.breaker_state == BREAKER_OPEN
        assert transport.breaker_opens == 2

    def test_half_open_state_is_reachable(self):
        cost = CostModel(FREE)
        transport = _down_transport(self.POLICY, cost=cost)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                transport.get(BLOB)
        cost.clock.advance(5.0)
        assert transport._breaker_allows()
        assert transport.breaker_state == BREAKER_HALF_OPEN

    def test_full_lifecycle_on_shared_clock(self):
        # No cost model: the cooldown elapses on a clock the *rest of
        # the system* advances (the volume clock, the sharded router's
        # clock) -- the transport's own backoff never moves it.  Before
        # the explicit ``clock=`` plumbing the breaker timed out on a
        # private clock nothing advanced, so OPEN was forever.
        clock = SimClock()
        inner = FailNTimes(seeded_backend(), fails=4)
        transport = ResilientTransport(inner, self.POLICY, clock=clock)
        assert transport.breaker_state == BREAKER_CLOSED
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                transport.get(BLOB)  # 2x2 attempts: threshold crossed
        assert transport.breaker_state == BREAKER_OPEN
        with pytest.raises(CircuitOpenError):
            transport.get(BLOB)  # cooldown has not elapsed
        clock.advance(4.99)  # simulated time passes elsewhere...
        with pytest.raises(CircuitOpenError):
            transport.get(BLOB)  # ...but not enough of it
        clock.advance(0.01)
        assert transport.breaker_state == BREAKER_OPEN
        assert transport.get(BLOB) == b"payload-v1"  # half-open probe
        assert transport.breaker_state == BREAKER_CLOSED
        assert transport.breaker_opens == 1
        assert transport.breaker_rejections == 2


# -- graceful degradation -----------------------------------------------------


class TestDegradedReads:
    def test_stale_serve_after_retry_exhaustion(self):
        backend = seeded_backend()
        gate = FailNTimes(backend, fails=0)
        transport = ResilientTransport(
            gate, RetryPolicy(max_attempts=2, base_delay_s=0.0))
        assert transport.get(BLOB) == b"payload-v1"  # caches fallback
        gate.remaining = 10**9  # SSP goes dark
        assert transport.get(BLOB) == b"payload-v1"  # stale, not raise
        assert transport.degraded_reads == 1
        assert BLOB in transport.stale_blob_ids
        assert transport.consume_stale_flags() == 1
        assert transport.consume_stale_flags() == 0

    def test_put_write_through_feeds_fallback(self):
        backend = seeded_backend()
        gate = FailNTimes(backend, fails=0)
        transport = ResilientTransport(
            gate, RetryPolicy(max_attempts=2, base_delay_s=0.0))
        transport.put(OTHER, b"my own write")
        gate.remaining = 10**9
        assert transport.get(OTHER) == b"my own write"
        assert transport.degraded_reads == 1

    def test_fresh_fetch_clears_stale_mark(self):
        backend = seeded_backend()
        gate = FailNTimes(backend, fails=0)
        transport = ResilientTransport(
            gate, RetryPolicy(max_attempts=2, base_delay_s=0.0))
        transport.get(BLOB)
        gate.remaining = 10**9
        transport.get(BLOB)  # stale
        gate.remaining = 0  # SSP heals
        assert transport.get(BLOB) == b"payload-v1"
        assert BLOB not in transport.stale_blob_ids

    def test_delete_invalidates_fallback(self):
        backend = seeded_backend()
        gate = FailNTimes(backend, fails=0)
        transport = ResilientTransport(
            gate, RetryPolicy(max_attempts=2, base_delay_s=0.0))
        transport.get(BLOB)
        transport.delete(BLOB)
        gate.remaining = 10**9
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)  # no fallback copy survives a delete
        assert transport.degraded_reads == 0

    def test_open_breaker_serves_stale(self):
        policy = RetryPolicy(max_attempts=1, breaker_threshold=2,
                             breaker_cooldown_s=100.0)
        backend = seeded_backend()
        gate = FailNTimes(backend, fails=0)
        transport = ResilientTransport(gate, policy)
        transport.get(BLOB)
        gate.remaining = 10**9
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                transport.get(OTHER)  # never cached: must raise
        assert transport.breaker_state == BREAKER_OPEN
        assert transport.get(BLOB) == b"payload-v1"  # rejected -> stale
        assert transport.breaker_rejections == 1
        assert transport.degraded_reads == 1

    def test_fallback_disabled(self):
        gate = FailNTimes(seeded_backend(), fails=0)
        transport = ResilientTransport(
            gate, RetryPolicy(max_attempts=2, base_delay_s=0.0,
                              cache_fallback=False))
        transport.get(BLOB)
        gate.remaining = 10**9
        with pytest.raises(TransientStorageError):
            transport.get(BLOB)


# -- degraded reads x client caches (PR 7 regression) -------------------------


class TestDegradedCacheInteraction:
    """A last-known-good payload is served once and never cached.

    If the client cached the decrypted view of a degraded blob, the
    outage would outlive itself: the stale entry would keep serving old
    state long after the SSP healed.  The client checks the transport's
    ``stale_blob_ids`` ledger before every cache fill -- both the legacy
    metadata/data caches and the PR 7 verified metadata cache.
    """

    def _mounted(self, volume, registry, mdcache: bool):
        from repro.fs.client import ClientConfig, SharoesFilesystem
        gate = FailNTimes(volume.server, fails=0)
        # Huge breaker threshold: degradation comes purely from retry
        # exhaustion.  (An *open* breaker also serves stale, but this
        # volume carries no shared clock, so the cooldown would elapse
        # on a private simulated clock nothing here advances and the
        # healed reads below would still be rejected.)
        config = ClientConfig(
            mdcache=mdcache,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                     breaker_threshold=10**9))
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=config, server=gate)
        fs.mount()
        return fs, gate

    @pytest.mark.parametrize("mdcache", [False, True],
                             ids=["legacy-cache", "mdcache"])
    def test_degraded_payloads_never_populate_caches(self, volume,
                                                     registry, mdcache):
        fs, gate = self._mounted(volume, registry, mdcache)
        fs.mkdir("/deg")
        fs.mknod("/deg/f", mode=0o644)
        fs.write_file("/deg/f", b"survives the outage")

        fs.cache.clear()  # cold client caches; transport fallback warm
        gate.remaining = 10**9  # SSP goes dark

        assert fs.read_file("/deg/f") == b"survives the outage"
        first_wave = fs.server.degraded_reads
        assert first_wave > 0
        skips = fs.metrics.snapshot()["client.cache.degraded_skips"]
        assert skips > 0
        if mdcache:
            assert fs.mdcache.degraded_skips == skips

        # Nothing was cached: a second dark read crosses the transport
        # for every blob again instead of hitting a poisoned cache.
        assert fs.read_file("/deg/f") == b"survives the outage"
        assert fs.server.degraded_reads >= 2 * first_wave

        # SSP heals: the fresh fetch repopulates the caches normally...
        gate.remaining = 0
        assert fs.read_file("/deg/f") == b"survives the outage"
        assert not fs.server.stale_blob_ids
        # ...so a warm read needs no transport attempts at all.
        attempts = fs.server.attempts
        assert fs.read_file("/deg/f") == b"survives the outage"
        assert fs.server.attempts == attempts

    def test_degraded_read_still_verifies(self, volume, registry):
        """Degradation weakens availability, never integrity: the stale
        payload is validly signed old bytes, decrypted and verified on
        the normal path."""
        fs, gate = self._mounted(volume, registry, mdcache=True)
        fs.mkdir("/v")
        fs.mknod("/v/f", mode=0o600)
        fs.write_file("/v/f", b"signed")
        fs.cache.clear()
        gate.remaining = 10**9
        attrs = fs.getattr("/v/f")
        assert attrs.mode & 0o777 == 0o600
        assert fs.read_file("/v/f") == b"signed"


# -- observability wiring -----------------------------------------------------


class TestObservability:
    def test_backoff_charged_to_network_bucket(self):
        cost = CostModel(FREE)  # zero request costs: only backoff lands
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=2),
            RetryPolicy(base_delay_s=0.1, jitter=False), cost=cost)
        transport.get(BLOB)
        assert cost.totals.seconds["network"] == pytest.approx(
            transport.backoff_seconds)
        assert transport.backoff_seconds == pytest.approx(0.3)

    def test_attempt_spans_emitted(self):
        """Every attempt gets a sibling span -- the first included -- so
        a fault at attempt k leaves k+1 spans, the failures marked."""
        tracer = Tracer()
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=2),
            RetryPolicy(base_delay_s=0.1, jitter=False), tracer=tracer)
        transport.get(BLOB)
        spans = [s for s in tracer.finished if s.name == "attempt"]
        assert [s.attrs["attempt"] for s in spans] == [1, 2, 3]
        assert [s.attrs["delay"] for s in spans] == \
            pytest.approx([0.0, 0.1, 0.2])
        assert [s.error for s in spans] == \
            ["TransientStorageError", "TransientStorageError", None]
        assert len(spans) == transport.attempts

    def test_bind_transport_snapshot(self):
        registry = MetricsRegistry()
        transport = ResilientTransport(
            FailNTimes(seeded_backend(), fails=2),
            RetryPolicy(base_delay_s=0.0))
        bind_transport(registry, transport)
        transport.get(BLOB)
        snap = registry.snapshot()
        assert snap["transport.attempts"] == 3
        assert snap["transport.retries"] == 2
        assert snap["transport.failures"] == 2
        assert snap["transport.giveups"] == 0
        assert snap["transport.breaker.state"] == 0
        assert snap["transport.degraded_reads"] == 0
