"""Trace record/replay workloads."""

import pytest

from repro.errors import SharoesError
from repro.workloads import make_env
from repro.workloads.trace import (Trace, TraceOp, replay_timed,
                                   synthesize_office_trace)


class TestTraceFormat:
    def test_roundtrip_text(self):
        trace = (Trace()
                 .mkdir("/a", 0o750)
                 .create("/a/f", 1024, 0o640)
                 .read("/a/f")
                 .append("/a/f", 128)
                 .write("/a/f", 2048)
                 .getattr("/a/f")
                 .readdir("/a")
                 .chmod("/a/f", 0o600)
                 .unlink("/a/f")
                 .rmdir("/a"))
        restored = Trace.loads(trace.dumps())
        assert restored.ops == trace.ops

    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\nmkdir\t/a\t755\n"
        trace = Trace.loads(text)
        assert len(trace.ops) == 1
        assert trace.ops[0] == TraceOp("mkdir", "/a", arg=0o755)

    def test_bad_line_rejected(self):
        with pytest.raises(SharoesError):
            Trace.loads("teleport\t/a\n")
        with pytest.raises(SharoesError):
            Trace.loads("mkdir\t/a\t755\textra\n")

    def test_save_load_file(self, tmp_path):
        trace = Trace().mkdir("/x", 0o700).create("/x/y", 10, 0o600)
        target = tmp_path / "ops.trace"
        trace.save(target)
        assert Trace.load(target).ops == trace.ops

    def test_synthesized_trace_shape(self):
        trace = synthesize_office_trace(users_dirs=2, files_per_dir=3,
                                        churn=10)
        kinds = {op.op for op in trace.ops}
        assert "mkdir" in kinds and "create" in kinds
        assert len(trace.ops) == 2 + 6 + 10

    def test_synthesis_deterministic(self):
        a = synthesize_office_trace(seed=5)
        b = synthesize_office_trace(seed=5)
        assert a.ops == b.ops


class TestReplay:
    def test_replay_on_sharoes(self):
        env = make_env("sharoes")
        trace = (Trace().mkdir("/p", 0o750)
                 .create("/p/f", 500, 0o640)
                 .append("/p/f", 100).read("/p/f"))
        assert trace.replay(env.fs) == 4
        assert len(env.fs.read_file("/p/f")) == 600

    def test_replay_deterministic_payloads(self):
        env_a = make_env("sharoes")
        env_b = make_env("no-enc-md-d")
        trace = Trace().create("/f", 256, 0o600)
        trace.replay(env_a.fs, seed=7)
        trace.replay(env_b.fs, seed=7)
        assert env_a.fs.read_file("/f") == env_b.fs.read_file("/f")

    def test_replay_timed_comparison(self):
        """The point of traces: identical streams across implementations,
        with the expected cost ordering at a realistic cache size.  (With
        an unbounded cache PUB-OPT becomes competitive, exactly as the
        paper's Figure 10 notes -- so the cache is bounded here.)"""
        from repro.fs.client import ClientConfig
        trace = synthesize_office_trace(users_dirs=2, files_per_dir=3,
                                        churn=20)
        config = ClientConfig(cache_bytes=2048)
        times = {}
        for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
            env = make_env(impl)
            times[impl] = replay_timed(env, trace, config=config)
        assert (times["no-enc-md-d"] < times["sharoes"]
                < times["pub-opt"])

    def test_full_vocabulary_on_baseline(self):
        env = make_env("no-enc-md")
        trace = (Trace().mkdir("/a", 0o755).create("/a/f", 64, 0o644)
                 .getattr("/a/f").readdir("/a").write("/a/f", 32)
                 .chmod("/a/f", 0o600).unlink("/a/f").rmdir("/a"))
        assert trace.replay(env.fs) == 8
