"""The volume auditor (fsck)."""

import pytest

from repro.errors import SharoesError
from repro.fs.volume import block_blob_id, table_blob_id
from repro.storage.blobs import data_blob, meta_blob
from repro.tools.fsck import VolumeAuditor


@pytest.fixture
def populated(alice_fs, bob_fs):
    alice_fs.mkdir("/docs", mode=0o755)
    alice_fs.create_file("/docs/shared.txt", b"everyone", mode=0o644)
    alice_fs.create_file("/docs/private.txt", b"mine", mode=0o600)
    alice_fs.mkdir("/drop", mode=0o711)
    alice_fs.create_file("/drop/hidden.txt", b"by name", mode=0o644)
    alice_fs.symlink("/docs/shared.txt", "/docs/link")
    return alice_fs


class TestCleanVolume:
    def test_clean_report(self, populated, volume):
        report = VolumeAuditor(volume).audit()
        assert report.clean
        assert report.users_mounted == 4
        assert report.files_verified >= 3
        assert report.directories_verified >= 3
        assert report.symlinks_verified == 1
        assert report.orphaned_blobs == []
        assert "CLEAN" in report.summary()

    def test_exec_only_content_not_flagged(self, populated, volume):
        """The auditor cannot list /drop as non-owners, but the owner
        pass covers it; no structural errors result."""
        report = VolumeAuditor(volume).audit()
        assert report.structural_errors == []

    def test_audit_is_read_only(self, populated, volume, server):
        before = server.stats.puts
        VolumeAuditor(volume).audit()
        assert server.stats.puts == before


class TestDetection:
    def test_corrupt_data_block_found(self, populated, volume, server):
        inode = populated.getattr("/docs/shared.txt").inode
        blob = bytearray(server.get(block_blob_id(inode, 0)))
        blob[12] ^= 0xFF
        server.put(block_blob_id(inode, 0), bytes(blob))
        report = VolumeAuditor(volume).audit()
        assert not report.clean
        assert any("shared.txt" in err for err in report.integrity_errors)

    def test_corrupt_metadata_found(self, populated, volume, server):
        inode = populated.getattr("/docs/private.txt").inode
        blob = bytearray(server.get(meta_blob(inode, "o")))
        blob[8] ^= 1
        server.put(meta_blob(inode, "o"), bytes(blob))
        report = VolumeAuditor(volume).audit()
        assert not report.clean

    def test_corrupt_table_found(self, populated, volume, server):
        inode = populated.getattr("/docs").inode
        blob = bytearray(server.get(table_blob_id(inode, "o")))
        blob[16] ^= 1
        server.put(table_blob_id(inode, "o"), bytes(blob))
        report = VolumeAuditor(volume).audit()
        assert not report.clean

    def test_orphan_blob_found(self, populated, volume, server):
        server.put(data_blob(9999, "b0"), b"abandoned ciphertext")
        report = VolumeAuditor(volume).audit()
        assert "data/9999/b0" in report.orphaned_blobs
        assert report.clean  # orphans are waste, not corruption

    def test_missing_replica_reported_not_fatal(self, populated, volume,
                                                server):
        """Deleting one user's replica breaks that user's view only."""
        inode = populated.getattr("/docs/shared.txt").inode
        server.delete(meta_blob(inode, "w"))
        report = VolumeAuditor(volume).audit()
        # Owner and group still verify the object; the file itself is
        # still counted, and no integrity error is raised (a missing
        # replica reads as PermissionDenied for that chain).
        assert report.files_verified >= 3

    def test_summary_mentions_errors(self, populated, volume, server):
        inode = populated.getattr("/docs/shared.txt").inode
        blob = bytearray(server.get(block_blob_id(inode, 0)))
        blob[12] ^= 0xFF
        server.put(block_blob_id(inode, 0), bytes(blob))
        report = VolumeAuditor(volume).audit()
        assert "ERRORS FOUND" in report.summary()
