"""Many-client throughput harness: correctness of the measurement rig.

The harness (:func:`repro.workloads.throughput.run_throughput`) is a
benchmark, but its *outputs* carry acceptance claims -- zero fsck
inconsistencies under N concurrent journaled/leased clients, exact
latency percentiles, reproducible seeded interleaves -- so the rig
itself is under test at a small scale here.  The 100-client
configuration recorded in BENCH_10.json runs as a quarantined soak
(CI's concurrency job, ``-m quarantine``), not in tier-1.
"""

from __future__ import annotations

import pytest

from repro.workloads.throughput import run_throughput

SMALL = dict(clients=6, ops_per_client=8, shared_files=3)


class TestThroughputHarness:
    def test_small_run_is_healthy(self):
        result = run_throughput(**SMALL)
        assert result["fsck_clean"], result["fsck_errors"]
        assert result["attempted"] == 6 * 8
        assert result["completed"] + result["lease_conflicts"] \
            == result["attempted"]
        assert result["completed"] == sum(result["op_counts"].values())
        assert result["ops_per_sec"] > 0
        lat = result["latency_s"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert result["wire_requests"] > 0

    def test_seeded_runs_reproduce(self):
        first = run_throughput(**SMALL)
        second = run_throughput(**SMALL)
        # Everything measured is deterministic given the seed -- the
        # keys differ per run (real entropy) but timing, request
        # counts and the op interleave are identical.
        for field in ("attempted", "completed", "lease_conflicts",
                      "op_counts", "sim_seconds", "ops_per_sec",
                      "latency_s", "wire_requests"):
            assert first[field] == second[field], field

    def test_concurrency_helps_and_stays_clean(self):
        sequential = run_throughput(**SMALL, concurrency=0)
        concurrent = run_throughput(**SMALL, concurrency=8)
        assert concurrent["fsck_clean"]
        # Pipelined read flights must not cost extra wire requests...
        assert concurrent["wire_requests"] <= sequential["wire_requests"]
        # ...or slow the run down (the win is scale-dependent; at this
        # tiny scale we only pin the direction).
        assert concurrent["ops_per_sec"] >= sequential["ops_per_sec"]

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            run_throughput(clients=0)


@pytest.mark.quarantine
def test_hundred_client_soak():
    """The BENCH_10 configuration: 100 journaled+leased clients, 2000
    ops, pipelined at concurrency=8, zero fsck inconsistencies."""
    result = run_throughput(clients=100, ops_per_client=20,
                            concurrency=8)
    assert result["fsck_clean"], result["fsck_errors"]
    assert result["fsck_errors"] == 0
    assert result["completed"] > 0.9 * result["attempted"]
    lat = result["latency_s"]
    assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
