"""Property-based tests for the request scheduler's ordering contract.

The concurrency differential suite proves whole workloads end up
byte-identical; these properties pin the :class:`repro.fs.scheduler.
RequestScheduler` invariants that argument rests on, under randomized
operation sequences against a dict-based reference model:

1. **Read-your-writes, never reordered**: a read of a staged blob is
   answered from the overlay (the newest staged state), and a read of
   an unstaged blob sees exactly the flushed state -- so a mutation is
   never reordered past a read that depends on it.
2. **FIFO shipping**: replaying the waves the server actually received,
   in order, reproduces the reference model exactly; no wave exceeds
   the window, and the queue auto-drains before it can exceed
   ``2 * window - 1`` (a whole group staged atop an almost-full queue).
3. **In-flight dedup**: duplicate ids in one ``fetch_many`` ride a
   single wire fetch, and every caller position resolves to that one
   fetch's bytes.
4. **Stale cancellation**: a fetch flight that races an invalidation
   (``note_invalidation`` mid-flight) drops everything it carried --
   stale speculative bytes are never served -- while overlay answers
   (which are read-your-writes, not speculation) survive.
"""

from __future__ import annotations

import pytest

from repro.errors import BlobNotFound
from repro.fs.scheduler import RequestScheduler
from repro.storage.blobs import meta_blob
from repro.storage.server import StorageServer

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

KEYS = st.integers(min_value=0, max_value=9)
PAYLOADS = st.binary(min_size=0, max_size=32)
WINDOWS = st.integers(min_value=2, max_value=6)
#: windows for the fetch-flight properties: wider than the staged-set
#: strategy (max 3), so staging never auto-flushes mid-setup and the
#: overlay still covers exactly the staged keys when the flight departs.
FLIGHT_WINDOWS = st.integers(min_value=4, max_value=8)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, PAYLOADS),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("read"), KEYS, st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    max_size=60,
)


class _RecordingServer:
    """Pass-through server that logs every batch wave it receives."""

    def __init__(self, inner: StorageServer):
        self.inner = inner
        self.waves: list[list] = []
        self.batch_hook = None

    def batch(self, ops):
        self.waves.append(list(ops))
        if self.batch_hook is not None:
            self.batch_hook()
        return self.inner.batch(ops)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _bid(key: int):
    return meta_blob(key, "o")


def _server_value(server: StorageServer, blob_id):
    try:
        return server.get(blob_id)
    except BlobNotFound:
        return None


@given(ops=OPS, window=WINDOWS)
@settings(max_examples=60, deadline=None)
def test_read_your_writes_and_fifo_shipping(ops, window):
    backend = StorageServer()
    recording = _RecordingServer(backend)
    sched = RequestScheduler(recording, window)
    model: dict = {}  # blob id -> latest bytes, None = deleted

    for kind, key, payload in ops:
        blob_id = _bid(key)
        if kind == "put":
            sched.stage_put(blob_id, payload)
            model[blob_id] = payload
        elif kind == "delete":
            sched.stage_delete(blob_id)
            model[blob_id] = None
        elif kind == "read":
            covered, staged = sched.staged_read(blob_id)
            value = staged if covered else _server_value(backend, blob_id)
            assert value == model.get(blob_id), (
                "read does not see the newest preceding mutation")
        else:
            sched.flush()
            assert sched.queue_depth == 0
        # Auto-flush keeps the queue below a full window after every op
        # (single-op staging here, so it can never ride above it).
        assert sched.queue_depth < window

    sched.flush()

    # The SSP converged to the model: per-blob order was preserved.
    for blob_id, expected in model.items():
        assert _server_value(backend, blob_id) == expected

    # Replaying the waves the server received, in arrival order,
    # reproduces the model exactly -- shipping was FIFO.
    replay: dict = {}
    for wave in recording.waves:
        assert len(wave) <= window
        for op in wave:
            replay[op.blob_id] = op.payload if op.kind == "put" else None
    assert replay == model


@given(keys=st.lists(KEYS, min_size=1, max_size=24),
       staged=st.sets(KEYS, max_size=3), window=FLIGHT_WINDOWS)
@settings(max_examples=60, deadline=None)
def test_fetch_dedup_single_flight(keys, staged, window):
    backend = StorageServer()
    for key in range(10):
        backend.put(_bid(key), b"server" + bytes([key]))
    recording = _RecordingServer(backend)
    sched = RequestScheduler(recording, window)
    for key in staged:
        sched.stage_put(_bid(key), b"staged" + bytes([key]))

    wave_mark = len(recording.waves)
    results = sched.fetch_many([_bid(key) for key in keys])

    unique = {_bid(key) for key in keys}
    assert set(results) == unique
    for key in set(keys):
        expected = (b"staged" + bytes([key]) if key in staged
                    else b"server" + bytes([key]))
        assert results[_bid(key)] == expected

    # One wire fetch per unique unstaged id -- duplicates and staged
    # ids never touched the wire.
    fetch_ops = [op for wave in recording.waves[wave_mark:] for op in wave]
    assert len(fetch_ops) == len(unique - {_bid(k) for k in staged})
    assert len({op.blob_id for op in fetch_ops}) == len(fetch_ops)
    assert sched.dedup_hits == len(keys) - len(set(keys))


@given(keys=st.sets(KEYS, min_size=1, max_size=8),
       staged=st.sets(KEYS, max_size=3), window=FLIGHT_WINDOWS)
@settings(max_examples=60, deadline=None)
def test_invalidation_drops_inflight_fetch(keys, staged, window):
    backend = StorageServer()
    for key in range(10):
        backend.put(_bid(key), b"fresh" + bytes([key]))
    recording = _RecordingServer(backend)
    sched = RequestScheduler(recording, window)
    for key in staged:
        sched.stage_put(_bid(key), b"mine" + bytes([key]))

    # The invalidation lands while the flight is on the wire.
    recording.batch_hook = sched.note_invalidation
    results = sched.fetch_many([_bid(key) for key in keys])
    recording.batch_hook = None

    # Overlay answers are read-your-writes, not speculation: they
    # survive.  Everything actually fetched was dropped.
    assert set(results) == {_bid(k) for k in keys & staged}
    for key in keys & staged:
        assert results[_bid(key)] == b"mine" + bytes([key])
    if keys - staged:
        assert sched.stale_drops > 0

    # A quiet retry serves fresh bytes normally.
    retry = sched.fetch_many([_bid(key) for key in keys - staged])
    for key in keys - staged:
        assert retry[_bid(key)] == b"fresh" + bytes([key])
