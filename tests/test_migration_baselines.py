"""Migration tool, local tree model, and the four baseline filesystems."""

import pytest

from repro.baselines.base import (BASELINES, BaselineVolume,
                                  make_baseline_volume)
from repro.baselines.codecs import (PUBLIC_METADATA_BYTES, SharedKeyStore)
from repro.crypto.provider import CryptoProvider
from repro.errors import (CryptoError, FileExists, FileNotFound,
                          MigrationError, PermissionDenied)
from repro.fs.client import SharoesFilesystem
from repro.fs.permissions import AclEntry
from repro.fs.volume import SharoesVolume
from repro.migration.localfs import LocalTree, make_enterprise_tree
from repro.migration.migrate import MigrationTool
from repro.principals.groups import GroupKeyService
from repro.sim.costmodel import CostModel
from repro.sim.profiles import PAPER_2008


class TestLocalTree:
    def test_build_and_walk(self):
        tree = LocalTree("alice", "eng")
        tree.add_dir("/home", "alice", "eng")
        tree.add_file("/home/f", b"data", "alice", "eng")
        paths = [p for p, _ in tree.walk()]
        assert paths == ["/", "/home", "/home/f"]
        assert tree.count() == (2, 1)
        assert tree.total_bytes() == 4

    def test_duplicate_rejected(self):
        tree = LocalTree("alice", "eng")
        tree.add_dir("/home", "alice", "eng")
        with pytest.raises(FileExists):
            tree.add_dir("/home", "alice", "eng")

    def test_missing_parent(self):
        tree = LocalTree("alice", "eng")
        with pytest.raises(FileNotFound):
            tree.add_file("/no/f", b"", "alice", "eng")

    def test_enterprise_generator_deterministic(self):
        a = make_enterprise_tree(["u1", "u2"], "g", seed=3)
        b = make_enterprise_tree(["u1", "u2"], "g", seed=3)
        assert ([p for p, _ in a.walk()] == [p for p, _ in b.walk()])
        assert a.total_bytes() == b.total_bytes()

    def test_enterprise_generator_shape(self):
        tree = make_enterprise_tree(["u1", "u2", "u3"], "g",
                                    dirs_per_user=2, files_per_dir=3)
        dirs, files = tree.count()
        assert dirs == 3 + 3 + 3 * 2  # /, /home, /shared + homes + dirs
        assert files == 3 * 2 * 3 + 3

    def test_generator_needs_users(self):
        with pytest.raises(MigrationError):
            make_enterprise_tree([], "g")


class TestMigration:
    def _migrate(self, registry, server, tree, **kwargs):
        volume = SharoesVolume(server, registry)
        tool = MigrationTool(volume, **kwargs)
        report = tool.migrate(tree)
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        return volume, report

    def test_roundtrip_contents(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_dir("/docs", "alice", "eng", mode=0o755)
        tree.add_file("/docs/a.txt", b"alpha", "alice", "eng", mode=0o644)
        tree.add_file("/docs/b.txt", b"beta", "alice", "eng", mode=0o600)
        volume, report = self._migrate(registry, server, tree)
        fs = SharoesFilesystem(volume, registry.user("alice"))
        fs.mount()
        assert fs.readdir("/docs") == ["a.txt", "b.txt"]
        assert fs.read_file("/docs/a.txt") == b"alpha"
        assert fs.read_file("/docs/b.txt") == b"beta"
        assert report.files == 2
        assert report.directories == 2

    def test_permissions_preserved(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_file("/secret", b"top", "alice", "eng", mode=0o600)
        tree.add_file("/open", b"pub", "alice", "eng", mode=0o644)
        volume, _ = self._migrate(registry, server, tree)
        carol = SharoesFilesystem(volume, registry.user("carol"))
        carol.mount()
        assert carol.read_file("/open") == b"pub"
        with pytest.raises(PermissionDenied):
            carol.read_file("/secret")

    def test_multi_owner_tree(self, registry, server):
        tree = make_enterprise_tree(["alice", "bob", "carol"], "eng",
                                    dirs_per_user=1, files_per_dir=2)
        volume, report = self._migrate(registry, server, tree)
        for user in ("alice", "bob", "carol"):
            fs = SharoesFilesystem(volume, registry.user(user))
            fs.mount()
            assert fs.readdir(f"/home/{user}/dir0")
        assert report.superblocks >= 3

    def test_exec_only_semantics_after_migration(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_dir("/drop", "alice", "eng", mode=0o711)
        tree.add_file("/drop/known", b"by name", "alice", "eng",
                      mode=0o644)
        volume, _ = self._migrate(registry, server, tree)
        dave = SharoesFilesystem(volume, registry.user("dave"))
        dave.mount()
        with pytest.raises(PermissionDenied):
            dave.readdir("/drop")
        assert dave.read_file("/drop/known") == b"by name"

    def test_acl_migration_via_lockboxes(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_file("/f", b"acl data", "alice", "eng", mode=0o600,
                      acl=(AclEntry("dave", 0o4),))
        volume, report = self._migrate(registry, server, tree)
        assert report.lockboxes > 0
        dave = SharoesFilesystem(volume, registry.user("dave"))
        dave.mount()
        assert dave.read_file("/f") == b"acl data"

    def test_strict_rejects_unsupported(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_file("/w", b"x", "alice", "eng", mode=0o200)
        volume = SharoesVolume(server, registry)
        with pytest.raises(MigrationError):
            MigrationTool(volume).migrate(tree)

    def test_lenient_degrades_with_warning(self, registry, server):
        tree = LocalTree("alice", "eng")
        tree.add_file("/w", b"x", "alice", "eng", mode=0o642)
        volume, report = self._migrate(registry, server, tree,
                                       strict_permissions=False)
        assert report.warnings
        fs = SharoesFilesystem(volume, registry.user("alice"))
        fs.mount()
        assert fs.getattr("/w").mode == 0o640  # other -w- degraded

    def test_formatted_volume_rejected(self, registry, server):
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        with pytest.raises(MigrationError):
            MigrationTool(volume)

    def test_migration_costs_charged(self, registry, server):
        tree = make_enterprise_tree(["alice", "bob"], "eng",
                                    dirs_per_user=1, files_per_dir=2)
        volume = SharoesVolume(server, registry)
        cost = CostModel(PAPER_2008)
        tool = MigrationTool(volume, cost_model=cost,
                             compression_ratio=0.6)
        tool.migrate(tree)
        assert cost.totals.network > 0
        assert cost.totals.crypto > 0

    def test_compression_reduces_network_cost(self, registry, server):
        from repro.storage.server import StorageServer
        times = {}
        for ratio in (1.0, 0.5):
            srv = StorageServer()
            volume = SharoesVolume(srv, registry)
            cost = CostModel(PAPER_2008)
            tree = make_enterprise_tree(["alice"], "eng",
                                        dirs_per_user=2,
                                        files_per_dir=4,
                                        file_bytes=8000)
            MigrationTool(volume, cost_model=cost,
                          compression_ratio=ratio).migrate(tree)
            times[ratio] = cost.totals.network
        assert times[0.5] < times[1.0]

    def test_bad_compression_ratio(self, registry, server):
        volume = SharoesVolume(server, registry)
        with pytest.raises(MigrationError):
            MigrationTool(volume, compression_ratio=0.0)


class TestBaselines:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_basic_ops(self, name, registry):
        from repro.storage.server import StorageServer
        server = StorageServer()
        admin = registry.user("alice")
        volume = make_baseline_volume(name, server, admin)
        fs = BASELINES[name](volume, admin)
        fs.mount()
        fs.mkdir("/d")
        fs.create_file("/d/f", b"hello")
        assert fs.read_file("/d/f") == b"hello"
        assert fs.readdir("/d") == ["f"]
        assert fs.getattr("/d/f").owner == "alice"
        fs.append_file("/d/f", b" world")
        assert fs.read_file("/d/f") == b"hello world"
        fs.chmod("/d/f", 0o600)
        assert fs.getattr("/d/f").mode == 0o600
        fs.unlink("/d/f")
        fs.rmdir("/d")
        with pytest.raises(FileNotFound):
            fs.getattr("/d")

    def test_no_enc_stores_plaintext(self, registry):
        """The baseline is deliberately insecure -- verify it, so the
        comparison with SHAROES is honest."""
        from repro.storage.server import StorageServer
        server = StorageServer()
        admin = registry.user("alice")
        volume = make_baseline_volume("no-enc-md-d", server, admin)
        fs = BASELINES["no-enc-md-d"](volume, admin)
        fs.create_file("/f", b"VISIBLE-TO-SSP")
        blobs = b"".join(server.raw_blobs().values())
        assert b"VISIBLE-TO-SSP" in blobs

    def test_encrypting_baselines_hide_data(self, registry):
        from repro.storage.server import StorageServer
        for name in ("no-enc-md", "public", "pub-opt"):
            server = StorageServer()
            admin = registry.user("alice")
            volume = make_baseline_volume(name, server, admin)
            fs = BASELINES[name](volume, admin)
            fs.create_file("/f", b"HIDDEN-FROM-SSP")
            blobs = b"".join(server.raw_blobs().values())
            assert b"HIDDEN-FROM-SSP" not in blobs, name

    def test_public_metadata_is_heavyweight(self, registry):
        from repro.storage.server import StorageServer
        server = StorageServer()
        admin = registry.user("alice")
        volume = make_baseline_volume("public", server, admin)
        fs = BASELINES["public"](volume, admin)
        fs.mknod("/f")
        blob = max((payload for bid, payload in server.raw_blobs().items()
                    if bid.kind == "meta"), key=len)
        # 4 KB SiRiUS-style object, public-key encrypted block by block.
        assert len(blob) >= PUBLIC_METADATA_BYTES

    def test_pub_opt_stat_costs_one_private_block(self, registry):
        from repro.storage.server import StorageServer
        server = StorageServer()
        admin = registry.user("alice")
        volume = make_baseline_volume("pub-opt", server, admin)
        fs = BASELINES["pub-opt"](volume, admin)
        fs.mknod("/f")
        fs.cache.clear()
        fs.provider.counters.reset()
        fs.getattr("/f")
        assert fs.provider.counters.pk_blocks.get("pk_decrypt", 0) >= 1
        # and no more than path-depth blocks (root + file)
        assert fs.provider.counters.pk_blocks["pk_decrypt"] <= 2

    def test_keystore_isolation(self):
        store = SharedKeyStore()
        k1 = store.ensure("data", 1)
        assert store.key_for("data", 1) == k1
        assert store.ensure("meta", 1) != k1
        with pytest.raises(CryptoError):
            store.key_for("data", 999)
        rotated = store.rotate("data", 1)
        assert rotated != k1
        store.forget(1)
        with pytest.raises(CryptoError):
            store.key_for("data", 1)
