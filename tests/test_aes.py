"""AES: FIPS-197 / SP 800-38A vectors, modes, padding, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aes
from repro.errors import CryptoError


class TestBlockCipherVectors:
    """Published test vectors -- the implementation is the real AES."""

    def test_fips197_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes.AES(key).encrypt_block(plain) == expected

    def test_fips197_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "1011121314151617")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert aes.AES(key).encrypt_block(plain) == expected

    def test_fips197_aes256(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        plain = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert aes.AES(key).encrypt_block(plain) == expected

    def test_sp800_38a_ecb_single_block(self):
        # SP 800-38A F.1.1 ECB-AES128 block #1
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert aes.AES(key).encrypt_block(plain) == expected

    def test_decrypt_inverts_encrypt(self):
        key = bytes(range(16))
        cipher = aes.AES(key)
        block = b"0123456789abcdef"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_decrypt_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        encrypted = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert aes.AES(key).decrypt_block(encrypted) == expected


class TestBlockCipherErrors:
    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            aes.AES(b"short")

    def test_bad_block_length_encrypt(self):
        with pytest.raises(CryptoError):
            aes.AES(bytes(16)).encrypt_block(b"x" * 15)

    def test_bad_block_length_decrypt(self):
        with pytest.raises(CryptoError):
            aes.AES(bytes(16)).decrypt_block(b"x" * 17)


class TestPadding:
    def test_pad_roundtrip(self):
        for size in range(0, 33):
            data = bytes(range(size % 256))[:size]
            padded = aes.pkcs7_pad(data)
            assert len(padded) % 16 == 0
            assert aes.pkcs7_unpad(padded) == data

    def test_pad_always_adds(self):
        assert len(aes.pkcs7_pad(bytes(16))) == 32

    def test_unpad_rejects_corrupt(self):
        padded = aes.pkcs7_pad(b"hello")
        corrupted = padded[:-1] + bytes([padded[-1] ^ 0xFF])
        with pytest.raises(CryptoError):
            aes.pkcs7_unpad(corrupted)

    def test_unpad_rejects_empty(self):
        with pytest.raises(CryptoError):
            aes.pkcs7_unpad(b"")

    def test_unpad_rejects_overlong_padding(self):
        with pytest.raises(CryptoError):
            aes.pkcs7_unpad(bytes([17]) * 16)


class TestModes:
    def test_cbc_roundtrip(self):
        key = aes.generate_key()
        msg = b"attack at dawn" * 11
        assert aes.decrypt_cbc(key, aes.encrypt_cbc(key, msg)) == msg

    def test_cbc_fresh_iv_randomizes(self):
        key = aes.generate_key()
        assert aes.encrypt_cbc(key, b"same") != aes.encrypt_cbc(key, b"same")

    def test_cbc_fixed_iv_deterministic(self):
        key = aes.generate_key()
        iv = bytes(16)
        assert (aes.encrypt_cbc(key, b"same", iv)
                == aes.encrypt_cbc(key, b"same", iv))

    def test_cbc_rejects_short_ciphertext(self):
        with pytest.raises(CryptoError):
            aes.decrypt_cbc(aes.generate_key(), b"x" * 16)

    def test_ctr_roundtrip_empty(self):
        key = aes.generate_key()
        assert aes.decrypt_ctr(key, aes.encrypt_ctr(key, b"")) == b""

    def test_ctr_roundtrip_odd_length(self):
        key = aes.generate_key()
        msg = b"seventeen bytes!!"
        assert aes.decrypt_ctr(key, aes.encrypt_ctr(key, msg)) == msg

    def test_ctr_length_preserving_plus_nonce(self):
        key = aes.generate_key()
        msg = b"z" * 100
        assert len(aes.encrypt_ctr(key, msg)) == len(msg) + 8

    def test_wrong_key_garbles(self):
        msg = b"secret" * 10
        sealed = aes.encrypt_ctr(aes.generate_key(), msg)
        assert aes.decrypt_ctr(aes.generate_key(), sealed) != msg

    def test_generate_key_sizes(self):
        assert len(aes.generate_key(128)) == 16
        assert len(aes.generate_key(256)) == 32
        with pytest.raises(CryptoError):
            aes.generate_key(100)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=500),
           st.binary(min_size=16, max_size=16))
    def test_cbc_roundtrip_property(self, msg, key):
        assert aes.decrypt_cbc(key, aes.encrypt_cbc(key, msg)) == msg

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=500),
           st.binary(min_size=16, max_size=16))
    def test_ctr_roundtrip_property(self, msg, key):
        assert aes.decrypt_ctr(key, aes.encrypt_ctr(key, msg)) == msg

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_block_permutation_property(self, block, key):
        cipher = aes.AES(key)
        out = cipher.encrypt_block(block)
        assert len(out) == 16
        assert cipher.decrypt_block(out) == block
