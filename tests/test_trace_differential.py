"""Differential harness: wire tracing is zero-cost, on or off.

Reuses the pinned-entropy machinery of ``test_batch_differential``: the
same seeded workload runs with ``ClientConfig(wire_trace=True)`` and
``wire_trace=False``, and the two runs must be indistinguishable to
everything except the observer:

* byte-identical final SSP state, identical visible filesystem tree;
* identical request counts and identical simulated wall seconds --
  server spans live on a synthetic timeline, so tracing must never
  perturb the measurement it attributes (the property that lets CI diff
  a traced BENCH_6 against the untraced BENCH_5 baseline);
* with tracing *disabled*, the frames a remote client emits are
  byte-identical to the pre-trace wire protocol -- no flag bit, no
  16-byte context block, no extra bytes anywhere.
"""

from __future__ import annotations

import threading

import pytest

from repro.fs.client import ClientConfig
from repro.storage.blobs import data_blob, meta_blob
from repro.storage.server import BatchOp, StorageServer
from repro.storage.wire import (TRACE_FLAG, RemoteStorageClient, SspServer)
from repro.workloads.runner import make_env

from tests.test_batch_differential import (_forced_config, _pinned_entropy,
                                           _run_workload, _visible_tree)

WORKLOADS = ("createlist", "sharing")


def _traced_differential_run(workload: str, wire_trace: bool):
    with _pinned_entropy(), _forced_config(wire_trace=wire_trace):
        config = ClientConfig(wire_trace=wire_trace)
        env = make_env("sharoes", config=config, extra_users=("bob",))
        _run_workload(workload, env)
        fs = env.fs
        return {
            "blobs": env.server.raw_blobs(),
            "tree": _visible_tree(fs),
            "requests": fs.request_count,
            "wall": env.cost.totals.total,
            "bytes_received": env.server.stats.bytes_received,
            "bytes_served": env.server.stats.bytes_served,
            "traced_spans": (len(fs.traced_server.spans)
                             if fs.traced_server is not None else 0),
        }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_wire_trace_differential(workload):
    traced = _traced_differential_run(workload, wire_trace=True)
    plain = _traced_differential_run(workload, wire_trace=False)

    # Byte-identical final SSP state and visible semantics.
    assert traced["blobs"] == plain["blobs"]
    assert traced["tree"] == plain["tree"]

    # Zero measurement cost: same requests, same simulated seconds,
    # same server-side traffic accounting.
    assert traced["requests"] == plain["requests"]
    assert traced["wall"] == plain["wall"]
    assert traced["bytes_received"] == plain["bytes_received"]
    assert traced["bytes_served"] == plain["bytes_served"]

    # ...while the traced run actually observed the wire.
    assert traced["traced_spans"] > 0
    assert plain["traced_spans"] == 0


def _frame_script(client: RemoteStorageClient) -> None:
    """A fixed op sequence covering every request builder."""
    client.put(meta_blob(1, "o"), b"metadata bytes")
    client.get(meta_blob(1, "o"))
    client.exists(meta_blob(2, "o"))
    client.put_if(data_blob(1, "b0"), b"block zero", None)
    client.batch([BatchOp("put", data_blob(1, "b1"), payload=b"block one"),
                  BatchOp("get", data_blob(1, "b0"))])
    client.delete(meta_blob(1, "o"))


def _recorded_frames(monkeypatch, trace_context_fn) -> list[bytes]:
    """Run the script over TCP, recording the client's raw frames."""
    from repro.storage import wire

    recorded: list[bytes] = []
    real_send = wire._send_message
    client_thread = threading.get_ident()

    def spy(sock, payload):
        if threading.get_ident() == client_thread:
            recorded.append(bytes(payload))
        return real_send(sock, payload)

    monkeypatch.setattr(wire, "_send_message", spy)
    with SspServer(StorageServer()) as ssp:
        client = RemoteStorageClient(
            *ssp.address, trace_context_fn=trace_context_fn)
        _frame_script(client)
        client.close()
    monkeypatch.setattr(wire, "_send_message", real_send)
    return recorded


def test_disabled_trace_frames_byte_identical(monkeypatch):
    """trace_context_fn returning None must produce the exact bytes of a
    client with no tracing plumbed at all (the pre-trace protocol)."""
    baseline = _recorded_frames(monkeypatch, trace_context_fn=None)
    disabled = _recorded_frames(monkeypatch,
                                trace_context_fn=lambda: None)
    assert baseline == disabled
    assert len(baseline) == 6
    for frame in baseline:
        assert not frame[0] & TRACE_FLAG


def test_enabled_trace_frames_only_add_the_context_block(monkeypatch):
    from repro.obs.wiretrace import TraceContext
    from repro.storage.wire import encode_trace_context

    ctx = TraceContext(trace_id=3, parent_span_id=12)
    baseline = _recorded_frames(monkeypatch, trace_context_fn=None)
    traced = _recorded_frames(monkeypatch,
                              trace_context_fn=lambda: ctx)
    block = encode_trace_context(ctx)
    assert len(traced) == len(baseline)
    for plain, flagged in zip(baseline, traced):
        assert flagged[0] == plain[0] | TRACE_FLAG
        assert flagged[1:] == block + plain[1:]
