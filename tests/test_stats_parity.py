"""Summary statistics + Scheme-1/Scheme-2 behavioural parity battery."""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import PermissionDenied
from repro.fs.client import SharoesFilesystem
from repro.fs.permissions import AclEntry
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.sim.stats import (Percentiles, Summary, percentile, repeat_runs,
                             summarize)
from repro.storage.server import StorageServer


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.n == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.stdev == pytest.approx(1.2909944, rel=1e-6)

    def test_single_value(self):
        s = summarize([7.0])
        assert s.stdev == 0.0
        assert s.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci95_brackets_mean(self):
        s = summarize([10.0, 11.0, 9.0, 10.5, 9.5])
        low, high = s.ci95()
        assert low < s.mean < high

    def test_str_rendering(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestPercentiles:
    """The shared quantile triple (Summary + observability histograms)."""

    def test_from_values(self):
        p = Percentiles.from_values(list(range(101)))
        assert p.p50 == 50
        assert p.p95 == 95
        assert p.p99 == 99

    def test_from_unsorted_values(self):
        assert Percentiles.from_values([3.0, 1.0, 2.0]).p50 == 2.0

    def test_as_dict_and_str(self):
        p = Percentiles(p50=1.0, p95=2.0, p99=3.0)
        assert p.as_dict() == {"p50": 1.0, "p95": 2.0, "p99": 3.0}
        assert "p95=2" in str(p)

    def test_summarize_attaches_percentiles(self):
        s = summarize([float(v) for v in range(1, 101)])
        assert s.percentiles is not None
        assert s.p50 == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)
        assert s.p99 == pytest.approx(99.01)
        assert s.as_dict()["p99"] == s.p99

    def test_summary_without_percentiles_falls_back(self):
        s = Summary(n=2, mean=1.5, stdev=0.5, minimum=1.0, maximum=2.0)
        assert s.p50 == s.mean
        assert s.p95 == s.maximum
        assert s.p99 == s.maximum
        assert "p99" not in s.as_dict()

    def test_histogram_agrees_with_exact_definition(self):
        """The two percentile implementations (exact sort-based vs
        bucket-interpolated) must agree on a well-populated series."""
        from repro.obs.metrics import Histogram
        values = [i / 50 for i in range(1, 500)]
        h = Histogram("h")
        for v in values:
            h.observe(v)
        exact = Percentiles.from_values(values)
        assert h.percentiles().p50 == pytest.approx(exact.p50, abs=0.5)
        assert h.percentiles().p99 == pytest.approx(exact.p99, abs=1.0)


class TestPercentile:
    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_unsorted_input(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestRepeatRuns:
    def test_paper_protocol(self):
        """Ten repetitions over varied seeds, averaged."""
        seeds_seen = []

        def run(seed: int) -> float:
            seeds_seen.append(seed)
            return float(seed % 7)

        summary = repeat_runs(run, repetitions=10, base_seed=100)
        assert summary.n == 10
        assert len(set(seeds_seen)) == 10

    def test_workload_variation_is_modest(self):
        """Postmark totals across seeds: spread well below the
        implementation differences the figures report."""
        from repro.workloads import make_env, run_postmark
        env = make_env("sharoes")

        def run(seed: int) -> float:
            return run_postmark(env, files=40, transactions=40,
                                cache_fraction=0.25,
                                seed=seed).total_seconds

        summary = repeat_runs(run, repetitions=5)
        assert summary.stdev < 0.25 * summary.mean


SCHEMES = ("scheme1", "scheme2")


@pytest.fixture(params=SCHEMES)
def scheme_stack(request, server, registry):
    volume = SharoesVolume(StorageServer(), registry,
                           scheme=request.param)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, volume.server,
                    CryptoProvider()).publish_all()

    def mount(user_id: str) -> SharoesFilesystem:
        fs = SharoesFilesystem(volume, registry.user(user_id))
        fs.mount()
        return fs

    return request.param, volume, mount


class TestSchemeParity:
    """The same observable behaviour must hold under both replication
    schemes -- they are a storage/update tradeoff, not a semantics one."""

    def test_battery(self, scheme_stack):
        scheme, volume, mount = scheme_stack
        alice, bob, carol = mount("alice"), mount("bob"), mount("carol")

        # create + group sharing
        alice.mkdir("/work", mode=0o750)
        alice.create_file("/work/spec", b"shared", mode=0o640)
        assert bob.read_file("/work/spec") == b"shared"
        with pytest.raises(PermissionDenied):
            carol.read_file("/work/spec")

        # exec-only (close-to-open: carol revalidates her cached root)
        alice.mkdir("/drop", mode=0o711)
        alice.create_file("/drop/known", b"found", mode=0o644)
        carol.cache.clear()
        with pytest.raises(PermissionDenied):
            carol.readdir("/drop")
        assert carol.read_file("/drop/known") == b"found"

        # symlink + hard link
        alice.symlink("/work/spec", "/work/alias")
        bob.cache.clear()
        assert bob.read_file("/work/alias") == b"shared"
        alice.link("/work/spec", "/work/spec2")
        bob.cache.clear()
        assert bob.read_file("/work/spec2") == b"shared"

        # rename across dirs
        alice.mkdir("/attic", mode=0o755)
        alice.rename("/work/spec2", "/attic/spec2")
        bob.cache.clear()
        assert bob.read_file("/attic/spec2") == b"shared"

        # chmod revocation + regrant
        alice.chmod("/work/spec", 0o600)
        bob2 = mount("bob")
        with pytest.raises(PermissionDenied):
            bob2.read_file("/work/spec")
        alice.chmod("/work/spec", 0o640)
        assert mount("bob").read_file("/work/spec") == b"shared"

        # ACL grant: dave needs traversal on the 750 parent too (plain
        # *nix), so he gets an exec-only ACL on /work plus read on spec.
        alice.set_acl("/work", (AclEntry("dave", 0o1),))
        alice.set_acl("/work/spec", (AclEntry("dave", 0o4),))
        assert mount("dave").read_file("/work/spec") == b"shared"

        # chown
        alice.create_file("/work/gift", b"present", mode=0o600)
        alice.chown("/work/gift", "bob")
        assert mount("bob").read_file("/work/gift") == b"present"

        # deletion
        alice.unlink("/work/alias")
        alice.unlink("/attic/spec2")
        alice.rmdir("/attic")
        assert "attic" not in alice.readdir("/")

    def test_audit_clean_under_both(self, scheme_stack):
        scheme, volume, mount = scheme_stack
        alice = mount("alice")
        alice.mkdir("/a", mode=0o755)
        alice.create_file("/a/f", b"x", mode=0o644)
        from repro.tools.fsck import VolumeAuditor
        report = VolumeAuditor(volume).audit()
        assert report.clean, scheme
