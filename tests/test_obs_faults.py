"""Fault-injecting SSPs through the observability surface.

test_security.py proves tampering/rollback are *detected* (the right
exception escapes).  These tests prove they are *observable*: every
detection increments the client's ``client.integrity_failures`` counter,
marks the failing operation's root span, and reconciles with the
fault-injecting server's own accounting.
"""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import CryptoError, IntegrityError
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.storage.faults import TamperingServer, RollbackServer


def _stack(registry, server):
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fs = SharoesFilesystem(volume, registry.user("alice"))
    fs.mount()
    return fs


def _counter(fs, name):
    metric = fs.metrics.get(name)
    return metric.value if metric is not None else 0


class TestTamperingObservability:
    def test_data_tampering_counted_and_reconciled(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"integrity matters", mode=0o600)
        server._should_tamper = lambda bid: bid.kind == "data"
        fs.cache.clear()
        data_gets_before = fs.metrics.value("ssp.gets_by_kind.data")

        attempts = 3
        for _ in range(attempts):
            with pytest.raises(IntegrityError):
                fs.read_file("/f")

        # client-side counters...
        assert _counter(fs, "client.integrity_failures") == attempts
        assert _counter(fs, "ops.errors") == attempts
        # ...reconcile with the malicious server's own accounting: the
        # single-block file costs one tampered data get per attempt.
        assert server.tamper_count == attempts
        assert (fs.metrics.value("ssp.gets_by_kind.data")
                - data_gets_before == attempts)

    def test_failing_root_spans_are_marked(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"x", mode=0o600)
        server._should_tamper = lambda bid: bid.kind == "data"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.read_file("/f")
        root = fs.tracer.finished[-1]
        assert root.name == "read_file"
        assert root.error == "IntegrityError"
        assert root.attrs.get("path") == "/f"

    def test_metadata_tampering_counted(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.mknod("/f")
        server._should_tamper = lambda bid: bid.kind == "meta"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.getattr("/f")
        assert _counter(fs, "client.integrity_failures") == 1
        assert fs.tracer.finished[-1].error == "IntegrityError"

    def test_clean_run_counts_nothing(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"fine", mode=0o600)
        assert fs.read_file("/f") == b"fine"
        assert server.tamper_count == 0
        assert _counter(fs, "client.integrity_failures") == 0
        assert _counter(fs, "ops.errors") == 0


class TestRollbackObservability:
    def test_rekeyed_rollback_marks_span(self, registry):
        server = RollbackServer(should_rollback=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"version 1", mode=0o600)
        fs.rekey("/f")
        fs.cache.clear()
        inode = fs.getattr("/f").inode
        server._should_rollback = (
            lambda bid: bid.kind == "data" and bid.inode == inode)
        fs.cache.clear()
        errors_before = _counter(fs, "ops.errors")

        with pytest.raises(CryptoError) as excinfo:
            fs.read_file("/f")

        root = fs.tracer.finished[-1]
        assert root.name == "read_file"
        assert root.error == type(excinfo.value).__name__
        assert _counter(fs, "ops.errors") == errors_before + 1
        # rollback of a rekeyed object surfaces as a crypto failure; only
        # a MAC/signature mismatch counts as an integrity detection.
        if isinstance(excinfo.value, IntegrityError):
            assert _counter(fs, "client.integrity_failures") == 1
