"""Fault-injecting SSPs through the observability surface.

test_security.py proves tampering/rollback are *detected* (the right
exception escapes).  These tests prove they are *observable*: every
detection increments the client's ``client.integrity_failures`` counter,
marks the failing operation's root span, and reconciles with the
fault-injecting server's own accounting.

The attempt-span tests close the same loop for *transient* faults: a
fault injected at attempt k yields exactly k+1 sibling ``attempt``
spans under the issuing ``network`` span, with backoff costs that
reconcile against the transport's own counters -- including for
speculative readahead frames.
"""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (CryptoError, IntegrityError,
                          TransientStorageError)
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.sim.clock import SimClock
from repro.sim.costmodel import NETWORK, CostModel
from repro.sim.profiles import PAPER_2008
from repro.storage.faults import TamperingServer, RollbackServer
from repro.storage.resilient import RetryPolicy, ServerWrapper
from repro.storage.server import StorageServer


def _stack(registry, server):
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fs = SharoesFilesystem(volume, registry.user("alice"))
    fs.mount()
    return fs


def _counter(fs, name):
    metric = fs.metrics.get(name)
    return metric.value if metric is not None else 0


class TestTamperingObservability:
    def test_data_tampering_counted_and_reconciled(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"integrity matters", mode=0o600)
        server._should_tamper = lambda bid: bid.kind == "data"
        fs.cache.clear()
        data_gets_before = fs.metrics.value("ssp.gets_by_kind.data")

        attempts = 3
        for _ in range(attempts):
            with pytest.raises(IntegrityError):
                fs.read_file("/f")

        # client-side counters...
        assert _counter(fs, "client.integrity_failures") == attempts
        assert _counter(fs, "ops.errors") == attempts
        # ...reconcile with the malicious server's own accounting: the
        # single-block file costs one tampered data get per attempt.
        assert server.tamper_count == attempts
        assert (fs.metrics.value("ssp.gets_by_kind.data")
                - data_gets_before == attempts)

    def test_failing_root_spans_are_marked(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"x", mode=0o600)
        server._should_tamper = lambda bid: bid.kind == "data"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.read_file("/f")
        root = fs.tracer.finished[-1]
        assert root.name == "read_file"
        assert root.error == "IntegrityError"
        assert root.attrs.get("path") == "/f"

    def test_metadata_tampering_counted(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.mknod("/f")
        server._should_tamper = lambda bid: bid.kind == "meta"
        fs.cache.clear()
        with pytest.raises(IntegrityError):
            fs.getattr("/f")
        assert _counter(fs, "client.integrity_failures") == 1
        assert fs.tracer.finished[-1].error == "IntegrityError"

    def test_clean_run_counts_nothing(self, registry):
        server = TamperingServer(should_tamper=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"fine", mode=0o600)
        assert fs.read_file("/f") == b"fine"
        assert server.tamper_count == 0
        assert _counter(fs, "client.integrity_failures") == 0
        assert _counter(fs, "ops.errors") == 0


class TestRollbackObservability:
    def test_rekeyed_rollback_marks_span(self, registry):
        server = RollbackServer(should_rollback=lambda bid: False)
        fs = _stack(registry, server)
        fs.create_file("/f", b"version 1", mode=0o600)
        fs.rekey("/f")
        fs.cache.clear()
        inode = fs.getattr("/f").inode
        server._should_rollback = (
            lambda bid: bid.kind == "data" and bid.inode == inode)
        fs.cache.clear()
        errors_before = _counter(fs, "ops.errors")

        with pytest.raises(CryptoError) as excinfo:
            fs.read_file("/f")

        root = fs.tracer.finished[-1]
        assert root.name == "read_file"
        assert root.error == type(excinfo.value).__name__
        assert _counter(fs, "ops.errors") == errors_before + 1
        # rollback of a rekeyed object surfaces as a crypto failure; only
        # a MAC/signature mismatch counts as an integrity detection.
        if isinstance(excinfo.value, IntegrityError):
            assert _counter(fs, "client.integrity_failures") == 1


class _FailFirstK(ServerWrapper):
    """Deterministically fail the first ``k`` calls of one op.

    Unlike the seeded-probabilistic FlakyServer this makes "fault at
    attempt k" an exact statement, so span counts can be asserted
    instead of sampled.  Arm it (set ``k``) after mount so the setup
    traffic stays clean.
    """

    def __init__(self, inner, op="get", k=0):
        super().__init__(inner, name="fail-first-k")
        self.op = op
        self.k = k
        self.injected = 0

    def _maybe_fail(self, op):
        if op == self.op and self.injected < self.k:
            self.injected += 1
            raise TransientStorageError(
                f"injected fault #{self.injected} on {op}")

    def get(self, blob_id):
        self._maybe_fail("get")
        return self.inner.get(blob_id)

    def batch(self, ops):
        self._maybe_fail("batch")
        return self.inner.batch(ops)


def _resilient_stack(registry, config):
    """Full client stack over a _FailFirstK wrapper, cost model attached
    so backoff sleeps land in attempt-span self-costs."""
    cost = CostModel(PAPER_2008, SimClock())
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    fault = _FailFirstK(server)
    fs = SharoesFilesystem(volume, registry.user("alice"),
                           cost_model=cost, config=config, server=fault)
    fs.mount()
    return fs, fault


def _spans(root, name):
    return [node for node in root.walk() if node.name == name]


class TestAttemptSpanObservability:
    def test_fault_at_attempt_k_yields_k_plus_1_siblings(self, registry):
        k = 2
        fs, fault = _resilient_stack(
            registry,
            ClientConfig(retry_policy=RetryPolicy(jitter=False)))
        fs.create_file("/f", b"retry me", mode=0o600)
        fs.cache.clear()
        fault.op, fault.k, fault.injected = "get", k, 0
        attempts_before = fs.server.attempts
        failures_before = fs.server.failed_attempts
        retries_before = fs.server.retries
        backoff_before = fs.server.backoff_seconds

        assert fs.read_file("/f") == b"retry me"

        root = fs.tracer.finished[-1]
        assert root.name == "read_file"
        # Exactly one network span absorbed the injected fault: its
        # children are k+1 *sibling* attempt spans, the first k marked
        # with the transient error, the last one clean.
        faulted = [span for span in _spans(root, "network")
                   if sum(c.name == "attempt" for c in span.children) > 1]
        assert len(faulted) == 1
        (network,) = faulted
        attempts = [c for c in network.children if c.name == "attempt"]
        assert len(attempts) == k + 1
        assert all(a.parent_id == network.span_id for a in attempts)
        assert [a.attrs["attempt"] for a in attempts] == [1, 2, 3]
        assert ([a.error for a in attempts]
                == ["TransientStorageError"] * k + [None])
        assert attempts[0].attrs["delay"] == 0.0

        # Span counts reconcile with the transport's own counters...
        span_attempts = len(_spans(root, "attempt"))
        assert fs.server.attempts - attempts_before == span_attempts
        assert fs.server.failed_attempts - failures_before == k
        assert fs.server.retries - retries_before == k
        # ...and so do costs: backoff is charged as NETWORK time inside
        # the attempt span that waited, so attempt-span self-costs sum
        # to the transport's backoff total (jitterless doubling:
        # 0.05 + 0.10).
        backoff = fs.server.backoff_seconds - backoff_before
        charged = sum(span.self_costs.get(NETWORK, 0.0)
                      for span in _spans(root, "attempt"))
        assert charged == pytest.approx(backoff)
        assert backoff == pytest.approx(0.05 + 0.10)

    def test_exhausted_retries_mark_every_attempt_span(self, registry):
        policy = RetryPolicy(max_attempts=3, jitter=False,
                             cache_fallback=False)
        fs, fault = _resilient_stack(
            registry, ClientConfig(retry_policy=policy))
        fs.create_file("/f", b"doomed", mode=0o600)
        fs.cache.clear()
        fault.op, fault.k, fault.injected = "get", policy.max_attempts, 0

        with pytest.raises(TransientStorageError):
            fs.read_file("/f")

        root = fs.tracer.finished[-1]
        assert root.error == "TransientStorageError"
        faulted = [span for span in _spans(root, "network")
                   if any(c.name == "attempt" for c in span.children)]
        (network,) = faulted
        attempts = [c for c in network.children if c.name == "attempt"]
        assert len(attempts) == policy.max_attempts
        assert all(a.error == "TransientStorageError" for a in attempts)
        assert fs.server.giveups == 1

    def test_readahead_prefetch_spans_parent_under_walk(self, registry):
        fs, fault = _resilient_stack(
            registry,
            ClientConfig(retry_policy=RetryPolicy(jitter=False),
                         batching=True, readahead=True))
        fs.mkdir("/d0", mode=0o755)
        fs.mkdir("/d0/d1", mode=0o755)
        fs.create_file("/d0/d1/f", b"deep", mode=0o644)
        fs.cache.clear()
        fault.op, fault.k, fault.injected = "batch", 1, 0

        assert fs.read_file("/d0/d1/f") == b"deep"

        root = fs.tracer.finished[-1]
        # Speculative readahead frames are issued *inside* the walk span
        # whose lookup triggered them -- the profile attributes their
        # cost to the resolve phase, not to a floating root.
        prefetches = [span for span in _spans(root, "network")
                      if span.attrs.get("op") == "get_many"]
        assert prefetches, "cold deep walk must issue readahead frames"
        walk_ids = {span.span_id for span in _spans(root, "walk")}
        assert all(span.parent_id in walk_ids for span in prefetches)
        # The injected batch fault produced two sibling attempt spans
        # (failed + retried) under the one network span that carried it.
        batch_attempts = [span for span in _spans(root, "attempt")
                          if span.attrs.get("op") == "batch"]
        failed = [span for span in batch_attempts
                  if span.error == "TransientStorageError"]
        assert len(failed) == 1
        (faulted_net,) = {span.parent_id for span in failed}
        siblings = [span for span in batch_attempts
                    if span.parent_id == faulted_net]
        assert [s.attrs["attempt"] for s in siblings] == [1, 2]
        assert fault.injected == 1
