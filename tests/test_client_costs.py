"""Operation cost accounting against the paper's Figure 8 cost table.

Each SHAROES filesystem operation must perform exactly the network and
crypto work the paper tabulates:

    getattr  -> metadata recv, 1 metadata decrypt
    mkdir    -> metadata send + parent-dir send; 1 md-enc + 1 parent-enc
                *per required CAP*
    chmod    -> metadata send; 1 md-enc per required CAP
    read     -> data recv, 1 data decrypt
    close    -> data send, 1 data encrypt
"""

import pytest

from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.sim.costmodel import CostModel
from repro.sim.profiles import PAPER_2008


@pytest.fixture
def costed(volume, registry):
    cost = CostModel(PAPER_2008)
    fs = SharoesFilesystem(volume, registry.user("alice"), cost_model=cost)
    fs.mount()
    return fs, cost


class TestGetattrCosts:
    def test_one_fetch_one_decrypt(self, costed):
        fs, cost = costed
        fs.mknod("/f", mode=0o600)
        fs.cache.invalidate_prefix(("meta", fs.getattr("/f").inode))
        fs.provider.counters.reset()
        fs.volume.server.stats.reset()
        fs.getattr("/f")
        assert fs.volume.server.stats.gets == 1
        assert fs.provider.counters.total("sym_decrypt") == 1
        assert fs.provider.counters.total("verify") == 1
        assert fs.provider.counters.total("pk_decrypt") == 0

    def test_cached_getattr_is_free(self, costed):
        fs, cost = costed
        fs.mknod("/f")
        fs.getattr("/f")
        fs.volume.server.stats.reset()
        before = cost.totals.network
        fs.getattr("/f")
        assert fs.volume.server.stats.gets == 0
        assert cost.totals.network == before

    def test_no_public_key_ops_on_any_metadata_path(self, costed):
        """The headline claim: symmetric crypto only after mount."""
        fs, cost = costed
        fs.provider.counters.reset()
        fs.mkdir("/d", mode=0o755)
        fs.create_file("/d/f", b"data", mode=0o644)
        fs.read_file("/d/f")
        fs.getattr("/d/f")
        fs.chmod("/d/f", 0o640)
        fs.readdir("/d")
        counters = fs.provider.counters
        assert counters.total("pk_encrypt") == 0
        assert counters.total("pk_decrypt") == 0


class TestCreateCosts:
    def test_mknod_single_cap_requests(self, costed):
        """mknod = metadata send + parent-dir send (2 requests)."""
        fs, cost = costed
        fs.mkdir("/parent", mode=0o700)
        fs.volume.server.stats.reset()
        with cost.span() as span:
            fs.mknod("/parent/f", mode=0o600)
        # Replicas are batched: one metadata request, one table request.
        assert span.network == pytest.approx(
            2 * PAPER_2008.link.rtt_s, rel=0.5)

    def test_mknod_crypto_scales_with_caps(self, costed):
        """'[*] per required CAP': 600 vs 644 differ in replica count
        -> more symmetric encryptions, same number of round trips."""
        fs, cost = costed
        fs.mkdir("/p1", mode=0o700)
        fs.mkdir("/p2", mode=0o700)
        fs.provider.counters.reset()
        fs.mknod("/p1/single", mode=0o600)
        single_encs = fs.provider.counters.total("sym_encrypt")
        fs.provider.counters.reset()
        fs.mknod("/p2/multi", mode=0o644)
        multi_encs = fs.provider.counters.total("sym_encrypt")
        assert multi_encs == single_encs  # replicas per selector are
        # constant now that zero CAPs are materialized; what grows is the
        # payload -- check bytes instead:
        # (all three class replicas always exist; 644 fills more fields)

    def test_mkdir_writes_tables_per_cap(self, costed, server):
        fs, cost = costed
        server.stats.reset()
        fs.mkdir("/d", mode=0o755)
        # 3 metadata replicas + 3 table views + parent table updates.
        assert server.stats.puts_by_kind["meta"] == 3
        assert server.stats.puts_by_kind["data"] >= 4


class TestChmodCosts:
    def test_plain_chmod_metadata_only(self, costed, server):
        """A non-structural chmod sends metadata only (Fig. 8 row)."""
        fs, cost = costed
        fs.mknod("/f", mode=0o644)
        server.stats.reset()
        fs.chmod("/f", 0o664)  # group r -> rw: no revocation, no
        # selector-set change, pointers (MEK/MVK) unchanged
        assert server.stats.puts_by_kind.get("meta", 0) == 3
        assert server.stats.puts_by_kind.get("data", 0) == 0

    def test_revoking_chmod_reencrypts(self, costed, server):
        fs, cost = costed
        fs.create_file("/f", b"payload", mode=0o644)
        server.stats.reset()
        fs.chmod("/f", 0o600)
        assert server.stats.puts_by_kind.get("data", 0) >= 1  # re-enc


class TestDataCosts:
    def test_read_fetches_and_decrypts_once(self, costed, server):
        fs, cost = costed
        fs.create_file("/f", b"payload" * 10, mode=0o600)
        fs.cache.invalidate_prefix(("data",))
        fs.provider.counters.reset()
        server.stats.reset()
        fs.read_file("/f")
        assert server.stats.gets_by_kind.get("data", 0) == 1
        assert fs.provider.counters.total("sym_decrypt") == 1

    def test_close_sends_data_only(self, costed, server):
        """Fig. 8 close: '1-dataencrypt, data send' -- no metadata."""
        fs, cost = costed
        fs.mknod("/f", mode=0o600)
        server.stats.reset()
        fs.provider.counters.reset()
        fs.write_file("/f", b"fresh content")
        assert server.stats.puts_by_kind.get("data", 0) == 1
        assert server.stats.puts_by_kind.get("meta", 0) == 0
        assert fs.provider.counters.total("sym_encrypt") == 1
        assert fs.provider.counters.total("sign") == 1


class TestNetworkDominance:
    def test_crypto_below_seven_percent(self, costed):
        """Paper: 'the CRYPTO component is less than 7% for all
        filesystem [I/O] operations'."""
        fs, cost = costed
        fs.mknod("/big", mode=0o600)
        with cost.span() as span:
            fs.write_file("/big", b"z" * 1_000_000)
        assert span.crypto / span.total < 0.07
        fs.cache.invalidate_prefix(("data",))
        with cost.span() as span:
            fs.read_file("/big")
        assert span.crypto / span.total < 0.07

    def test_read_write_asymmetry(self, costed):
        """1 MB down (350 Kbit/s) ~2.4x slower than up (850 Kbit/s)."""
        fs, cost = costed
        fs.mknod("/big", mode=0o600)
        with cost.span() as wspan:
            fs.write_file("/big", b"z" * 1_000_000)
        fs.cache.invalidate_prefix(("data",))
        with cost.span() as rspan:
            fs.read_file("/big")
        assert 1.8 < rspan.network / wspan.network < 3.0


class TestMountCosts:
    def test_mount_is_the_only_pk_moment(self, volume, registry,
                                         alice_fs):
        alice_fs.create_file("/pub", b"shared", mode=0o644)
        cost = CostModel(PAPER_2008)
        fs = SharoesFilesystem(volume, registry.user("dave"),
                               cost_model=cost)
        fs.mount()
        assert fs.provider.counters.total("pk_decrypt") == 1
        fs.provider.counters.reset()
        assert fs.read_file("/pub") == b"shared"
        fs.getattr("/pub")
        fs.readdir("/")
        assert fs.provider.counters.total("pk_decrypt") == 0


class TestBatchDeleteCosts:
    """_delete_many is "one request regardless of blob count" -- its
    network charge must match that claim (it used to charge one request
    *header per blob*, overpricing unlink against the Figure 8 model)."""

    def test_delete_many_charges_one_request_header(self, costed):
        from repro.storage.blobs import data_blob
        fs, cost = costed
        with cost.span() as single:
            fs._delete(data_blob(999, "b0"))
        with cost.span() as batch:
            fs._delete_many([data_blob(999, f"b{i}") for i in range(8)])
        # Headers are all that cross the wire either way: cost parity.
        assert batch.network == pytest.approx(single.network)
        assert batch.network > 0

    def test_unlink_network_cost_flat_in_block_count(self, costed):
        """End-to-end parity: reclaiming an 8-block file must not price
        its deletes 8x a 1-block file's (both are one batched request;
        the block count only shows up in the *upload* at create time)."""
        fs, cost = costed
        block = fs.volume.block_size
        fs.create_file("/small", b"s", mode=0o600)
        fs.create_file("/big", b"b" * (8 * block), mode=0o600)
        requests = fs.request_count
        with cost.span() as small:
            fs.unlink("/small")
        small_requests = fs.request_count - requests
        requests = fs.request_count
        with cost.span() as big:
            fs.unlink("/big")
        big_requests = fs.request_count - requests
        # Same round-trip pattern: the 7 extra data blocks ride in the
        # one batched delete, adding zero requests.
        assert big_requests == small_requests
        # Near cost-parity too: the residual difference is payload-
        # driven (block-map and directory-table sizes), a few percent --
        # nothing like the 8 per-blob headers the old accounting billed.
        assert big.network == pytest.approx(small.network, rel=0.05)


class TestBatchPutCosts:
    """Batched uploads must keep the Figure 8/9 byte accounting honest:
    a frame charges one header plus exactly the payload bytes that were
    attempted -- never the unattempted tail of a partially-failed batch
    (the pre-batch code charged the whole upload upfront), and a
    batch of one prices identically to the single-op path."""

    def test_put_many_batch_size_one_matches_single_put(self, costed):
        from repro.storage.blobs import data_blob
        fs, cost = costed
        payload = b"p" * 700
        with cost.span() as single:
            fs._put(data_blob(998, "b0"), payload)
        with cost.span() as batch:
            fs._put_many([(data_blob(998, "b1"), payload)])
        # Same bytes, same single round trip: Figure 8/9 rows built from
        # one-blob traffic are untouched by the batching default.
        assert batch.network == pytest.approx(single.network)
        assert batch.network > 0

    def test_partial_failure_charges_only_attempted_bytes(
            self, volume, registry):
        from repro.errors import PartialWriteError, StorageError
        from repro.fs.client import (_REQUEST_HEADER_BYTES,
                                     _RESPONSE_HEADER_BYTES)
        from repro.storage.blobs import data_blob
        from repro.storage.resilient import ServerWrapper

        class _PoisonPut(ServerWrapper):
            """Terminally rejects one blob id (no retry eligibility)."""

            def __init__(self, inner):
                super().__init__(inner, name="poison")
                self.poison = None

            def put(self, blob_id, payload):
                if blob_id == self.poison:
                    raise StorageError(f"poisoned {blob_id}")
                self.inner.put(blob_id, payload)

        cost = CostModel(PAPER_2008)
        poison = _PoisonPut(volume.server)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               cost_model=cost, server=poison)
        fs.mount()

        sizes = (1000, 2000, 3000, 4000)
        blobs = [(data_blob(997, f"b{i}"), bytes([i]) * n)
                 for i, n in enumerate(sizes)]
        poison.poison = blobs[2][0]
        with cost.span() as span:
            with pytest.raises(PartialWriteError) as exc:
                fs._put_many(blobs)
        assert exc.value.applied == (blobs[0][0], blobs[1][0])
        assert exc.value.failed == blobs[2][0]
        assert exc.value.remaining == (blobs[3][0],)
        # Bytes on the wire: the two applied payloads, the one the SSP
        # rejected mid-frame, and a single frame header.  The 4000-byte
        # unattempted tail never left the client and costs nothing.
        attempted_up = sum(sizes[:3]) + _REQUEST_HEADER_BYTES
        expected = PAPER_2008.link.request_time(attempted_up,
                                                _RESPONSE_HEADER_BYTES)
        assert span.network == pytest.approx(expected)

    def test_full_batch_charges_payload_plus_one_header(self, costed):
        from repro.fs.client import (_REQUEST_HEADER_BYTES,
                                     _RESPONSE_HEADER_BYTES)
        from repro.storage.blobs import data_blob
        fs, cost = costed
        sizes = (500, 1500, 2500)
        blobs = [(data_blob(996, f"b{i}"), bytes([i]) * n)
                 for i, n in enumerate(sizes)]
        requests = fs.request_count
        with cost.span() as span:
            fs._put_many(blobs)
        assert fs.request_count - requests == 1
        expected = PAPER_2008.link.request_time(
            sum(sizes) + _REQUEST_HEADER_BYTES, _RESPONSE_HEADER_BYTES)
        assert span.network == pytest.approx(expected)
