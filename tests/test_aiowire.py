"""Asyncio SSP front-end: same protocol, one event loop (PR 10).

The contract under test: :class:`repro.storage.aiowire.AsyncSspServer`
is a drop-in replacement for the threaded ``SspServer`` -- an
unmodified ``RemoteStorageClient`` (and a fully mounted filesystem)
must work against it byte-for-byte, including ``OP_BATCH`` frames,
CAS/fencing status mapping, trace-context blocks, and many concurrent
connections interleaving on the single loop thread.
"""

from __future__ import annotations

import threading

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (BlobNotFound, CasConflictError, StaleEpochError,
                          StorageError)
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.storage.aiowire import AsyncSspServer
from repro.storage.blobs import data_blob, lease_blob, meta_blob
from repro.storage.server import BatchOp, StorageServer
from repro.storage.wire import RemoteStorageClient


@pytest.fixture
def aio_pair():
    backend = StorageServer()
    server = AsyncSspServer(backend).start()
    host, port = server.address
    client = RemoteStorageClient(host, port)
    yield backend, client
    client.close()
    server.stop()


class TestAsyncWireProtocol:
    def test_put_get_roundtrip(self, aio_pair):
        backend, client = aio_pair
        client.put(meta_blob(1, "o"), b"over the async wire")
        assert client.get(meta_blob(1, "o")) == b"over the async wire"
        assert backend.get(meta_blob(1, "o")) == b"over the async wire"

    def test_missing_maps_to_blob_not_found(self, aio_pair):
        _, client = aio_pair
        with pytest.raises(BlobNotFound):
            client.get(meta_blob(404, "o"))

    def test_delete_and_exists(self, aio_pair):
        _, client = aio_pair
        client.put(meta_blob(1, "o"), b"x")
        assert client.exists(meta_blob(1, "o"))
        client.delete(meta_blob(1, "o"))
        assert not client.exists(meta_blob(1, "o"))

    def test_large_payload(self, aio_pair):
        _, client = aio_pair
        big = bytes(range(256)) * 4096  # 1 MiB
        client.put(data_blob(7, "b0"), big)
        assert client.get(data_blob(7, "b0")) == big

    def test_cas_conflict_maps(self, aio_pair):
        _, client = aio_pair
        client.put(meta_blob(2, "o"), b"current")
        with pytest.raises(CasConflictError) as info:
            client.put_if(meta_blob(2, "o"), b"new", b"stale-expected")
        assert info.value.current == b"current"

    def test_fencing_maps(self, aio_pair):
        _, client = aio_pair
        fence = lease_blob(3)
        # The store reads the current epoch from the fence blob's
        # plaintext prefix; establish epoch 5, then write below it.
        client.put(fence, (5).to_bytes(8, "big") + b"lease-body")
        client.put_fenced(meta_blob(3, "o"), b"v1", fence, 5)
        with pytest.raises(StaleEpochError) as info:
            client.put_fenced(meta_blob(3, "o"), b"v0", fence, 4)
        assert info.value.current_epoch == 5
        assert client.get(meta_blob(3, "o")) == b"v1"

    def test_batch_frame(self, aio_pair):
        backend, client = aio_pair
        replies = client.batch([
            BatchOp.put(meta_blob(10, "o"), b"a"),
            BatchOp.put(data_blob(10, "b0"), b"b"),
            BatchOp.get(meta_blob(10, "o")),
            BatchOp.delete(data_blob(10, "b0")),
            BatchOp.get(data_blob(10, "b0")),
        ])
        assert [r.status for r in replies] == [
            "ok", "ok", "ok", "ok", "missing"]
        assert replies[2].payload == b"a"
        assert backend.exists(meta_blob(10, "o"))
        assert not backend.exists(data_blob(10, "b0"))

    def test_enumeration_refused(self, aio_pair):
        _, client = aio_pair
        with pytest.raises(StorageError):
            client.raw_blobs()

    def test_restart_rebinds(self):
        backend = StorageServer()
        server = AsyncSspServer(backend).start()
        host, port = server.address
        server.stop()
        second = AsyncSspServer(backend, host=host, port=port).start()
        try:
            client = RemoteStorageClient(host, port)
            client.put(meta_blob(1, "o"), b"again")
            assert client.get(meta_blob(1, "o")) == b"again"
            client.close()
        finally:
            second.stop()


class TestAsyncWireTrace:
    def test_trace_context_parented_spans(self):
        """A flagged frame installs its context around dispatch, so a
        TracedServer backend parents its span under the client span --
        exactly like the threaded server."""
        from repro.obs.wiretrace import TraceContext, TracedServer
        from repro.sim.clock import SimClock

        traced = TracedServer(StorageServer(), clock=SimClock())
        ctx = TraceContext(trace_id=0xABCDEF, parent_span_id=42)
        with AsyncSspServer(traced) as server:
            client = RemoteStorageClient(
                *server.address, trace_context_fn=lambda: ctx)
            try:
                client.put(meta_blob(1, "o"), b"traced bytes")
                assert client.get(meta_blob(1, "o")) == b"traced bytes"
            finally:
                client.close()
        roots = [s for s in traced.spans if "trace_id" in s.attrs]
        assert roots, "traced backend recorded no correlated spans"
        assert all(s.attrs["trace_id"] == 0xABCDEF for s in roots)
        assert all(s.parent_id == 42 for s in roots)

    def test_untraced_frames_identical(self, aio_pair):
        """No context supplier -> plain frames, server happily serves."""
        _, client = aio_pair
        client.put(meta_blob(9, "o"), b"plain")
        assert client.get(meta_blob(9, "o")) == b"plain"


def _addr_of(client: RemoteStorageClient) -> tuple[str, int]:
    return client._addr


class TestAsyncConcurrency:
    def test_many_concurrent_connections(self, aio_pair):
        """32 client threads, one loop thread: every connection gets
        isolated request/response streams with no cross-talk."""
        backend, seed_client = aio_pair
        host, port = _addr_of(seed_client)
        errors: list[BaseException] = []

        def worker(n: int) -> None:
            try:
                client = RemoteStorageClient(host, port)
                try:
                    payload = bytes([n]) * (100 + n)
                    for round_no in range(5):
                        client.put(data_blob(n, f"b{round_no}"), payload)
                        assert client.get(
                            data_blob(n, f"b{round_no}")) == payload
                    replies = client.batch(
                        [BatchOp.get(data_blob(n, f"b{r}"))
                         for r in range(5)])
                    assert all(r.payload == payload for r in replies)
                finally:
                    client.close()
            except BaseException as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert backend.blob_count() == 32 * 5

    def test_full_filesystem_over_async_tcp(self, registry):
        """A complete SHAROES mount where every blob crosses the
        asyncio socket server."""
        backend = StorageServer()
        with AsyncSspServer(backend) as server:
            client = RemoteStorageClient(*server.address)
            try:
                volume = SharoesVolume(client, registry)
                volume.format(root_owner="alice", root_group="eng")
                GroupKeyService(registry, client,
                                CryptoProvider()).publish_all()
                fs = SharoesFilesystem(volume, registry.user("alice"))
                fs.mount()
                fs.mkdir("/d", mode=0o750)
                fs.create_file("/d/f", b"async tcp bytes", mode=0o640)
                fs.cache.clear()
                assert fs.read_file("/d/f") == b"async tcp bytes"
                everything = b"".join(backend.raw_blobs().values())
                assert b"async tcp bytes" not in everything
            finally:
                client.close()
