"""End-to-end wire tracing: context propagation, server spans, stitching.

The acceptance invariants of the observability PR:

* trace context rides wire frames behind an opcode flag bit and decodes
  back to the same (trace_id, parent_span_id) pair -- including across a
  real TCP loopback into a TracedServer backend;
* a TracedServer's decode/disk/verify self-times partition its wall
  exactly (synthetic timeline, never the shared clock);
* a traced andrew run stitches into a single client+server trace tree
  with zero orphan server spans, and the server's phase totals sum to
  its wall within 1%;
* with a retrying transport, server root spans reconcile 1:1 with
  transport attempts.
"""

import pytest

from repro.errors import BlobNotFound, StorageError
from repro.obs.tracing import Span, Tracer
from repro.obs.wiretrace import (DEFAULT_SERVER_PROFILE, TraceContext,
                                 TracedServer, stitch)
from repro.sim.clock import SimClock
from repro.storage.blobs import data_blob, meta_blob
from repro.storage.server import StorageServer
from repro.storage.wire import (OP_BATCH, OP_GET, TRACE_FLAG,
                                RemoteStorageClient, SspServer,
                                decode_trace_context, encode_trace_context)


class TestTraceContextCodec:
    def test_roundtrip(self):
        ctx = TraceContext(trace_id=7, parent_span_id=42)
        decoded, rest = decode_trace_context(
            encode_trace_context(ctx) + b"tail")
        assert decoded == ctx
        assert rest == b"tail"

    def test_no_parent_roundtrips_as_none(self):
        decoded, _ = decode_trace_context(
            encode_trace_context(TraceContext(trace_id=3)))
        assert decoded.trace_id == 3
        assert decoded.parent_span_id is None

    def test_truncated_block_rejected(self):
        with pytest.raises(StorageError):
            decode_trace_context(b"\x00" * 15)

    def test_frame_unflagged_without_context(self):
        with SspServer(StorageServer()) as ssp:
            client = RemoteStorageClient(*ssp.address)
            frame = client._frame(OP_GET, b"fields")
        assert frame == bytes([OP_GET]) + b"fields"

    def test_frame_flagged_with_context(self):
        with SspServer(StorageServer()) as ssp:
            client = RemoteStorageClient(
                *ssp.address,
                trace_context_fn=lambda: TraceContext(9, 1234))
            frame = client._frame(OP_GET, b"fields")
        assert frame[0] == OP_GET | TRACE_FLAG
        ctx, rest = decode_trace_context(frame[1:])
        assert ctx == TraceContext(9, 1234)
        assert rest == b"fields"

    def test_flagged_batch_opcode_still_rejected_as_sub_op(self):
        # A flagged OP_BATCH sub-opcode must not smuggle a nested batch.
        from repro.storage.wire import _decode_sub_body
        with pytest.raises(StorageError):
            _decode_sub_body(OP_BATCH | TRACE_FLAG, b"\x00" * 32)


class TestTracedServer:
    def _traced(self, ctx=None):
        return TracedServer(StorageServer(), clock=SimClock(),
                            context_fn=(lambda: ctx) if ctx else None)

    def test_self_costs_partition_wall_exactly(self):
        traced = self._traced()
        traced.put(meta_blob(1, "o"), b"m" * 100)
        traced.get(meta_blob(1, "o"))
        traced.exists(meta_blob(1, "o"))
        traced.put_if(data_blob(1, "b0"), b"d" * 64, None)
        traced.delete(meta_blob(1, "o"))
        assert len(traced.spans) == 5
        for root in traced.spans:
            total = sum(seconds for node in root.walk()
                        for seconds in node.self_costs.values())
            assert total == pytest.approx(root.duration, abs=1e-15)

    def test_phase_totals_reconcile(self):
        traced = self._traced()
        traced.put(meta_blob(1, "o"), b"payload")
        traced.get(meta_blob(1, "o"))
        totals = traced.phase_totals()
        assert totals["spans"] == 2
        assert sum(totals["phases"].values()) == pytest.approx(
            totals["wall"], rel=0.01)
        assert totals["phases"]["decode"] > 0
        assert totals["phases"]["disk"] > 0

    def test_failed_lookup_emits_error_span_with_seek_cost(self):
        traced = self._traced()
        with pytest.raises(BlobNotFound):
            traced.get(meta_blob(404, "o"))
        (root,) = traced.spans
        assert root.error == "BlobNotFound"
        costs = {category: seconds for node in root.walk()
                 for category, seconds in node.self_costs.items()}
        assert costs["disk"] == DEFAULT_SERVER_PROFILE.disk_fixed_s

    def test_spans_carry_context_and_service_tag(self):
        traced = self._traced(ctx=TraceContext(11, 77))
        traced.put(meta_blob(1, "o"), b"x")
        (root,) = traced.spans
        assert root.parent_id == 77
        assert root.attrs["trace_id"] == 11
        assert root.attrs["service"] == "ssp"

    def test_clock_never_advances(self):
        clock = SimClock()
        traced = TracedServer(StorageServer(), clock=clock)
        before = clock.now
        traced.put(meta_blob(1, "o"), b"payload" * 100)
        traced.get(meta_blob(1, "o"))
        assert clock.now == before

    def test_batch_sub_ops_get_child_spans(self):
        from repro.storage.server import BatchOp
        traced = self._traced(ctx=TraceContext(5, 50))
        ops = [BatchOp("put", meta_blob(1, "o"), payload=b"a" * 10,
                       ctx=TraceContext(5, 51)),
               BatchOp("get", meta_blob(1, "o"),
                       ctx=TraceContext(5, 52))]
        replies = traced.batch(ops)
        assert [r.status for r in replies] == ["ok", "ok"]
        (root,) = traced.spans
        assert root.name == "server.batch"
        assert root.attrs["count"] == 2
        (dispatch,) = [c for c in root.children if c.name == "dispatch"]
        subs = [c for c in dispatch.children
                if c.name.startswith("server.")]
        assert [s.attrs["kind"] for s in subs] == ["put", "get"]
        assert [s.attrs["client_span_id"] for s in subs] == [51, 52]
        total = sum(seconds for node in root.walk()
                    for seconds in node.self_costs.values())
        assert total == pytest.approx(root.duration, abs=1e-15)


class TestStitch:
    def _client_root(self, tracer):
        with tracer.span("read_file") as root:
            with tracer.span("network", op="get"):
                pass
        return root

    def test_server_span_grafts_under_issuing_client_span(self):
        tracer = Tracer()
        root = self._client_root(tracer)
        network = root.children[0]
        server = Span("server.get", 1 << 41, network.span_id, 0.0,
                      {"service": "ssp", "op": "get"})
        server.end = 0.001
        roots, orphans = stitch([root], [server])
        assert orphans == []
        stitched_network = roots[0]["children"][0]
        grafted = stitched_network["children"][-1]
        assert grafted["name"] == "server.get"

    def test_unmatched_server_span_is_orphaned(self):
        tracer = Tracer()
        root = self._client_root(tracer)
        stray = Span("server.get", 1 << 41, 999_999, 0.0, {})
        stray.end = 0.001
        roots, orphans = stitch([root], [stray])
        assert len(orphans) == 1

    def test_stitch_never_mutates_client_spans(self):
        tracer = Tracer()
        root = self._client_root(tracer)
        network = root.children[0]
        children_before = len(network.children)
        server = Span("server.get", 1 << 41, network.span_id, 0.0, {})
        server.end = 0.001
        stitch([root], [server])
        assert len(network.children) == children_before


class TestLoopbackTcp:
    def test_context_propagates_through_wire_handler(self):
        backend = StorageServer()
        traced = TracedServer(backend, clock=SimClock())
        with SspServer(traced) as ssp:
            host, port = ssp.address
            client = RemoteStorageClient(
                host, port,
                trace_context_fn=lambda: TraceContext(21, 84))
            client.put(meta_blob(1, "o"), b"over the wire")
            assert client.get(meta_blob(1, "o")) == b"over the wire"
        put_span, get_span = list(traced.spans)
        for span in (put_span, get_span):
            assert span.parent_id == 84
            assert span.attrs["trace_id"] == 21

    def test_untraced_client_leaves_spans_unparented(self):
        traced = TracedServer(StorageServer(), clock=SimClock())
        with SspServer(traced) as ssp:
            host, port = ssp.address
            client = RemoteStorageClient(host, port)
            client.put(meta_blob(1, "o"), b"plain")
        (span,) = traced.spans
        assert span.parent_id is None
        assert "trace_id" not in span.attrs


class TestTracedWorkload:
    @pytest.fixture(scope="class")
    def andrew(self):
        from repro.workloads.runner import run_traced
        return run_traced("andrew")

    def test_single_stitched_tree_no_orphans(self, andrew):
        _payload, roots, orphans, env = andrew
        assert orphans == []
        server_grafts = 0
        for root in roots:
            stack = [root]
            while stack:
                doc = stack.pop()
                if str(doc.get("name", "")).startswith("server."):
                    server_grafts += 1
                stack.extend(doc.get("children", ()))
        assert server_grafts >= len(env.fs.traced_server.spans) > 0

    def test_server_phases_sum_to_wall_within_1pct(self, andrew):
        payload, _roots, _orphans, _env = andrew
        server = payload["trace"]["server"]
        assert sum(server["phases"].values()) == pytest.approx(
            server["wall"], rel=0.01)

    def test_trace_ids_consistent_across_tree(self, andrew):
        _payload, _roots, _orphans, env = andrew
        trace_id = env.fs.tracer.trace_id
        assert trace_id is not None
        traced_ids = {span.attrs.get("trace_id")
                      for span in env.fs.traced_server.spans
                      if "trace_id" in span.attrs}
        assert traced_ids == {trace_id}

    def test_resolve_depth_attribution_in_payload(self, andrew):
        payload, _roots, _orphans, _env = andrew
        depth = payload["trace"]["resolve_depth"]
        assert depth, "andrew must produce walk spans"
        for entry in depth.values():
            assert entry["walks"] == entry["hits"] + entry["misses"]


class TestTransportReconciliation:
    def test_attempts_equal_server_root_spans(self):
        from repro.fs.client import ClientConfig, SharoesFilesystem
        from repro.fs.volume import SharoesVolume
        from repro.principals.registry import PrincipalRegistry
        from repro.storage.resilient import RetryPolicy

        registry = PrincipalRegistry()
        user = registry.create_user("alice")
        registry.create_group("eng", {"alice"})
        server = StorageServer()
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        fs = SharoesFilesystem(
            volume, user,
            config=ClientConfig(wire_trace=True,
                                retry_policy=RetryPolicy(jitter=False)))
        fs.mount()
        fs.mkdir("/d", mode=0o755)
        fs.create_file("/d/f.txt", b"contents", mode=0o644)
        fs.read_file("/d/f.txt")
        from repro.storage.resilient import ResilientTransport
        assert isinstance(fs.server, ResilientTransport)
        assert fs.server.attempts == len(fs.traced_server.spans)
