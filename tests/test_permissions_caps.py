"""*nix permission model, CAP catalogue and mode->CAP mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caps.model import (ALL_CAPS, D_EXEC_ONLY, D_READ, D_READ_EXEC,
                              D_RWX, D_ZERO, F_READ, F_READ_WRITE, F_ZERO,
                              VIEW_FULL, VIEW_HIDDEN, VIEW_NAMES, VIEW_NONE,
                              cap_for_bits, supported_bits)
from repro.errors import UnsupportedPermission
from repro.fs.permissions import (DIRECTORY, FILE, AclEntry, ObjectPerms,
                                  format_mode, parse_mode, triple)
from repro.migration.migrate import degrade_bits, degrade_mode


class TestModeHelpers:
    def test_triple_extraction(self):
        assert triple(0o754, "owner") == 0o7
        assert triple(0o754, "group") == 0o5
        assert triple(0o754, "other") == 0o4

    def test_format_and_parse(self):
        assert format_mode(0o755) == "rwxr-xr-x"
        assert format_mode(0o640) == "rw-r-----"
        assert parse_mode("rwxr-xr-x") == 0o755
        assert parse_mode("644") == 0o644

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_mode("rwx")
        with pytest.raises(ValueError):
            parse_mode("rwxrwxrwz")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=0o777))
    def test_format_parse_roundtrip(self, mode):
        assert parse_mode(format_mode(mode)) == mode


class TestClassResolution:
    def test_owner_group_other_cascade(self):
        perms = ObjectPerms(owner="alice", group="eng", mode=0o640)
        assert perms.class_of("alice", {"eng"}) == "owner"
        assert perms.class_of("bob", {"eng"}) == "group"
        assert perms.class_of("carol", {"hr"}) == "other"

    def test_owner_beats_group(self):
        perms = ObjectPerms(owner="alice", group="eng", mode=0o040)
        assert perms.class_of("alice", {"eng"}) == "owner"

    def test_acl_beats_everything(self):
        perms = ObjectPerms(owner="alice", group="eng", mode=0o640,
                            acl=(AclEntry("alice", 0o7),))
        assert perms.class_of("alice", {"eng"}) == "acl:alice"

    def test_bits_for(self):
        perms = ObjectPerms(owner="alice", group="eng", mode=0o640,
                            acl=(AclEntry("dave", 0o4),))
        assert perms.bits_for("alice", set()) == 0o6
        assert perms.bits_for("bob", {"eng"}) == 0o4
        assert perms.bits_for("carol", set()) == 0o0
        assert perms.bits_for("dave", set()) == 0o4


class TestDirectoryCaps:
    """Paper Figure 4, row by row."""

    def test_zero(self):
        assert cap_for_bits(0o0, DIRECTORY) is D_ZERO

    def test_read_only(self):
        cap = cap_for_bits(0o4, DIRECTORY)
        assert cap is D_READ
        assert cap.dek and cap.dvk and not cap.dsk
        assert cap.table_view == VIEW_NAMES

    def test_read_write_collapses_to_read(self):
        assert cap_for_bits(0o6, DIRECTORY) is D_READ

    def test_read_exec(self):
        cap = cap_for_bits(0o5, DIRECTORY)
        assert cap is D_READ_EXEC
        assert cap.table_view == VIEW_FULL
        assert not cap.dsk

    def test_rwx(self):
        cap = cap_for_bits(0o7, DIRECTORY)
        assert cap is D_RWX
        assert cap.dek and cap.dvk and cap.dsk

    def test_write_only_collapses_to_zero(self):
        assert cap_for_bits(0o2, DIRECTORY) is D_ZERO

    def test_exec_only(self):
        cap = cap_for_bits(0o1, DIRECTORY)
        assert cap is D_EXEC_ONLY
        assert cap.table_view == VIEW_HIDDEN
        assert cap.dek and not cap.dsk

    def test_write_exec_unsupported(self):
        with pytest.raises(UnsupportedPermission):
            cap_for_bits(0o3, DIRECTORY)

    def test_write_exec_lenient_degrades(self):
        assert cap_for_bits(0o3, DIRECTORY, strict=False) is D_EXEC_ONLY


class TestFileCaps:
    """Paper Figure 5, row by row."""

    def test_zero(self):
        assert cap_for_bits(0o0, FILE) is F_ZERO

    def test_read(self):
        cap = cap_for_bits(0o4, FILE)
        assert cap is F_READ
        assert cap.grants_read and not cap.grants_write

    def test_read_write(self):
        cap = cap_for_bits(0o6, FILE)
        assert cap is F_READ_WRITE
        assert cap.grants_write

    def test_read_exec_collapses_to_read(self):
        assert cap_for_bits(0o5, FILE) is F_READ

    def test_rwx_collapses_to_rw(self):
        assert cap_for_bits(0o7, FILE) is F_READ_WRITE

    def test_write_only_unsupported(self):
        with pytest.raises(UnsupportedPermission):
            cap_for_bits(0o2, FILE)

    def test_write_exec_unsupported(self):
        with pytest.raises(UnsupportedPermission):
            cap_for_bits(0o3, FILE)

    def test_exec_only_unsupported(self):
        with pytest.raises(UnsupportedPermission):
            cap_for_bits(0o1, FILE)

    def test_file_caps_never_have_table_views(self):
        for cap in ALL_CAPS.values():
            if cap.ftype == FILE:
                assert cap.table_view == VIEW_NONE


class TestCapCatalogue:
    def test_paper_counts(self):
        """Five unique CAPs per directory, four per file (section III-D)."""
        dirs = [c for c in ALL_CAPS.values() if c.ftype == DIRECTORY]
        files = [c for c in ALL_CAPS.values() if c.ftype == FILE]
        assert len(dirs) == 5
        assert len(files) == 3  # + the impossible write-exec would be 4

    def test_supported_bits(self):
        assert supported_bits(0o7, DIRECTORY)
        assert not supported_bits(0o3, DIRECTORY)
        assert not supported_bits(0o2, FILE)
        assert supported_bits(0o0, FILE)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=7),
           st.sampled_from([FILE, DIRECTORY]))
    def test_dsk_implies_dek(self, bits, ftype):
        """Writers can always read (symmetric-DEK consequence)."""
        try:
            cap = cap_for_bits(bits, ftype)
        except UnsupportedPermission:
            return
        if cap.dsk:
            assert cap.dek

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=7),
           st.sampled_from([FILE, DIRECTORY]))
    def test_dek_implies_dvk(self, bits, ftype):
        """Readers can always verify writers."""
        try:
            cap = cap_for_bits(bits, ftype)
        except UnsupportedPermission:
            return
        if cap.dek:
            assert cap.dvk


class TestDegrade:
    def test_dir_wx_drops_write(self):
        assert degrade_bits(0o3, DIRECTORY) == 0o1

    def test_dir_others_unchanged(self):
        for bits in (0o0, 0o1, 0o2, 0o4, 0o5, 0o6, 0o7):
            assert degrade_bits(bits, DIRECTORY) == bits

    def test_file_write_only_zeroed(self):
        assert degrade_bits(0o2, FILE) == 0
        assert degrade_bits(0o3, FILE) == 0
        assert degrade_bits(0o1, FILE) == 0

    def test_file_read_combos_unchanged(self):
        for bits in (0o4, 0o5, 0o6, 0o7):
            assert degrade_bits(bits, FILE) == bits

    def test_degrade_mode_full(self):
        assert degrade_mode(0o732, FILE) == 0o700
        assert degrade_mode(0o733, DIRECTORY) == 0o711

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=0o777),
           st.sampled_from([FILE, DIRECTORY]))
    def test_degraded_is_always_supported(self, mode, ftype):
        degraded = degrade_mode(mode, ftype)
        for shift in (6, 3, 0):
            assert supported_bits((degraded >> shift) & 0o7, ftype)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=0o777),
           st.sampled_from([FILE, DIRECTORY]))
    def test_degrade_never_adds_bits(self, mode, ftype):
        assert degrade_mode(mode, ftype) & ~mode == 0
