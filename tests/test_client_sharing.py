"""Multi-user data sharing: the *nix semantics SHAROES must replicate.

Users (conftest): alice+bob in group eng, carol in hr, dave groupless.
The volume root is alice:eng mode 755.
"""

import pytest

from repro.errors import FileNotFound, PermissionDenied
from repro.fs.client import SharoesFilesystem


class TestGroupSharing:
    def test_group_member_reads(self, alice_fs, bob_fs):
        alice_fs.create_file("/doc.txt", b"shared", mode=0o640)
        assert bob_fs.read_file("/doc.txt") == b"shared"

    def test_group_member_cannot_write_640(self, alice_fs, bob_fs):
        alice_fs.create_file("/doc.txt", b"shared", mode=0o640)
        with pytest.raises(PermissionDenied):
            bob_fs.write_file("/doc.txt", b"overwrite")

    def test_group_member_writes_660(self, alice_fs, bob_fs):
        alice_fs.create_file("/doc.txt", b"shared", mode=0o660)
        bob_fs.write_file("/doc.txt", b"bob wrote this")
        alice_fs.cache.clear()  # close-to-open: drop the stale copy
        assert alice_fs.read_file("/doc.txt") == b"bob wrote this"

    def test_non_member_denied_640(self, alice_fs, carol_fs):
        alice_fs.create_file("/doc.txt", b"eng only", mode=0o640)
        with pytest.raises(PermissionDenied):
            carol_fs.read_file("/doc.txt")

    def test_non_member_stats_640(self, alice_fs, carol_fs):
        """Zero-permission CAP still allows stat (all keys inaccessible)."""
        alice_fs.create_file("/doc.txt", b"eng only", mode=0o640)
        stat = carol_fs.getattr("/doc.txt")
        assert stat.owner == "alice"
        assert stat.mode == 0o640

    def test_world_readable(self, alice_fs, carol_fs, dave_fs):
        alice_fs.create_file("/pub.txt", b"for everyone", mode=0o644)
        assert carol_fs.read_file("/pub.txt") == b"for everyone"
        assert dave_fs.read_file("/pub.txt") == b"for everyone"

    def test_other_group_irrelevant(self, alice_fs, carol_fs):
        """carol's hr membership gives nothing on an eng file."""
        alice_fs.create_file("/doc.txt", b"x", mode=0o660, group="eng")
        with pytest.raises(PermissionDenied):
            carol_fs.read_file("/doc.txt")

    def test_file_grouped_to_hr(self, alice_fs, carol_fs, bob_fs):
        alice_fs.create_file("/hr.txt", b"hr data", mode=0o640, group="hr")
        assert carol_fs.read_file("/hr.txt") == b"hr data"
        with pytest.raises(PermissionDenied):
            bob_fs.read_file("/hr.txt")


class TestDirectoryPermissions:
    def test_private_dir_blocks_traversal(self, alice_fs, bob_fs):
        alice_fs.mkdir("/private", mode=0o700)
        alice_fs.create_file("/private/f", b"secret", mode=0o644)
        # Even though the file itself is world-readable, bob cannot
        # traverse the 700 directory to reach it.
        with pytest.raises(PermissionDenied):
            bob_fs.read_file("/private/f")
        with pytest.raises(PermissionDenied):
            bob_fs.readdir("/private")

    def test_read_only_dir_lists_but_no_traverse(self, alice_fs, bob_fs):
        alice_fs.mkdir("/listing", mode=0o740)
        alice_fs.create_file("/listing/f", b"data", mode=0o644)
        assert bob_fs.readdir("/listing") == ["f"]
        with pytest.raises(PermissionDenied):
            bob_fs.read_file("/listing/f")
        with pytest.raises(PermissionDenied):
            bob_fs.getattr("/listing/f")

    def test_read_exec_dir_full_access(self, alice_fs, bob_fs):
        alice_fs.mkdir("/shared", mode=0o750)
        alice_fs.create_file("/shared/f", b"data", mode=0o644)
        assert bob_fs.readdir("/shared") == ["f"]
        assert bob_fs.read_file("/shared/f") == b"data"

    def test_group_cannot_create_without_write(self, alice_fs, bob_fs):
        alice_fs.mkdir("/shared", mode=0o750)
        with pytest.raises(PermissionDenied):
            bob_fs.mknod("/shared/bobsfile")

    def test_group_creates_with_rwx(self, alice_fs, bob_fs):
        alice_fs.mkdir("/dropbox", mode=0o770)
        bob_fs.create_file("/dropbox/from-bob", b"hi", mode=0o664)
        alice_fs.cache.clear()  # alice cached the empty dropbox table
        assert alice_fs.read_file("/dropbox/from-bob") == b"hi"
        stat = alice_fs.getattr("/dropbox/from-bob")
        assert stat.owner == "bob"

    def test_non_owner_writer_can_delete(self, alice_fs, bob_fs):
        alice_fs.mkdir("/dropbox", mode=0o770)
        alice_fs.create_file("/dropbox/f", b"x", mode=0o664)
        bob_fs.unlink("/dropbox/f")
        alice_fs.cache.clear()
        assert alice_fs.readdir("/dropbox") == []

    def test_rw_dir_collapses_to_read(self, alice_fs, bob_fs):
        """Paper Fig. 4: rw- on a directory behaves as read-only."""
        alice_fs.mkdir("/oddball", mode=0o760)
        alice_fs.create_file("/oddball/f", b"data", mode=0o644)
        assert bob_fs.readdir("/oddball") == ["f"]
        with pytest.raises(PermissionDenied):
            bob_fs.read_file("/oddball/f")
        with pytest.raises(PermissionDenied):
            bob_fs.mknod("/oddball/new")


class TestExecOnlyDirectories:
    """The paper's flagship CAP (>70% of surveyed users employ --x)."""

    @pytest.fixture
    def dropbox(self, alice_fs):
        alice_fs.mkdir("/drop", mode=0o711)
        alice_fs.create_file("/drop/known-name.txt", b"findable",
                             mode=0o644)
        alice_fs.mkdir("/drop/subdir", mode=0o755)
        alice_fs.create_file("/drop/subdir/nested.txt", b"nested",
                             mode=0o644)
        return alice_fs

    def test_listing_denied(self, dropbox, carol_fs):
        with pytest.raises(PermissionDenied):
            carol_fs.readdir("/drop")

    def test_access_by_exact_name(self, dropbox, carol_fs):
        assert carol_fs.read_file("/drop/known-name.txt") == b"findable"

    def test_wrong_name_not_found(self, dropbox, carol_fs):
        with pytest.raises(FileNotFound):
            carol_fs.read_file("/drop/KNOWN-NAME.txt")

    def test_traversal_through_exec_only(self, dropbox, carol_fs):
        assert carol_fs.read_file("/drop/subdir/nested.txt") == b"nested"
        assert carol_fs.readdir("/drop/subdir") == ["nested.txt"]

    def test_owner_still_lists(self, dropbox):
        assert sorted(dropbox.readdir("/drop")) == ["known-name.txt",
                                                    "subdir"]

    def test_stat_by_exact_name(self, dropbox, carol_fs):
        stat = carol_fs.getattr("/drop/known-name.txt")
        assert stat.owner == "alice"

    def test_create_inside_exec_only_denied(self, dropbox, carol_fs):
        with pytest.raises(PermissionDenied):
            carol_fs.mknod("/drop/sneaky")


class TestCrossClientVisibility:
    def test_fresh_client_sees_writes(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"visible")
        other = SharoesFilesystem(volume, registry.user("bob"))
        other.mount()
        assert other.read_file("/f") == b"visible"

    def test_cached_client_needs_refresh(self, alice_fs, bob_fs):
        """Client caches are not invalidated remotely (close-to-open)."""
        alice_fs.create_file("/f", b"v1", mode=0o664)
        assert bob_fs.read_file("/f") == b"v1"
        alice_fs.write_file("/f", b"v2")
        assert bob_fs.read_file("/f") == b"v1"  # stale cache
        bob_fs.cache.clear()
        assert bob_fs.read_file("/f") == b"v2"

    def test_two_writers_last_close_wins(self, alice_fs, bob_fs):
        alice_fs.create_file("/f", b"base", mode=0o664)
        ha = alice_fs.open("/f", "w")
        hb = bob_fs.open("/f", "w")
        ha.pwrite(b"alice version", 0)
        hb.pwrite(b"bob version", 0)
        ha.close()
        hb.close()
        alice_fs.cache.clear()
        assert alice_fs.read_file("/f") == b"bob version"


class TestChmodSemantics:
    def test_only_owner_can_chmod(self, alice_fs, bob_fs):
        alice_fs.create_file("/f", b"x", mode=0o664)
        from repro.errors import KeyAccessError
        with pytest.raises((PermissionDenied, KeyAccessError)):
            bob_fs.chmod("/f", 0o600)

    def test_chmod_grants_access(self, alice_fs, carol_fs):
        alice_fs.create_file("/f", b"now shared", mode=0o600)
        alice_fs.chmod("/f", 0o644)
        carol_fs.cache.clear()
        assert carol_fs.read_file("/f") == b"now shared"

    def test_chmod_dir_style_change(self, alice_fs, bob_fs):
        """r-x -> --x: the group's table view switches to hidden rows."""
        alice_fs.mkdir("/d", mode=0o750)
        alice_fs.create_file("/d/f", b"x", mode=0o644)
        assert bob_fs.readdir("/d") == ["f"]
        alice_fs.chmod("/d", 0o710)
        bob2_fs = SharoesFilesystem(alice_fs.volume,
                                    bob_fs.agent.user)
        bob2_fs.mount()
        with pytest.raises(PermissionDenied):
            bob2_fs.readdir("/d")
        assert bob2_fs.read_file("/d/f") == b"x"  # still traversable

    def test_chmod_preserves_content(self, alice_fs):
        alice_fs.create_file("/f", b"precious", mode=0o644)
        alice_fs.chmod("/f", 0o600)
        alice_fs.chmod("/f", 0o640)
        assert alice_fs.read_file("/f") == b"precious"

    def test_chmod_bumps_version(self, alice_fs):
        alice_fs.mknod("/f", mode=0o644)
        v1 = alice_fs.getattr("/f").version
        alice_fs.chmod("/f", 0o600)
        assert alice_fs.getattr("/f").version > v1
