"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_requires_figure_or_workload(self, capsys):
        # The figure positional became optional when --workload arrived;
        # asking for neither is still an error.
        assert main(["bench"]) == 2
        assert "figure" in capsys.readouterr().err

    def test_bench_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "all self-tests passed" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "bob (group eng) reads: ship it" in out
        assert "plaintext leaked: False" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "--files", "3"]) == 0
        out = capsys.readouterr().out
        assert "SSP view" in out
        assert "meta" in out
        assert "ciphertext" in out

    def test_bench_fig13(self, capsys):
        assert main(["bench", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "getattr" in out
        assert "read-1MB" in out

    def test_bench_fig9_tiny(self, capsys):
        assert main(["bench", "fig9", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "SHAROES" in out
        assert "PUBLIC" in out

    def test_bench_fig12(self, capsys):
        assert main(["bench", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out

    def test_bench_workload_writes_json(self, capsys, tmp_path):
        assert main(["bench", "--workload", "postmark", "--scale", "0.02",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "per-operation costs" in out
        data = json.loads((tmp_path / "BENCH_postmark.json").read_text())
        assert data["name"] == "postmark"
        assert "mknod" in data["ops"]
        assert data["cost_model"]["total"] > 0

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--workload", "office",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sharoes_client_cache_hits gauge" in out
        assert "sharoes_ops_count" in out

    def test_stats_table(self, capsys):
        assert main(["stats", "--workload", "office"]) == 0
        out = capsys.readouterr().out
        assert "per-operation costs" in out
        assert "metrics snapshot" in out

    def test_trace_jsonl(self, capsys):
        assert main(["trace", "--workload", "office"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.strip()]
        records = [json.loads(line) for line in lines]
        assert records and all("name" in r and "duration" in r
                               for r in records)

    def test_fsck_clean(self, capsys):
        assert main(["fsck"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_fsck_corrupt(self, capsys):
        assert main(["fsck", "--corrupt"]) == 1
        out = capsys.readouterr().out
        assert "ERRORS FOUND" in out
        assert "integrity:" in out


class TestBenchDiffResolveGate:
    """``repro bench --diff --resolve-gate WORKLOAD=RATIO`` (PR 7)."""

    @staticmethod
    def _bench_doc(path, resolve_s, wall=100.0, requests=50):
        doc = {"schema": 2, "name": "andrew", "params": {}, "ops": {},
               "totals": {"spans": 1, "seconds": wall, "phases": {}},
               "cost_model": {"total": wall},
               "metrics": {"client.requests": requests}}
        if resolve_s is not None:
            doc["trace"] = {"resolve_depth": {
                "0": {"walks": 10, "hits": 9, "misses": 1,
                      "seconds": resolve_s}}}
        path.write_text(json.dumps(doc))
        return str(path)

    def test_gate_passes_on_halved_resolve(self, capsys, tmp_path):
        old = self._bench_doc(tmp_path / "old.json", resolve_s=50.0)
        new = self._bench_doc(tmp_path / "new.json", resolve_s=20.0)
        assert main(["bench", "--diff", old, new,
                     "--resolve-gate", "andrew=0.5"]) == 0
        assert "50.000 -> 20.000" in capsys.readouterr().out

    def test_gate_fails_above_floor(self, capsys, tmp_path):
        old = self._bench_doc(tmp_path / "old.json", resolve_s=50.0)
        new = self._bench_doc(tmp_path / "new.json", resolve_s=30.0)
        assert main(["bench", "--diff", old, new,
                     "--resolve-gate", "andrew=0.5"]) == 1
        assert "resolve 50.000s -> 30.000s" in capsys.readouterr().err

    def test_gate_fails_loud_without_attribution(self, capsys, tmp_path):
        old = self._bench_doc(tmp_path / "old.json", resolve_s=None)
        new = self._bench_doc(tmp_path / "new.json", resolve_s=20.0)
        assert main(["bench", "--diff", old, new,
                     "--resolve-gate", "andrew=0.5"]) == 1
        assert "no resolve attribution" in capsys.readouterr().err

    def test_ungated_workloads_unaffected(self, tmp_path):
        old = self._bench_doc(tmp_path / "old.json", resolve_s=50.0)
        new = self._bench_doc(tmp_path / "new.json", resolve_s=50.0)
        assert main(["bench", "--diff", old, new]) == 0

    def test_bad_gate_spec_rejected(self, tmp_path):
        old = self._bench_doc(tmp_path / "old.json", resolve_s=1.0)
        with pytest.raises(SystemExit, match="WORKLOAD=RATIO"):
            main(["bench", "--diff", old, old,
                  "--resolve-gate", "andrew"])
        with pytest.raises(SystemExit, match="not a number"):
            main(["bench", "--diff", old, old,
                  "--resolve-gate", "andrew=fast"])

    def test_stats_mdcache_rejected_off_andrew(self, capsys):
        assert main(["stats", "--workload", "office",
                     "--mdcache"]) == 2
        assert "andrew" in capsys.readouterr().err
