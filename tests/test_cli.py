"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "all self-tests passed" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "bob (group eng) reads: ship it" in out
        assert "plaintext leaked: False" in out

    def test_inspect(self, capsys):
        assert main(["inspect", "--files", "3"]) == 0
        out = capsys.readouterr().out
        assert "SSP view" in out
        assert "meta" in out
        assert "ciphertext" in out

    def test_bench_fig13(self, capsys):
        assert main(["bench", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "getattr" in out
        assert "read-1MB" in out

    def test_bench_fig9_tiny(self, capsys):
        assert main(["bench", "fig9", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "SHAROES" in out
        assert "PUBLIC" in out

    def test_bench_fig12(self, capsys):
        assert main(["bench", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out

    def test_fsck_clean(self, capsys):
        assert main(["fsck"]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_fsck_corrupt(self, capsys):
        assert main(["fsck", "--corrupt"]) == 1
        out = capsys.readouterr().out
        assert "ERRORS FOUND" in out
        assert "integrity:" in out
