"""Sharded multi-SSP backend: placement, quorum, failover, repair.

Unit tests drive :class:`~repro.storage.shards.ShardedServer` directly
(placement determinism, lease-everywhere, quorum outvoting, fencing
monotonicity across replicas, tombstoned deletes, anti-entropy); the
acceptance differential reruns the seeded postmark and andrew
workloads over ``shards=4, replicas=2`` with one shard hard-down from
mid-run and demands the visible filesystem tree stay **byte-identical**
to the unsharded single-SSP run, fsck stay clean, and one
``repair()`` pass restore full replication once the shard returns --
the ISSUE 8 acceptance criteria.
"""

from __future__ import annotations

import pytest

from repro.errors import (BlobNotFound, CasConflictError, StaleEpochError,
                          TransientStorageError)
from repro.fs.client import ClientConfig
from repro.sim.clock import SimClock
from repro.storage.blobs import LEASE, BlobId, data_blob, meta_blob
from repro.storage.faults import RollbackServer, TamperingServer
from repro.storage.resilient import OutageServer
from repro.storage.server import BatchOp
from repro.storage.shards import ShardedServer, ShardOutageServer
from repro.tools.fsck import VolumeAuditor
from repro.workloads.runner import make_env
from tests.test_batch_differential import (_pinned_entropy, _run_workload,
                                           _visible_tree)


def _lease(inode: int) -> BlobId:
    return BlobId(LEASE, inode, "-")


def _epoch_payload(epoch: int, body: bytes = b"lease") -> bytes:
    return epoch.to_bytes(8, "big") + body


# ---------------------------------------------------------------------------
# placement


class TestPlacement:
    def test_deterministic_and_distinct(self):
        a = ShardedServer(shards=5, replicas=3)
        b = ShardedServer(shards=5, replicas=3)
        for i in range(50):
            blob = data_blob(i, 0)
            assert a.placement(blob) == b.placement(blob)
            assert len(set(a.placement(blob))) == 3

    def test_spread(self):
        server = ShardedServer(shards=4, replicas=2)
        primaries = {server.placement(data_blob(i, 0))[0]
                     for i in range(200)}
        assert primaries == {0, 1, 2, 3}

    def test_lease_blobs_on_every_shard(self):
        server = ShardedServer(shards=4, replicas=2)
        assert server.placement(_lease(7)) == (0, 1, 2, 3)

    def test_same_inode_selectors_not_necessarily_colocated(self):
        server = ShardedServer(shards=8, replicas=2)
        placements = {server.placement(data_blob(3, i))
                      for i in range(32)}
        assert len(placements) > 1  # selectors spread, not inode-sticky

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedServer(shards=2, replicas=3)
        with pytest.raises(ValueError):
            ShardedServer(shards=0)
        with pytest.raises(ValueError):
            ShardedServer(shards=4, replicas=2, read_quorum=3)


# ---------------------------------------------------------------------------
# replicated writes, failover reads


class TestReplicationFailover:
    def test_put_lands_on_every_replica(self):
        server = ShardedServer(shards=4, replicas=3)
        blob = meta_blob(1, "alice")
        server.put(blob, b"payload")
        holders = server.census()[blob]
        assert holders == set(server.placement(blob))

    def test_read_survives_any_single_shard_down(self):
        server = ShardedServer(shards=4, replicas=2)
        blobs = [data_blob(i, 0) for i in range(20)]
        for i, blob in enumerate(blobs):
            server.put(blob, b"v%d" % i)
        for down in range(4):
            server.outage(down)
            for i, blob in enumerate(blobs):
                assert server.get(blob) == b"v%d" % i
            server.clear_wrappers()

    def test_write_during_outage_flags_missed_replica(self):
        server = ShardedServer(shards=4, replicas=2)
        blob = next(b for b in (data_blob(i, 0) for i in range(100))
                    if 0 in server.placement(b))
        server.outage(0)
        server.put(blob, b"while-down")
        assert server.get(blob) == b"while-down"
        snap = server.shard_snapshot()
        assert snap["writes.partial"] >= 1
        assert server.under_replicated()[blob] == {0}

    def test_all_replicas_down_is_transient(self):
        server = ShardedServer(shards=2, replicas=2)
        blob = data_blob(1, 0)
        server.put(blob, b"x")
        server.outage(0)
        server.outage(1)
        with pytest.raises(TransientStorageError):
            server.get(blob)
        with pytest.raises(TransientStorageError):
            server.put(blob, b"y")

    def test_absent_blob_with_shard_down_is_not_found(self):
        # Regression: absence voted over the live trusted replicas is
        # authoritative -- a down shard cannot hide the only copy
        # (missed writes live in the suspect ledger, not this vote).
        server = ShardedServer(shards=4, replicas=2)
        server.outage(0)
        with pytest.raises(BlobNotFound):
            server.get(data_blob(9, 3))
        assert not server.exists(_lease(12))


# ---------------------------------------------------------------------------
# quorum divergence


class TestQuorumDivergence:
    def _first_on(self, server, shard: int) -> BlobId:
        # Within the read quorum's preference window, so plain reads
        # actually consult the adversarial replica.
        return next(b for b in (data_blob(i, 0) for i in range(500))
                    if shard in
                    server.placement(b)[:server.read_quorum])

    def test_rolled_back_replica_outvoted_never_served(self):
        server = ShardedServer(shards=4, replicas=3, read_quorum=2)
        blob = self._first_on(server, 2)
        server.wrap_shard(2, lambda b: RollbackServer(inner=b))
        server.put(blob, b"v1")
        server.put(blob, b"v2")  # shard 2 pretends this never happened
        for _ in range(5):
            assert server.get(blob) == b"v2"
        snap = server.shard_snapshot()
        assert snap["outvoted"] >= 1
        assert 2 in server._suspect[blob]
        # Flagged for repair; anti-entropy heals the divergent copy.
        server.clear_wrappers()
        report = server.repair()
        assert report.fully_replicated
        assert report.healed_divergent >= 1
        assert server.shards[2].backend.get(blob) == b"v2"

    def test_tampering_replica_outvoted_never_served(self):
        server = ShardedServer(shards=4, replicas=3, read_quorum=2)
        blob = self._first_on(server, 1)
        server.put(blob, b"\x00" * 64)
        server.wrap_shard(1, lambda b: TamperingServer(inner=b))
        for _ in range(5):
            assert server.get(blob) == b"\x00" * 64
        assert 1 in server._suspect[blob]
        server.clear_wrappers()
        assert server.repair().fully_replicated

    def test_two_way_tie_detected_not_arbitrated(self):
        # At even replication an adversary can split the vote 1-1.
        # The router must not guess: the tie is counted, nobody is
        # falsely suspected, and repair surfaces the blob instead of
        # overwriting either side (client verification arbitrates).
        server = ShardedServer(shards=4, replicas=2, read_quorum=2)
        blob = data_blob(1, 0)
        server.put(blob, b"honest")
        evil = server.placement(blob)[1]
        server.shards[evil].backend.put(blob, b"forged")
        served = server.get(blob)
        assert served in (b"honest", b"forged")
        snap = server.shard_snapshot()
        assert snap["ties"] == 1
        assert blob not in server._suspect
        report = server.repair()
        assert blob in report.remaining
        assert not report.fully_replicated


# ---------------------------------------------------------------------------
# fencing across replicas


class TestShardedFencing:
    def test_epoch_chain_monotone_across_outage(self):
        server = ShardedServer(shards=4, replicas=2)
        fence = _lease(5)
        blob = meta_blob(5, "alice")
        server.put(fence, _epoch_payload(1))
        server.put_fenced(blob, b"epoch1", fence, 1)
        # The holder advances the chain while one shard sleeps through
        # it; the zombie then replays its stale epoch.
        server.outage(3)
        server.put(fence, _epoch_payload(2))
        server.clear_wrappers()
        # Shard 3's lease copy still says epoch 1, but the live max
        # rules: a zombie write fenced at epoch 1 dies everywhere.
        with pytest.raises(StaleEpochError):
            server.put_fenced(blob, b"zombie", fence, 1)
        server.put_fenced(blob, b"epoch2", fence, 2)
        assert server.get(blob) == b"epoch2"

    def test_lease_read_serves_max_epoch(self):
        server = ShardedServer(shards=3, replicas=2)
        fence = _lease(9)
        server.put(fence, _epoch_payload(4))
        # One replica lags (manual surgery below the router).
        lagging = server.placement(fence)[0]
        server.shards[lagging].backend.put(fence, _epoch_payload(3))
        from repro.storage.server import fence_epoch
        assert fence_epoch(server.get(fence)) == 4

    def test_put_if_cas_over_quorum(self):
        server = ShardedServer(shards=4, replicas=3)
        blob = meta_blob(2, "alice")
        server.put_if(blob, b"first", None)
        with pytest.raises(CasConflictError) as exc:
            server.put_if(blob, b"racing", None)
        assert exc.value.current == b"first"
        server.put_if(blob, b"second", b"first")
        assert server.get(blob) == b"second"


# ---------------------------------------------------------------------------
# deletes, tombstones, repair


class TestTombstonesRepair:
    def test_delete_with_shard_down_tombstones(self):
        server = ShardedServer(shards=4, replicas=2)
        blob = next(b for b in (data_blob(i, 0) for i in range(100))
                    if 0 in server.placement(b))
        server.put(blob, b"doomed")
        server.outage(0)
        server.delete(blob)
        with pytest.raises(BlobNotFound):
            server.get(blob)
        assert not server.exists(blob)
        # The downed shard still physically holds it -- a resurrection
        # hazard the tombstone ledger guards until repair applies it.
        assert server.shards[0].backend.exists(blob)
        server.clear_wrappers()
        report = server.repair()
        assert report.deletes_applied >= 1
        assert not server.shards[0].backend.exists(blob)
        assert blob not in server.census()

    def test_repair_restores_full_replication_after_outage(self):
        server = ShardedServer(shards=4, replicas=2)
        blobs = [data_blob(i, 0) for i in range(30)]
        server.outage(2)
        for i, blob in enumerate(blobs):
            server.put(blob, b"p%d" % i)
        server.clear_wrappers()
        assert server.under_replicated()
        report = server.repair()
        assert report.fully_replicated
        assert not server.under_replicated()
        for blob in blobs:
            assert server.census()[blob] == set(server.placement(blob))

    def test_repair_while_still_down_reports_remaining(self):
        server = ShardedServer(shards=4, replicas=2)
        server.outage(1)
        touched = []
        for i in range(40):
            blob = data_blob(i, 0)
            server.put(blob, b"x%d" % i)
            if 1 in server.placement(blob):
                touched.append(blob)
        report = server.repair()  # shard 1 still out
        assert not report.fully_replicated
        assert report.unreachable >= 1
        assert set(report.remaining) >= set(touched[:1])
        server.clear_wrappers()
        assert server.repair().fully_replicated


# ---------------------------------------------------------------------------
# batch fan-out


class TestShardedBatch:
    def test_batch_scatter_merge(self):
        server = ShardedServer(shards=4, replicas=2)
        ops = [BatchOp.put(data_blob(i, 0), b"b%d" % i) for i in range(8)]
        ops.append(BatchOp.get(data_blob(3, 0)))
        ops.append(BatchOp.exists(data_blob(4, 0)))
        replies = server.batch(ops)
        assert [r.status for r in replies] == ["ok"] * 10
        assert replies[8].payload == b"b3"
        assert replies[9].payload == b"\x01"

    def test_batch_through_outage(self):
        server = ShardedServer(shards=4, replicas=2)
        server.outage(0)
        ops = [BatchOp.put(data_blob(i, 1), b"o%d" % i) for i in range(8)]
        replies = server.batch(ops)
        assert all(r.status == "ok" for r in replies)
        for i in range(8):
            assert server.get(data_blob(i, 1)) == b"o%d" % i

    def test_batch_fenced_rejection_wins_over_lagging_replica(self):
        server = ShardedServer(shards=4, replicas=2)
        fence = _lease(11)
        blob = meta_blob(11, "alice")
        server.put(fence, _epoch_payload(3))
        ops = [BatchOp.put_fenced(blob, b"stale", fence, 2)]
        replies = server.batch(ops)
        assert replies[0].status == "fenced"
        assert replies[0].epoch == 3


# ---------------------------------------------------------------------------
# harness surfaces


class TestHarnessSurfaces:
    def test_outage_server_window(self):
        clock = SimClock()
        inner = ShardedServer(shards=1, replicas=1, clock=clock)
        wrapper = inner.outage(0, start_s=10.0, end_s=20.0)
        assert isinstance(wrapper, ShardOutageServer)
        assert isinstance(wrapper, OutageServer)
        blob = data_blob(1, 0)
        inner.put(blob, b"before")
        clock.advance(15.0)  # inside the window
        with pytest.raises(TransientStorageError):
            inner.get(blob)
        clock.advance(10.0)  # past it
        assert inner.get(blob) == b"before"

    def test_restore_blobs_round_trip(self):
        server = ShardedServer(shards=4, replicas=2)
        for i in range(10):
            server.put(data_blob(i, 0), b"s%d" % i)
        snapshot = server.snapshot_blobs()
        server.outage(1)
        server.put(data_blob(3, 0), b"mutated")
        server.delete(data_blob(4, 0))
        server.clear_wrappers()
        server.restore_blobs(snapshot)
        assert not server.under_replicated()
        for i in range(10):
            assert server.get(data_blob(i, 0)) == b"s%d" % i

    def test_shard_snapshot_shape(self):
        server = ShardedServer(shards=3, replicas=2)
        server.put(data_blob(1, 0), b"x")
        snap = server.shard_snapshot()
        assert snap["shards"] == 3.0
        assert snap["replicas"] == 2.0
        for i in range(3):
            assert f"{i}.breaker.state" in snap
            assert f"{i}.attempts" in snap
        assert snap["0.blobs"] + snap["1.blobs"] + snap["2.blobs"] == 2.0

    def test_logical_vs_physical_accounting(self):
        server = ShardedServer(shards=4, replicas=3)
        for i in range(12):
            server.put(data_blob(i, 0), b"y" * 32)
        for i in range(12):
            server.get(data_blob(i, 0))
        assert server.stats.puts == 12
        assert server.stats.gets == 12
        # Physical traffic carries the replication amplification.
        assert server.physical_requests() >= 12 * 3 + 12
        assert server.physical_bytes() == 12 * 3 * 32


# ---------------------------------------------------------------------------
# acceptance: seeded workloads, one shard killed mid-run


def _reference_run(workload: str):
    with _pinned_entropy():
        env = make_env("sharoes", extra_users=("bob",))
        t0 = env.cost.clock.now
        _run_workload(workload, env)
        return {"tree": _visible_tree(env.fs),
                "blobs": env.server.raw_blobs(),
                "duration": env.cost.clock.now - t0,
                "volume": env._volume}


def _sharded_killed_run(workload: str, kill: int, duration: float):
    with _pinned_entropy():
        config = ClientConfig(shards=4, replicas=2)
        env = make_env("sharoes", config=config, extra_users=("bob",))
        server = env.server
        # The shard dies mid-workload (40% through the reference run's
        # simulated timeline) and never comes back until repair time.
        server.outage(kill, start_s=env.cost.clock.now + 0.4 * duration)
        _run_workload(workload, env)
        return {"tree": _visible_tree(env.fs),
                "blobs": server.raw_blobs(),
                "server": server,
                "volume": env._volume}


@pytest.mark.parametrize("workload,kills", [("postmark", (0, 1, 2, 3)),
                                            ("andrew", (0, 2))])
def test_kill_any_shard_mid_workload(workload, kills):
    reference = _reference_run(workload)
    for kill in kills:
        sharded = _sharded_killed_run(workload, kill,
                                      reference["duration"])
        server = sharded["server"]
        # Zero data loss: the visible plaintext tree is byte-identical
        # to the unsharded single-SSP run...
        assert sharded["tree"] == reference["tree"], f"kill={kill}"
        # ...and so is the logical ciphertext state (union of winners).
        assert sharded["blobs"] == reference["blobs"], f"kill={kill}"
        # The volume audits clean even with the shard still down
        # (quorum serves every surviving copy).
        report = VolumeAuditor(sharded["volume"]).audit()
        assert report.clean, (kill, report.summary())
        assert not report.orphaned_blobs
        # The shard returns; one anti-entropy pass restores placement.
        server.clear_wrappers()
        repair = server.repair()
        assert repair.fully_replicated, (kill, repair.summary())
        assert not server.under_replicated()
        # Replication overhead is physical, never logical: the client
        # issued the same requests, the backends absorbed ~k copies.
        assert server.physical_requests() > server.stats.puts


def test_sharded_config_rejected_for_baselines():
    from repro.errors import SharoesError
    with pytest.raises(SharoesError):
        make_env("public", config=ClientConfig(shards=4))


# ---------------------------------------------------------------------------
# acceptance: online rebalance fired mid-workload

#: signing identity for the acceptance rebalances -- generated OUTSIDE
#: the pinned-entropy scope so the sharded run consumes exactly the
#: same entropy stream as the unsharded reference (RSA signing itself
#: is deterministic, so the plan machinery draws nothing).
_REB_KEY = None


def _reb_key():
    global _REB_KEY
    if _REB_KEY is None:
        from repro.crypto import rsa
        _REB_KEY = rsa.generate_keypair(512)
    return _REB_KEY


def _sharded_rebalanced_run(workload: str, members, replicas: int,
                            spares: int):
    """Sharded run with a live rebalance spanning the workload.

    The plan is proposed + staged at the 40th client mutation and
    driven to DONE at the 80th, so a window of real workload writes
    lands under dual placement and the flip happens with clients live.
    """
    from repro.storage.rebalance import (VERIFIED, MidRunRebalance,
                                         Rebalancer)
    key = _reb_key()
    with _pinned_entropy():
        config = ClientConfig(shards=4, replicas=2)
        env = make_env("sharoes", config=config, extra_users=("bob",))
        server = env.server
        for _ in range(spares):
            server.add_shard()
        holder = {}

        def stage_plan():
            reb = Rebalancer(server, keypair=key)
            reb.propose(members, replicas)
            reb.execute(until=VERIFIED)
            holder["reb"] = reb

        def finish_plan():
            holder["reb"].execute()

        trigger = MidRunRebalance(server, [(40, stage_plan),
                                           (80, finish_plan)])
        env._client_server = trigger
        _run_workload(workload, env)
        return {"tree": _visible_tree(env.fs),
                "blobs": server.raw_blobs(),
                "server": server,
                "volume": env._volume,
                "trigger": trigger}


@pytest.mark.parametrize("name,members,replicas,spares", [
    ("grow", (0, 1, 2, 3, 4, 5), 2, 2),
    ("shrink", (0, 1, 2), 2, 0),
    ("re-replicate", (0, 1, 2, 3), 3, 0),
])
def test_online_rebalance_mid_workload(name, members, replicas, spares):
    from repro.storage.shards import RingSpec
    reference = _reference_run("postmark")
    sharded = _sharded_rebalanced_run("postmark", members, replicas,
                                      spares)
    server = sharded["server"]
    # Both stages really fired inside the workload window.
    assert sharded["trigger"].fired == 2, name
    assert server.ring == RingSpec(tuple(members), replicas), name
    assert server.plan is None, name
    # Zero data loss and zero divergence: the visible plaintext tree
    # and the logical ciphertext state are byte-identical to the
    # unsharded single-SSP reference run.
    assert sharded["tree"] == reference["tree"], name
    assert sharded["blobs"] == reference["blobs"], name
    report = VolumeAuditor(sharded["volume"]).audit()
    assert report.clean, (name, report.summary())
    assert not report.orphaned_blobs, name
    # Anti-entropy on the *new* ring: nothing is misplaced (stray
    # old-placement copies of mid-plan writes classify as migrated),
    # and the target replication factor holds everywhere.
    repair = server.repair()
    if not repair.fully_replicated:
        repair = server.repair()
    assert repair.fully_replicated, (name, repair.summary())
    assert repair.dropped_misplaced == 0, (name, repair.summary())
    assert not server.under_replicated(), name
    # The rebalance paid physical traffic, not logical requests.
    assert server.physical_requests() > server.stats.puts, name
    assert server.rebalance_moved > 0, name
