"""Metadata objects, directory tables, superblock, sealed envelope,
path handling, inode allocation, LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caps.model import VIEW_FULL, VIEW_HIDDEN, VIEW_NAMES
from repro.crypto import rsa
from repro.crypto.keys import new_signature_pair, new_symmetric_key
from repro.crypto.provider import CryptoProvider
from repro.errors import (CryptoError, FileNotFound, IntegrityError,
                          PermissionDenied)
from repro.fs import path as fspath
from repro.fs.cache import LruCache
from repro.fs.dirtable import DIRECT, SPLIT, ZERO, DirEntry, DirPointer, TableView
from repro.fs.inode import InodeAllocator
from repro.fs.metadata import MetadataAttrs, MetadataView, Stat
from repro.fs.permissions import AclEntry
from repro.fs.sealed import (bind_context, open_unverified, open_verified,
                             seal_and_sign)
from repro.fs.superblock import Superblock

provider = CryptoProvider()


def _attrs(**kwargs) -> MetadataAttrs:
    defaults = dict(inode=7, ftype="file", owner="alice", group="eng",
                    mode=0o640)
    defaults.update(kwargs)
    return MetadataAttrs(**defaults)


class TestMetadataSerialization:
    def test_attrs_roundtrip(self):
        attrs = _attrs(size=123, nlink=2, version=9, block_count=3,
                       acl=(AclEntry("dave", 0o4),))
        from repro.serialize import Reader, Writer
        w = Writer()
        attrs.to_writer(w)
        restored = MetadataAttrs.from_reader(Reader(w.getvalue()))
        assert restored == attrs

    def test_view_roundtrip_full(self):
        pair = new_signature_pair(64)
        meta_pair = new_signature_pair(64)
        view = MetadataView(
            attrs=_attrs(), cap_id="frw", selector="o",
            dek=new_symmetric_key(), dvk=pair.verification,
            dsk=pair.signing, msk=meta_pair.signing,
            selector_meks={"o": b"m" * 16, "g": b"g" * 16},
            table_deks={}, needs_rekey=True)
        restored = MetadataView.from_bytes(view.to_bytes())
        assert restored.attrs == view.attrs
        assert restored.cap_id == "frw"
        assert restored.dek == view.dek
        assert restored.dsk.to_bytes() == view.dsk.to_bytes()
        assert restored.msk.to_bytes() == view.msk.to_bytes()
        assert restored.selector_meks == view.selector_meks
        assert restored.needs_rekey is True

    def test_view_roundtrip_minimal(self):
        view = MetadataView(attrs=_attrs(), cap_id="f0", selector="w")
        restored = MetadataView.from_bytes(view.to_bytes())
        assert restored.dek is None
        assert restored.dvk is None
        assert not restored.is_owner_view

    def test_guarded_accessors_raise(self):
        from repro.errors import KeyAccessError
        view = MetadataView(attrs=_attrs(), cap_id="f0", selector="w")
        for accessor in (view.require_dek, view.require_dvk,
                         view.require_dsk, view.require_msk):
            with pytest.raises(KeyAccessError):
                accessor()

    def test_stat_from_attrs(self):
        stat = Stat.from_attrs(_attrs(size=10))
        assert stat.inode == 7
        assert stat.size == 10
        assert stat.mode == 0o640


def _entry(name: str, inode: int = 10) -> DirEntry:
    return DirEntry(name=name, inode=inode, kind=DIRECT,
                    pointer=DirPointer(selector="o", mek=b"m" * 16,
                                       mvk=b"v" * 20))


class TestTableViews:
    def test_full_view_roundtrip(self):
        view = TableView.build(VIEW_FULL, [_entry("a"), _entry("b", 11)])
        restored = TableView.from_bytes(view.to_bytes())
        assert restored.list_names() == ["a", "b"]
        assert restored.lookup("b").inode == 11
        assert restored.lookup("b").pointer.mek == b"m" * 16

    def test_full_view_missing_name(self):
        view = TableView.build(VIEW_FULL, [_entry("a")])
        with pytest.raises(FileNotFound):
            view.lookup("zzz")

    def test_names_view_lists_but_denies_lookup(self):
        view = TableView.build(VIEW_NAMES, [_entry("a"), _entry("b")])
        restored = TableView.from_bytes(view.to_bytes())
        assert restored.list_names() == ["a", "b"]
        with pytest.raises(PermissionDenied):
            restored.lookup("a")

    def test_hidden_view_denies_listing(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [_entry("a")],
                               provider=provider, table_dek=dek)
        with pytest.raises(PermissionDenied):
            view.list_names()

    def test_hidden_view_lookup_by_exact_name(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [_entry("secret.txt", 42)],
                               provider=provider, table_dek=dek)
        restored = TableView.from_bytes(view.to_bytes())
        found = restored.lookup("secret.txt", provider=provider,
                                table_dek=dek)
        assert found.inode == 42
        assert found.pointer.selector == "o"

    def test_hidden_view_unknown_name(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [_entry("secret.txt")],
                               provider=provider, table_dek=dek)
        with pytest.raises(FileNotFound):
            view.lookup("Secret.txt", provider=provider, table_dek=dek)

    def test_hidden_view_wrong_dek_fails(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [_entry("secret.txt")],
                               provider=provider, table_dek=dek)
        with pytest.raises(FileNotFound):
            view.lookup("secret.txt", provider=provider,
                        table_dek=new_symmetric_key())

    def test_hidden_cells_do_not_leak_names(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN,
                               [_entry("quarterly-report.pdf")],
                               provider=provider, table_dek=dek)
        assert b"quarterly-report" not in view.to_bytes()

    def test_add_remove_full(self):
        view = TableView.build(VIEW_FULL, [_entry("a")])
        view.add(_entry("b"))
        view.remove("a")
        assert view.list_names() == ["b"]

    def test_add_remove_hidden(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [], provider=provider,
                               table_dek=dek)
        view.add(_entry("x"), provider=provider, table_dek=dek)
        assert view.entry_count() == 1
        view.remove("x", provider=provider, table_dek=dek)
        assert view.entry_count() == 0

    def test_names_membership(self):
        view = TableView.build(VIEW_NAMES, [_entry("a")])
        assert "a" in view
        assert "b" not in view

    def test_hidden_membership_denied(self):
        dek = new_symmetric_key()
        view = TableView.build(VIEW_HIDDEN, [], provider=provider,
                               table_dek=dek)
        with pytest.raises(PermissionDenied):
            "a" in view  # noqa: B015

    def test_split_and_zero_entries_roundtrip(self):
        entries = [DirEntry(name="s", inode=1, kind=SPLIT),
                   DirEntry(name="z", inode=2, kind=ZERO)]
        view = TableView.from_bytes(
            TableView.build(VIEW_FULL, entries).to_bytes())
        assert view.lookup("s").kind == SPLIT
        assert view.lookup("z").kind == ZERO
        assert view.lookup("s").pointer is None

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            TableView("diagonal")

    def test_hidden_build_needs_keys(self):
        with pytest.raises(CryptoError):
            TableView.build(VIEW_HIDDEN, [_entry("a")])


class TestSealedEnvelope:
    def test_seal_open_roundtrip(self):
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        ctx = bind_context("meta", 5, "o")
        blob = seal_and_sign(provider, key, pair.signing, ctx, b"payload")
        assert open_verified(provider, key, pair.verification, ctx,
                             blob) == b"payload"

    def test_context_swap_detected(self):
        """A signed blob served from the wrong location must not verify."""
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        blob = seal_and_sign(provider, key, pair.signing,
                             bind_context("meta", 5, "o"), b"payload")
        with pytest.raises(IntegrityError):
            open_verified(provider, key, pair.verification,
                          bind_context("meta", 6, "o"), blob)

    def test_bitflip_detected(self):
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        ctx = bind_context("data", 5, "b0")
        blob = bytearray(seal_and_sign(provider, key, pair.signing, ctx,
                                       b"payload"))
        blob[10] ^= 1
        with pytest.raises(IntegrityError):
            open_verified(provider, key, pair.verification, ctx,
                          bytes(blob))

    def test_unverified_open_skips_signature(self):
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        ctx = bind_context("data", 5, "b0")
        blob = seal_and_sign(provider, key, pair.signing, ctx, b"payload")
        assert open_unverified(provider, key, blob) == b"payload"


class TestSuperblock:
    def test_roundtrip(self):
        sb = Superblock(root_inode=2, root_selector="o",
                        root_mek=b"m" * 16, root_mvk=b"v" * 30,
                        scheme_name="scheme2", block_size=65536)
        assert Superblock.from_bytes(sb.to_bytes()) == sb

    def test_wrap_unwrap(self):
        user = rsa.generate_keypair(512)
        sb = Superblock(root_inode=2, root_selector="o",
                        root_mek=b"m" * 16, root_mvk=b"v" * 30,
                        scheme_name="scheme2", block_size=65536)
        blob = sb.wrap(provider, user.public)
        assert Superblock.unwrap(provider, user.private, blob) == sb

    def test_wrong_user_cannot_unwrap(self):
        user = rsa.generate_keypair(512)
        other = rsa.generate_keypair(512)
        sb = Superblock(root_inode=2, root_selector="o",
                        root_mek=b"m" * 16, root_mvk=b"v" * 30,
                        scheme_name="scheme2", block_size=65536)
        blob = sb.wrap(provider, user.public)
        with pytest.raises(Exception):
            Superblock.unwrap(provider, other.private, blob)


class TestPath:
    def test_split_basic(self):
        assert fspath.split_path("/") == []
        assert fspath.split_path("/a/b/c") == ["a", "b", "c"]
        assert fspath.split_path("/a//b/") == ["a", "b"]
        assert fspath.split_path("/a/./b") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(fspath.InvalidPath):
            fspath.split_path("a/b")
        with pytest.raises(fspath.InvalidPath):
            fspath.split_path("")

    def test_dotdot_rejected(self):
        with pytest.raises(fspath.InvalidPath):
            fspath.split_path("/a/../b")

    def test_nul_rejected(self):
        with pytest.raises(fspath.InvalidPath):
            fspath.split_path("/a\x00b")

    def test_parent_and_name(self):
        assert fspath.parent_and_name("/a/b/c") == ("/a/b", "c")
        assert fspath.parent_and_name("/a") == ("/", "a")
        with pytest.raises(fspath.InvalidPath):
            fspath.parent_and_name("/")

    def test_join_and_normalize(self):
        assert fspath.join("/a", "b", "c") == "/a/b/c"
        assert fspath.normalize("//x///y/") == "/x/y"


class TestInodeAllocator:
    def test_sequential_unique(self):
        alloc = InodeAllocator()
        first = alloc.allocate()
        assert first == InodeAllocator.ROOT_INODE
        seen = {first}
        for _ in range(100):
            inode = alloc.allocate()
            assert inode not in seen
            seen.add(inode)
        assert alloc.allocated == 101


class TestLruCache:
    def test_hit_miss(self):
        cache = LruCache(100)
        assert cache.get("a") is None
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LruCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")               # refresh a
        cache.put("d", 4, 10)        # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LruCache(0)
        cache.put("a", 1, 1)
        assert cache.get("a") is None

    def test_unbounded(self):
        cache = LruCache(None)
        for i in range(1000):
            cache.put(i, i, 1000)
        assert len(cache) == 1000

    def test_oversized_object_not_cached(self):
        cache = LruCache(10)
        cache.put("big", 1, 11)
        assert cache.get("big") is None
        assert cache.used_bytes == 0

    def test_replace_updates_bytes(self):
        cache = LruCache(100)
        cache.put("a", 1, 10)
        cache.put("a", 2, 20)
        assert cache.used_bytes == 20
        assert cache.get("a") == 2

    def test_invalidate_prefix(self):
        cache = LruCache(None)
        cache.put(("meta", 1, "o"), "x", 1)
        cache.put(("meta", 2, "o"), "y", 1)
        cache.put(("data", 1, 0), "z", 1)
        cache.invalidate_prefix(("meta", 1))
        assert cache.get(("meta", 1, "o")) is None
        assert cache.get(("meta", 2, "o")) == "y"
        assert cache.get(("data", 1, 0)) == "z"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 30)),
                    max_size=60),
           st.integers(min_value=1, max_value=100))
    def test_budget_invariant(self, operations, capacity):
        """used_bytes never exceeds capacity, whatever the op sequence."""
        cache = LruCache(capacity)
        for key, size in operations:
            cache.put(key, key, size)
            assert cache.used_bytes <= capacity
            total = sum(size for _, (_, size) in cache._entries.items())
            assert total == cache.used_bytes
