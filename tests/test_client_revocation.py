"""Revocation (immediate + lazy), chown, ACLs, rekey, group revocation."""

import pytest

from repro.errors import PermissionDenied
from repro.principals.registry import UnknownPrincipal
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.permissions import AclEntry


def fresh(volume, registry, user_id, **config_kwargs):
    fs = SharoesFilesystem(volume, registry.user(user_id),
                           config=ClientConfig(**config_kwargs))
    fs.mount()
    return fs


class TestImmediateRevocation:
    def test_revoked_reader_denied(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"secret", mode=0o644)
        carol = fresh(volume, registry, "carol")
        assert carol.read_file("/f") == b"secret"
        alice_fs.chmod("/f", 0o600)
        carol2 = fresh(volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol2.read_file("/f")

    def test_revocation_rotates_data_keys(self, alice_fs, volume,
                                          registry, server):
        """Immediate revocation re-encrypts: a revoked reader replaying
        their cached DEK against current blobs gets nothing."""
        alice_fs.create_file("/f", b"secret", mode=0o644)
        carol = fresh(volume, registry, "carol")
        node = carol._resolve("/f")
        cached_dek = node.view.require_dek()
        alice_fs.chmod("/f", 0o600)
        from repro.fs.volume import block_blob_id
        from repro.crypto.provider import CryptoProvider
        from repro.fs.sealed import open_unverified
        blob = server.get(block_blob_id(node.inode, 0))
        with pytest.raises(Exception):
            open_unverified(CryptoProvider(), cached_dek, blob)

    def test_revoked_writer_loses_dsk(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"x", mode=0o666)
        dave = fresh(volume, registry, "dave")
        dave.write_file("/f", b"dave was here")
        alice_fs.cache.clear()
        alice_fs.chmod("/f", 0o644)
        dave2 = fresh(volume, registry, "dave")
        with pytest.raises(PermissionDenied):
            dave2.write_file("/f", b"still here?")
        assert dave2.read_file("/f") == b"dave was here"

    def test_group_loss_via_mode(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"eng", mode=0o640)
        bob = fresh(volume, registry, "bob")
        assert bob.read_file("/f") == b"eng"
        alice_fs.chmod("/f", 0o600)
        bob2 = fresh(volume, registry, "bob")
        with pytest.raises(PermissionDenied):
            bob2.read_file("/f")

    def test_regrant_after_revoke(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"v1", mode=0o644)
        alice_fs.chmod("/f", 0o600)
        alice_fs.write_file("/f", b"v2")
        alice_fs.chmod("/f", 0o644)
        carol = fresh(volume, registry, "carol")
        assert carol.read_file("/f") == b"v2"

    def test_directory_revocation(self, alice_fs, volume, registry):
        alice_fs.mkdir("/d", mode=0o755)
        alice_fs.create_file("/d/f", b"x", mode=0o644)
        alice_fs.chmod("/d", 0o700)
        carol = fresh(volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.readdir("/d")
        with pytest.raises(PermissionDenied):
            carol.read_file("/d/f")


class TestLazyRevocation:
    def test_lazy_defers_rekey_until_write(self, volume, registry):
        alice = fresh(volume, registry, "alice",
                      immediate_revocation=False)
        alice.create_file("/f", b"secret", mode=0o644)
        carol = fresh(volume, registry, "carol")
        node = carol._resolve("/f")
        old_dek = node.view.require_dek()

        alice.chmod("/f", 0o600)
        # Pre-write: the content is still under the old key (lazy).
        from repro.fs.volume import block_blob_id
        from repro.crypto.provider import CryptoProvider
        from repro.fs.sealed import open_unverified
        blob = volume.server.get(block_blob_id(node.inode, 0))
        payload = open_unverified(CryptoProvider(), old_dek, blob)
        assert payload.endswith(b"secret")

        # The owner's next write triggers the rekey.
        alice.cache.clear()
        alice.write_file("/f", b"fresh content")
        blob = volume.server.get(block_blob_id(node.inode, 0))
        with pytest.raises(Exception):
            open_unverified(CryptoProvider(), old_dek, blob)
        alice.cache.clear()
        assert alice.read_file("/f") == b"fresh content"

    def test_lazy_still_blocks_new_fetches(self, volume, registry):
        """Even before rekey, the revoked user's replica is gone."""
        alice = fresh(volume, registry, "alice",
                      immediate_revocation=False)
        alice.create_file("/f", b"secret", mode=0o644)
        alice.chmod("/f", 0o600)
        carol = fresh(volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.read_file("/f")


class TestChown:
    def test_ownership_transfer(self, alice_fs, volume, registry):
        alice_fs.create_file("/gift", b"present", mode=0o600)
        alice_fs.chown("/gift", "bob")
        bob = fresh(volume, registry, "bob")
        assert bob.read_file("/gift") == b"present"
        bob.write_file("/gift", b"mine now")
        bob.chmod("/gift", 0o640)

    def test_old_owner_fully_revoked(self, alice_fs, volume, registry):
        alice_fs.create_file("/gift", b"present", mode=0o600)
        alice_fs.chown("/gift", "bob")
        alice2 = fresh(volume, registry, "alice")
        with pytest.raises(PermissionDenied):
            alice2.read_file("/gift")

    def test_chown_unknown_user_rejected(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(UnknownPrincipal):
            alice_fs.chown("/f", "mallory")

    def test_chown_with_group_change(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"x", mode=0o640, group="eng")
        alice_fs.chown("/f", "carol", new_group="hr")
        stat = fresh(volume, registry, "carol").getattr("/f")
        assert (stat.owner, stat.group) == ("carol", "hr")

    def test_chown_directory(self, alice_fs, volume, registry):
        alice_fs.mkdir("/d", mode=0o750)
        alice_fs.create_file("/d/f", b"inside", mode=0o644)
        alice_fs.chown("/d", "bob")
        bob = fresh(volume, registry, "bob")
        assert bob.readdir("/d") == ["f"]
        assert bob.read_file("/d/f") == b"inside"


class TestAcl:
    def test_acl_grants_outsider_read(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"for dave", mode=0o600)
        alice_fs.set_acl("/f", (AclEntry("dave", 0o4),))
        dave = fresh(volume, registry, "dave")
        assert dave.read_file("/f") == b"for dave"
        with pytest.raises(PermissionDenied):
            dave.write_file("/f", b"nope")

    def test_acl_grants_write(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"x", mode=0o600)
        alice_fs.set_acl("/f", (AclEntry("dave", 0o6),))
        dave = fresh(volume, registry, "dave")
        dave.write_file("/f", b"dave writes")
        alice_fs.cache.clear()
        assert alice_fs.read_file("/f") == b"dave writes"

    def test_acl_removal_revokes(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"x", mode=0o600)
        alice_fs.set_acl("/f", (AclEntry("dave", 0o4),))
        assert fresh(volume, registry, "dave").read_file("/f") == b"x"
        alice_fs.set_acl("/f", ())
        dave = fresh(volume, registry, "dave")
        with pytest.raises(PermissionDenied):
            dave.read_file("/f")

    def test_acl_beats_group_class(self, alice_fs, volume, registry):
        """An ACL entry for bob overrides his group-class bits."""
        alice_fs.create_file("/f", b"x", mode=0o640)
        alice_fs.set_acl("/f", (AclEntry("bob", 0o0),))
        bob = fresh(volume, registry, "bob")
        with pytest.raises(PermissionDenied):
            bob.read_file("/f")

    def test_acl_unknown_user_rejected(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(UnknownPrincipal):
            alice_fs.set_acl("/f", (AclEntry("mallory", 0o4),))

    def test_acl_on_directory(self, alice_fs, volume, registry):
        alice_fs.mkdir("/d", mode=0o700)
        alice_fs.create_file("/d/f", b"deep", mode=0o604)
        alice_fs.set_acl("/d", (AclEntry("dave", 0o5),))
        dave = fresh(volume, registry, "dave")
        assert dave.readdir("/d") == ["f"]
        assert dave.read_file("/d/f") == b"deep"


class TestRekey:
    def test_rekey_keeps_owner_access(self, alice_fs):
        alice_fs.create_file("/f", b"stable", mode=0o640)
        alice_fs.rekey("/f")
        alice_fs.cache.clear()
        assert alice_fs.read_file("/f") == b"stable"

    def test_rekey_keeps_group_access(self, alice_fs, volume, registry):
        alice_fs.create_file("/f", b"stable", mode=0o640)
        alice_fs.rekey("/f")
        bob = fresh(volume, registry, "bob")
        assert bob.read_file("/f") == b"stable"

    def test_rekey_rotates_all_keys(self, alice_fs):
        node = None
        alice_fs.create_file("/f", b"x", mode=0o640)
        node = alice_fs._resolve("/f")
        old_mek, old_dek = node.mek, node.view.require_dek()
        alice_fs.rekey("/f")
        alice_fs.cache.clear()
        node2 = alice_fs._resolve("/f")
        assert node2.mek != old_mek
        assert node2.view.require_dek() != old_dek

    def test_rekey_directory(self, alice_fs, volume, registry):
        alice_fs.mkdir("/d", mode=0o750)
        alice_fs.create_file("/d/f", b"kid", mode=0o644)
        alice_fs.rekey("/d")
        bob = fresh(volume, registry, "bob")
        assert bob.readdir("/d") == ["f"]
        assert bob.read_file("/d/f") == b"kid"

    def test_group_member_departure_flow(self, alice_fs, volume,
                                          registry, server):
        """The full paper flow: member leaves group -> group key rotated
        -> owners rekey every object the group could access, including
        ancestor directories (the departed member still knows their
        MEKs), which also reissues the superblocks."""
        from repro.crypto.provider import CryptoProvider
        from repro.principals.groups import GroupKeyService
        alice_fs.create_file("/f", b"eng data", mode=0o640)
        service = GroupKeyService(registry, server, CryptoProvider())
        service.revoke_member("eng", "bob")
        alice_fs.rekey("/f")
        alice_fs.rekey("/")  # the root was group-traversable too
        bob = fresh(volume, registry, "bob")
        with pytest.raises(PermissionDenied):
            bob.read_file("/f")
        # bob's reissued superblock now maps him to the world class:
        # stat still works (zero CAP), data access does not.
        assert bob.getattr("/f").owner == "alice"
