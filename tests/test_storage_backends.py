"""Disk-backed SSP storage and the TCP wire protocol."""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import BlobNotFound, StorageError
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.storage.blobs import data_blob, meta_blob
from repro.storage.disk import DiskStorageServer
from repro.storage.server import StorageServer
from repro.storage.wire import RemoteStorageClient, SspServer


class TestDiskStorage:
    def test_roundtrip(self, tmp_path):
        server = DiskStorageServer(tmp_path / "ssp")
        server.put(meta_blob(1, "o"), b"payload")
        assert server.get(meta_blob(1, "o")) == b"payload"
        assert server.exists(meta_blob(1, "o"))

    def test_missing(self, tmp_path):
        server = DiskStorageServer(tmp_path / "ssp")
        with pytest.raises(BlobNotFound):
            server.get(meta_blob(1, "o"))

    def test_delete_idempotent(self, tmp_path):
        server = DiskStorageServer(tmp_path / "ssp")
        server.put(meta_blob(1, "o"), b"x")
        server.delete(meta_blob(1, "o"))
        server.delete(meta_blob(1, "o"))
        assert not server.exists(meta_blob(1, "o"))

    def test_survives_reopen(self, tmp_path):
        DiskStorageServer(tmp_path / "ssp").put(data_blob(9, "b0"),
                                                b"persistent")
        reopened = DiskStorageServer(tmp_path / "ssp")
        assert reopened.get(data_blob(9, "b0")) == b"persistent"
        assert reopened.blob_count() == 1
        assert reopened.stored_bytes() == 10

    def test_selector_with_slash(self, tmp_path):
        from repro.storage.blobs import group_key_blob
        server = DiskStorageServer(tmp_path / "ssp")
        blob_id = group_key_blob("eng", "alice")
        assert "/" in blob_id.selector
        server.put(blob_id, b"wrapped")
        assert server.get(blob_id) == b"wrapped"
        assert list(server.list_kind("groupkey")) == [blob_id]

    def test_full_volume_on_disk_survives_restart(self, tmp_path,
                                                  registry):
        server = DiskStorageServer(tmp_path / "ssp")
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        fs = SharoesFilesystem(volume, registry.user("alice"))
        fs.mount()
        fs.create_file("/persisted.txt", b"still here", mode=0o640)

        # "Restart": a brand-new server object over the same directory.
        server2 = DiskStorageServer(tmp_path / "ssp")
        volume2 = SharoesVolume(server2, registry)
        volume2.root_inode = volume.root_inode
        volume2.allocator = volume.allocator
        fs2 = SharoesFilesystem(volume2, registry.user("bob"))
        fs2.mount()
        assert fs2.read_file("/persisted.txt") == b"still here"

    def test_only_ciphertext_on_disk(self, tmp_path, registry):
        server = DiskStorageServer(tmp_path / "ssp")
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        fs = SharoesFilesystem(volume, registry.user("alice"))
        fs.mount()
        fs.create_file("/x", b"THE-PLAINTEXT-SENTINEL", mode=0o600)
        on_disk = b"".join(p.read_bytes()
                           for p in (tmp_path / "ssp").rglob("*")
                           if p.is_file())
        assert b"THE-PLAINTEXT-SENTINEL" not in on_disk


@pytest.fixture
def wire_pair():
    backend = StorageServer()
    server = SspServer(backend).start()
    host, port = server.address
    client = RemoteStorageClient(host, port)
    yield backend, client
    client.close()
    server.stop()


class TestWireProtocol:
    def test_put_get(self, wire_pair):
        backend, client = wire_pair
        client.put(meta_blob(1, "o"), b"over the wire")
        assert client.get(meta_blob(1, "o")) == b"over the wire"
        assert backend.get(meta_blob(1, "o")) == b"over the wire"

    def test_missing_maps_to_blob_not_found(self, wire_pair):
        _, client = wire_pair
        with pytest.raises(BlobNotFound):
            client.get(meta_blob(404, "o"))

    def test_delete_and_exists(self, wire_pair):
        _, client = wire_pair
        client.put(meta_blob(1, "o"), b"x")
        assert client.exists(meta_blob(1, "o"))
        client.delete(meta_blob(1, "o"))
        assert not client.exists(meta_blob(1, "o"))

    def test_large_payload(self, wire_pair):
        _, client = wire_pair
        big = bytes(range(256)) * 4096  # 1 MiB
        client.put(data_blob(7, "b0"), big)
        assert client.get(data_blob(7, "b0")) == big

    def test_binary_safe(self, wire_pair):
        _, client = wire_pair
        nasty = b"\x00\xff\n\r" * 100
        client.put(data_blob(8, "b0"), nasty)
        assert client.get(data_blob(8, "b0")) == nasty

    def test_enumeration_refused(self, wire_pair):
        _, client = wire_pair
        with pytest.raises(StorageError):
            client.raw_blobs()
        with pytest.raises(StorageError):
            client.blob_count()

    def test_full_filesystem_over_tcp(self, registry):
        """A complete SHAROES mount where every blob crosses a socket."""
        backend = StorageServer()
        with SspServer(backend) as server:
            host, port = server.address
            client = RemoteStorageClient(host, port)
            try:
                # Provision through the same wire (the migration/format
                # path also only needs put).
                volume = SharoesVolume(client, registry)
                volume.format(root_owner="alice", root_group="eng")
                GroupKeyService(registry, client,
                                CryptoProvider()).publish_all()
                fs = SharoesFilesystem(volume, registry.user("alice"))
                fs.mount()
                fs.mkdir("/d", mode=0o750)
                fs.create_file("/d/f", b"tcp bytes", mode=0o640)
                fs.cache.clear()
                assert fs.read_file("/d/f") == b"tcp bytes"
                # The backend (the real SSP) holds only ciphertext.
                everything = b"".join(backend.raw_blobs().values())
                assert b"tcp bytes" not in everything
            finally:
                client.close()

    def test_two_clients_share_one_server(self, registry):
        backend = StorageServer()
        with SspServer(backend) as server:
            host, port = server.address
            c1 = RemoteStorageClient(host, port)
            c2 = RemoteStorageClient(host, port)
            try:
                c1.put(meta_blob(5, "o"), b"from c1")
                assert c2.get(meta_blob(5, "o")) == b"from c1"
            finally:
                c1.close()
                c2.close()
