"""Robustness: AES-engine volumes, malformed-input fuzzing, flaky SSPs,
multi-group membership, engine consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.provider import CryptoProvider
from repro.errors import (IntegrityError, SharoesError, StorageError)
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.dirtable import TableView
from repro.fs.metadata import MetadataAttrs, MetadataView
from repro.fs.superblock import Superblock
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.serialize import SerializationError
from repro.storage.faults import FlakyServer
from repro.storage.server import StorageServer


class TestAesEngineVolume:
    """End-to-end over the real FIPS-197 AES implementation."""

    @pytest.fixture
    def aes_volume(self, server, registry):
        volume = SharoesVolume(server, registry, engine="aes")
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        return volume

    def test_full_flow_under_aes(self, aes_volume, registry):
        fs = SharoesFilesystem(aes_volume, registry.user("alice"))
        fs.mount()
        assert fs.provider.engine_name == "aes"
        fs.mkdir("/d", mode=0o750)
        fs.create_file("/d/f", b"real AES all the way down", mode=0o640)
        fs.cache.clear()
        assert fs.read_file("/d/f") == b"real AES all the way down"
        bob = SharoesFilesystem(aes_volume, registry.user("bob"))
        bob.mount()
        assert bob.read_file("/d/f") == b"real AES all the way down"

    def test_client_engine_override_breaks_interop(self, aes_volume,
                                                   registry):
        """A client forcing the wrong engine cannot open volume blobs --
        which is why the engine is a volume property."""
        fs = SharoesFilesystem(aes_volume, registry.user("alice"),
                               config=ClientConfig(engine="stream"))
        fs.mount()  # superblock is public-key wrapped: engine-agnostic
        with pytest.raises(Exception):
            fs.getattr("/")

    def test_clients_inherit_volume_engine(self, aes_volume, registry):
        fs = SharoesFilesystem(aes_volume, registry.user("alice"))
        assert fs.provider.engine_name == "aes"


class TestMalformedInputs:
    """Random bytes must produce clean library errors, never crashes."""

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_metadata_view_from_bytes_never_crashes(self, raw):
        try:
            MetadataView.from_bytes(raw)
        except (SerializationError, SharoesError, ValueError,
                OverflowError):
            pass

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_table_view_from_bytes_never_crashes(self, raw):
        try:
            TableView.from_bytes(raw)
        except (SerializationError, SharoesError, ValueError):
            pass

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_superblock_from_bytes_never_crashes(self, raw):
        try:
            Superblock.from_bytes(raw)
        except (SerializationError, SharoesError, ValueError):
            pass

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_sealed_open_never_crashes(self, raw):
        from repro.crypto.keys import new_signature_pair
        from repro.fs.sealed import bind_context, open_verified
        pair = new_signature_pair(64)
        provider = CryptoProvider()
        try:
            open_verified(provider, b"k" * 16, pair.verification,
                          bind_context("meta", 1, "o"), raw)
        except (IntegrityError, SharoesError, ValueError):
            pass

    def test_attrs_reader_rejects_garbage(self):
        from repro.serialize import Reader
        with pytest.raises(SerializationError):
            MetadataAttrs.from_reader(Reader(b"\x00\x01\x02"))


class TestFlakySsp:
    def _stack(self, registry, failure_rate, seed=3):
        server = FlakyServer(failure_rate=failure_rate, seed=seed)
        # format must succeed: disable failures during provisioning
        server._failure_rate = 0.0
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        server._failure_rate = failure_rate
        return server, volume

    def test_errors_propagate_cleanly(self, registry):
        server, volume = self._stack(registry, failure_rate=1.0)
        fs = SharoesFilesystem(volume, registry.user("alice"))
        with pytest.raises(StorageError):
            fs.mount()

    def test_retry_succeeds_after_transient_failure(self, registry):
        server, volume = self._stack(registry, failure_rate=0.4, seed=9)
        fs = SharoesFilesystem(volume, registry.user("alice"))
        for _ in range(50):
            try:
                fs.mount()
                break
            except StorageError:
                continue
        else:
            pytest.fail("mount never succeeded")
        for _ in range(100):
            try:
                fs.create_file("/f", b"eventually", mode=0o600)
                break
            except StorageError:
                # partial create may have happened; a fresh name retries
                try:
                    fs.unlink("/f")
                except Exception:
                    pass
                continue
        server._failure_rate = 0.0
        fs.cache.clear()
        assert fs.read_file("/f") == b"eventually"


class TestMultiGroupUsers:
    @pytest.fixture
    def multi_registry(self, session_keypairs):
        from repro.principals.users import User
        reg = PrincipalRegistry()
        for name in ("alice", "bob", "carol", "dave"):
            reg.add_user(User(user_id=name,
                              keypair=session_keypairs[name]))
        reg.create_group("eng", {"alice", "bob"}, key_bits=512)
        reg.create_group("ops", {"bob", "carol"}, key_bits=512)
        return reg

    @pytest.fixture
    def multi_volume(self, multi_registry):
        server = StorageServer()
        volume = SharoesVolume(server, multi_registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(multi_registry, server,
                        CryptoProvider()).publish_all()
        return volume

    def test_user_in_two_groups(self, multi_volume, multi_registry):
        """bob is in eng and ops; he reads group files of both."""
        alice = SharoesFilesystem(multi_volume,
                                  multi_registry.user("alice"))
        alice.mount()
        alice.create_file("/eng.txt", b"eng", mode=0o640, group="eng")
        alice.create_file("/ops.txt", b"ops", mode=0o640, group="ops")
        bob = SharoesFilesystem(multi_volume, multi_registry.user("bob"))
        bob.mount()
        assert bob.agent.principal_ids() == ["bob", "eng", "ops"]
        assert bob.read_file("/eng.txt") == b"eng"
        assert bob.read_file("/ops.txt") == b"ops"

    def test_single_group_user_partitioned(self, multi_volume,
                                           multi_registry):
        from repro.errors import PermissionDenied
        alice = SharoesFilesystem(multi_volume,
                                  multi_registry.user("alice"))
        alice.mount()
        alice.create_file("/ops.txt", b"ops", mode=0o640, group="ops")
        alice2 = SharoesFilesystem(multi_volume,
                                   multi_registry.user("alice"))
        alice2.mount()
        # alice owns it, so she reads it regardless of group.
        assert alice2.read_file("/ops.txt") == b"ops"
        carol = SharoesFilesystem(multi_volume,
                                  multi_registry.user("carol"))
        carol.mount()
        assert carol.read_file("/ops.txt") == b"ops"  # carol in ops
        dave = SharoesFilesystem(multi_volume, multi_registry.user("dave"))
        dave.mount()
        with pytest.raises(PermissionDenied):
            dave.read_file("/ops.txt")


class TestUnicodeAndOddNames:
    def test_unicode_filenames(self, alice_fs):
        alice_fs.create_file("/ファイル名.txt", b"unicode", mode=0o600)
        assert alice_fs.read_file("/ファイル名.txt") == b"unicode"
        assert "ファイル名.txt" in alice_fs.readdir("/")

    def test_unicode_in_exec_only_lookup(self, alice_fs, carol_fs):
        alice_fs.mkdir("/drop", mode=0o711)
        alice_fs.create_file("/drop/tâche-№42", b"exact", mode=0o644)
        assert carol_fs.read_file("/drop/tâche-№42") == b"exact"

    def test_long_names(self, alice_fs):
        name = "n" * 200
        alice_fs.create_file(f"/{name}", b"long", mode=0o600)
        assert alice_fs.read_file(f"/{name}") == b"long"

    def test_names_differing_only_by_case(self, alice_fs):
        alice_fs.create_file("/File", b"upper", mode=0o600)
        alice_fs.create_file("/file", b"lower", mode=0o600)
        assert alice_fs.read_file("/File") == b"upper"
        assert alice_fs.read_file("/file") == b"lower"
