"""Property-based tests on the core data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caps.model import VIEW_FULL, VIEW_HIDDEN, VIEW_NAMES
from repro.crypto.keys import new_symmetric_key
from repro.crypto.provider import CryptoProvider
from repro.errors import FileNotFound
from repro.fs.dirtable import DIRECT, DirEntry, DirPointer, TableView

provider = CryptoProvider()

names = st.text(
    alphabet=st.characters(blacklist_characters="/\x00",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=24)


def _entry(name: str, inode: int) -> DirEntry:
    return DirEntry(name=name, inode=inode, kind=DIRECT,
                    pointer=DirPointer(selector="o",
                                       mek=bytes([inode % 256]) * 16,
                                       mvk=b"v" * 12))


class TestTableViewProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=0,
                           max_size=15))
    def test_full_view_roundtrip(self, mapping):
        entries = [_entry(n, i) for n, i in mapping.items()]
        view = TableView.from_bytes(
            TableView.build(VIEW_FULL, entries).to_bytes())
        assert view.list_names() == sorted(mapping)
        for name, inode in mapping.items():
            assert view.lookup(name).inode == inode

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=1,
                           max_size=10))
    def test_hidden_view_finds_every_member(self, mapping):
        dek = new_symmetric_key()
        entries = [_entry(n, i) for n, i in mapping.items()]
        view = TableView.from_bytes(
            TableView.build(VIEW_HIDDEN, entries, provider=provider,
                            table_dek=dek).to_bytes())
        for name, inode in mapping.items():
            found = view.lookup(name, provider=provider, table_dek=dek)
            assert found.inode == inode
            assert found.pointer.mek == bytes([inode % 256]) * 16

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=1,
                           max_size=8),
           names)
    def test_hidden_view_rejects_non_members(self, mapping, probe):
        dek = new_symmetric_key()
        entries = [_entry(n, i) for n, i in mapping.items()]
        view = TableView.build(VIEW_HIDDEN, entries, provider=provider,
                               table_dek=dek)
        if probe in mapping:
            return  # only probing absence here
        with pytest.raises(FileNotFound):
            view.lookup(probe, provider=provider, table_dek=dek)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=0,
                           max_size=10))
    def test_names_view_never_leaks_pointers(self, mapping):
        entries = [_entry(n, i) for n, i in mapping.items()]
        raw = TableView.build(VIEW_NAMES, entries).to_bytes()
        for _, inode in mapping.items():
            assert bytes([inode % 256]) * 16 not in raw  # MEK absent

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=2,
                           max_size=10))
    def test_add_remove_consistency(self, mapping):
        items = sorted(mapping.items())
        victim_name, _ = items[0]
        entries = [_entry(n, i) for n, i in items]
        view = TableView.build(VIEW_FULL, entries)
        view.remove(victim_name)
        assert victim_name not in view
        assert view.entry_count() == len(items) - 1
        view.add(_entry(victim_name, 9999))
        assert view.lookup(victim_name).inode == 9999

    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(names, st.integers(2, 10_000), min_size=1,
                           max_size=8))
    def test_serialization_is_canonical(self, mapping):
        """Same entries -> byte-identical encodings (ordering fixed)."""
        entries = [_entry(n, i) for n, i in sorted(mapping.items())]
        shuffled = list(reversed(entries))
        a = TableView.build(VIEW_FULL, entries).to_bytes()
        b = TableView.build(VIEW_FULL, shuffled).to_bytes()
        assert a == b


class TestSealedProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=1500))
    def test_seal_open_identity(self, payload):
        from repro.crypto.keys import new_signature_pair
        from repro.fs.sealed import (bind_context, open_verified,
                                     seal_and_sign)
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        ctx = bind_context("data", 1, "b0")
        blob = seal_and_sign(provider, key, pair.signing, ctx, payload)
        assert open_verified(provider, key, pair.verification, ctx,
                             blob) == payload

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=1, max_size=400),
           st.integers(min_value=0, max_value=3199))
    def test_any_single_bitflip_detected(self, payload, bit):
        from repro.crypto.keys import new_signature_pair
        from repro.errors import CryptoError, IntegrityError
        from repro.fs.sealed import (bind_context, open_verified,
                                     seal_and_sign)
        pair = new_signature_pair(64)
        key = new_symmetric_key()
        ctx = bind_context("data", 1, "b0")
        blob = bytearray(seal_and_sign(provider, key, pair.signing, ctx,
                                       payload))
        index = bit % (len(blob) * 8)
        blob[index // 8] ^= 1 << (index % 8)
        with pytest.raises((IntegrityError, CryptoError)):
            open_verified(provider, key, pair.verification, ctx,
                          bytes(blob))


class TestFreshnessProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1,
                    max_size=30))
    def test_any_nondecreasing_sequence_accepted(self, versions):
        from repro.fs.freshness import FreshnessMonitor
        monitor = FreshnessMonitor()
        for version in sorted(versions):
            monitor.observe_metadata(1, version, b"v%d" % version)
        assert monitor.high_watermark(1) == max(versions)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=2,
                    max_size=30, unique=True))
    def test_any_regression_rejected(self, versions):
        from repro.fs.freshness import FreshnessMonitor, StaleObjectError
        monitor = FreshnessMonitor()
        ordered = sorted(versions)
        monitor.observe_metadata(1, ordered[-1], b"newest")
        with pytest.raises(StaleObjectError):
            monitor.observe_metadata(1, ordered[0], b"older")
