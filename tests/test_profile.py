"""Profile export: folded stacks, speedscope validity, attribution."""

import json

import pytest

from repro.obs.profile import (SPEEDSCOPE_SCHEMA, folded_stacks,
                               format_resolve_table,
                               format_self_time_table, frame_label,
                               load_spans_jsonl, resolve_attribution,
                               self_time_report, speedscope_document)
from repro.obs.tracing import Tracer


def _sample_roots():
    """Two client roots with nested children and explicit durations."""
    tracer = Tracer()
    clock = tracer.clock
    with tracer.span("read_file"):
        with tracer.span("resolve"):
            with tracer.span("walk", depth=0, cache="hit"):
                clock.advance(0.001)
            with tracer.span("walk", depth=1, cache="miss"):
                with tracer.span("network", op="get"):
                    clock.advance(0.004)
        with tracer.span("network", op="get"):
            clock.advance(0.010)
    with tracer.span("write_file"):
        with tracer.span("network", op="put"):
            clock.advance(0.020)
        clock.advance(0.002)
    return list(tracer.finished)


class TestFrameLabels:
    def test_walk_carries_depth_and_verdict(self):
        assert frame_label({"name": "walk",
                            "attrs": {"depth": 2, "cache": "miss"}}) \
            == "walk[2]:miss"

    def test_op_suffix(self):
        assert frame_label({"name": "network",
                            "attrs": {"op": "get"}}) == "network:get"

    def test_service_prefix(self):
        assert frame_label({"name": "server.get",
                            "attrs": {"service": "ssp", "op": "get"}}) \
            == "ssp::server.get"


class TestFoldedStacks:
    def test_lines_are_stack_value_pairs(self):
        text = folded_stacks(_sample_roots())
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert stack

    def test_self_times_sum_to_wall(self):
        roots = _sample_roots()
        total_us = sum(int(line.rsplit(" ", 1)[1]) for line in
                       folded_stacks(roots).strip().splitlines())
        wall_us = sum(span.duration for span in roots) * 1e6
        assert total_us == pytest.approx(wall_us, rel=1e-6)

    def test_nested_frames_join_with_semicolon(self):
        text = folded_stacks(_sample_roots())
        assert "read_file;resolve;walk[1]:miss;network:get" in text


class TestSpeedscope:
    def test_document_is_valid_speedscope(self):
        doc = speedscope_document(_sample_roots())
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["profiles"][0]["type"] == "evented"
        frames = doc["shared"]["frames"]
        assert all("name" in f for f in frames)
        events = doc["profiles"][0]["events"]
        # Balanced open/close with valid frame refs.
        stack = []
        for event in events:
            assert 0 <= event["frame"] < len(frames)
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert stack == []

    def test_event_times_nondecreasing_within_bounds(self):
        profile = speedscope_document(_sample_roots())["profiles"][0]
        last = profile["startValue"]
        for event in profile["events"]:
            assert event["at"] >= last
            last = event["at"]
        assert last <= profile["endValue"] + 1e-9

    def test_json_serializable(self):
        text = json.dumps(speedscope_document(_sample_roots()))
        assert json.loads(text)["activeProfileIndex"] == 0


class TestSelfTime:
    def test_top_rows_sorted_by_self_time(self):
        report = self_time_report(_sample_roots())
        selfs = [row["self_s"] for row in report]
        assert selfs == sorted(selfs, reverse=True)

    def test_shares_sum_to_one(self):
        report = self_time_report(_sample_roots(), top=100)
        assert sum(row["share"] for row in report) == pytest.approx(
            1.0, abs=1e-4)

    def test_table_renders(self):
        table = format_self_time_table(self_time_report(_sample_roots()))
        assert "network:put" in table


class TestResolveAttribution:
    def test_counts_and_seconds_per_depth(self):
        report = resolve_attribution(_sample_roots())
        assert report["depths"]["0"]["hits"] == 1
        assert report["depths"]["1"]["misses"] == 1
        assert report["depths"]["1"]["seconds"] == pytest.approx(0.004)
        assert report["totals"]["walks"] == 2
        assert report["totals"]["miss_rate"] == pytest.approx(0.5)

    def test_table_renders(self):
        table = format_resolve_table(
            resolve_attribution(_sample_roots()))
        assert "TOTAL" in table


class TestJsonlRoundtrip:
    def test_profiles_survive_jsonl_roundtrip(self, tmp_path):
        from repro.obs.export import spans_to_jsonl
        roots = _sample_roots()
        path = tmp_path / "spans.jsonl"
        path.write_text(spans_to_jsonl(roots) + "\n")
        loaded = load_spans_jsonl(path)
        assert folded_stacks(loaded) == folded_stacks(roots)
        assert (speedscope_document(loaded)["profiles"][0]["events"]
                == speedscope_document(roots)["profiles"][0]["events"])


class TestTracedAndrewProfile:
    @pytest.fixture(scope="class")
    def roots(self):
        from repro.workloads.runner import run_traced
        _payload, roots, _orphans, _env = run_traced(
            "andrew", params={})
        return roots

    def test_stitched_tree_renders_all_formats(self, roots):
        assert "ssp::server." in folded_stacks(roots)
        doc = speedscope_document(roots)
        assert doc["profiles"][0]["events"]
        report = resolve_attribution(roots)
        assert report["totals"]["walks"] > 0

    def test_speedscope_valid_on_real_run(self, roots):
        profile = speedscope_document(roots)["profiles"][0]
        stack = []
        last = 0.0
        for event in profile["events"]:
            assert event["at"] >= last - 1e-9
            last = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert stack.pop() == event["frame"]
        assert stack == []
