"""CryptoProvider accounting, SimClock, NetworkLink, CostModel, profiles."""

import math

import pytest

from repro.crypto import esign, rsa
from repro.crypto.provider import AesEngine, CryptoProvider, StreamEngine
from repro.errors import CryptoError, IntegrityError
from repro.sim.clock import SimClock
from repro.sim.costmodel import (COMPUTE, CRYPTO, NETWORK, OTHER,
                                 CostBreakdown, CostModel)
from repro.sim.network import LAN, PAPER_DSL, NetworkLink, kbits_per_sec
from repro.sim.profiles import FREE, PAPER_2008, PAPER_2008_LAN, dsl_profile


@pytest.fixture(scope="module")
def rsa_pair():
    return rsa.generate_keypair(512)


@pytest.fixture(scope="module")
def esign_pair():
    return esign.generate_keypair(prime_bits=96)


class TestProvider:
    def test_engines_interoperate_with_themselves(self):
        for engine in ("stream", "aes"):
            p = CryptoProvider(engine)
            key = b"k" * 16
            sealed = p.sym_encrypt(key, b"payload")
            assert p.sym_decrypt(key, sealed) == b"payload"

    def test_aes_engine_detects_tamper(self):
        p = CryptoProvider("aes")
        sealed = bytearray(p.sym_encrypt(b"k" * 16, b"payload"))
        sealed[10] ^= 1
        with pytest.raises(IntegrityError):
            p.sym_decrypt(b"k" * 16, bytes(sealed))

    def test_unknown_engine_rejected(self):
        with pytest.raises(CryptoError):
            CryptoProvider("rot13")

    def test_counters(self, rsa_pair, esign_pair):
        p = CryptoProvider()
        p.sym_encrypt(b"k" * 16, b"x" * 100)
        p.sym_decrypt(b"k" * 16, p.sym_encrypt(b"k" * 16, b"y"))
        blob = p.pk_encrypt(rsa_pair.public, b"z" * 300)
        p.pk_decrypt(rsa_pair.private, blob)
        sig = p.sign(esign_pair.signing, b"m")
        p.verify(esign_pair.verification, b"m", sig)
        p.derive_row_key(b"k" * 16, "name")
        c = p.counters
        assert c.total("sym_encrypt") == 2
        assert c.total("sym_decrypt") == 1
        assert c.total("pk_encrypt") == 1
        assert c.total("pk_decrypt") == 1
        assert c.total("sign") == 1
        assert c.total("verify") == 1
        assert c.total("keyed_hash") == 1

    def test_pk_blocks_are_nominal_2048(self, rsa_pair):
        p = CryptoProvider()
        p.pk_encrypt(rsa_pair.public, b"x" * 4096)
        assert p.counters.pk_blocks["pk_encrypt"] == 17

    def test_rsa_signature_dispatch(self, rsa_pair):
        p = CryptoProvider()
        sig = p.sign(rsa_pair.private, b"m")
        p.verify(rsa_pair.public, b"m", sig)
        assert p.counters.total("sign_rsa") == 1
        assert p.counters.total("verify_rsa") == 1

    def test_sign_wrong_key_type(self):
        with pytest.raises(CryptoError):
            CryptoProvider().sign(b"not a key", b"m")

    def test_listener_receives_events(self):
        events = []
        p = CryptoProvider(listener=events.append)
        p.sym_encrypt(b"k" * 16, b"data")
        assert len(events) == 1
        assert events[0].kind == "sym_encrypt"
        assert events[0].num_bytes == 4

    def test_counters_reset(self):
        p = CryptoProvider()
        p.sym_encrypt(b"k" * 16, b"x")
        p.counters.reset()
        assert p.counters.total("sym_encrypt") == 0


class TestClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock(10.0)
        clock.advance(5)
        clock.reset()
        assert clock.now == 0.0


class TestNetwork:
    def test_kbits_conversion(self):
        assert kbits_per_sec(8) == 1000.0

    def test_paper_dsl_rates(self):
        assert PAPER_DSL.upload_bytes_per_s == 850 * 125
        assert PAPER_DSL.download_bytes_per_s == 350 * 125

    def test_request_time_composition(self):
        link = NetworkLink(upload_bytes_per_s=1000,
                           download_bytes_per_s=500, rtt_s=0.1)
        t = link.request_time(1000, 500)
        assert math.isclose(t, 0.1 + 1.0 + 1.0)

    def test_multiple_round_trips(self):
        link = NetworkLink(1000, 1000, 0.1)
        assert math.isclose(link.request_time(0, 0, round_trips=3), 0.3)

    def test_asymmetry_matters(self):
        # 1 MB down takes much longer than 1 MB up on the paper's DSL.
        up = PAPER_DSL.upload_time(1_000_000)
        down = PAPER_DSL.download_time(1_000_000)
        assert down > 2 * up


class TestCostModel:
    def test_categories_accumulate(self):
        model = CostModel(FREE)
        model.charge(NETWORK, 1.0)
        model.charge(CRYPTO, 0.5)
        model.charge(OTHER, 0.25)
        model.charge_compute(2.0)
        assert model.totals.network == 1.0
        assert model.totals.crypto == 0.5
        assert model.totals.other == 0.25
        assert model.totals.compute == 2.0
        assert model.totals.total == 3.75
        assert model.clock.now == 3.75

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CostModel(FREE).charge("quantum", 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel(FREE).charge(NETWORK, -1.0)

    def test_span_captures_nested(self):
        model = CostModel(FREE)
        model.charge(NETWORK, 1.0)
        with model.span() as outer:
            model.charge(NETWORK, 2.0)
            with model.span() as inner:
                model.charge(CRYPTO, 0.5)
        assert outer.network == 2.0
        assert outer.crypto == 0.5
        assert inner.crypto == 0.5
        assert inner.network == 0.0
        assert model.totals.network == 3.0

    def test_crypto_event_charging(self):
        model = CostModel(PAPER_2008)
        provider = CryptoProvider(listener=model.on_crypto_event)
        provider.sym_encrypt(b"k" * 16, b"x" * 1000)
        expected = (PAPER_2008.sym_fixed_s
                    + 1000 * PAPER_2008.sym_per_byte_s)
        assert math.isclose(model.totals.crypto, expected)

    def test_private_vs_public_block_asymmetry(self):
        # The core economics of the paper: private >> public >> symmetric.
        assert PAPER_2008.pk_private_block_s > 10 * PAPER_2008.pk_public_block_s
        assert PAPER_2008.pk_public_block_s > PAPER_2008.sym_fixed_s

    def test_esign_much_faster_than_rsa_private(self):
        # Footnote 3: over an order of magnitude faster.
        assert PAPER_2008.pk_private_block_s > 10 * PAPER_2008.esign_sign_s

    def test_free_profile_is_free(self):
        model = CostModel(FREE)
        model.charge_request(10_000, 10_000)
        model.charge_other()
        assert model.totals.total == 0.0

    def test_reset(self):
        model = CostModel(PAPER_2008)
        model.charge_request(1000, 1000)
        model.reset()
        assert model.totals.total == 0.0
        assert model.clock.now == 0.0

    def test_breakdown_repr(self):
        b = CostBreakdown()
        b.add(NETWORK, 1.0)
        assert "network=1.000" in repr(b)


class TestProfiles:
    def test_lan_profile_same_crypto(self):
        assert PAPER_2008_LAN.sym_fixed_s == PAPER_2008.sym_fixed_s
        assert PAPER_2008_LAN.link is LAN

    def test_dsl_profile_factory(self):
        profile = dsl_profile(1000, 500, 50)
        assert profile.link.rtt_s == 0.05
        assert profile.link.upload_bytes_per_s == kbits_per_sec(1000)
        assert profile.pk_private_block_s == PAPER_2008.pk_private_block_s

    def test_unknown_event_kind_rejected(self):
        from repro.crypto.provider import CryptoEvent
        with pytest.raises(ValueError):
            PAPER_2008.crypto_time(CryptoEvent("teleport", 1))
