"""Fuzzing the SSP wire protocol (robustness satellite).

The TCP front-end (:mod:`repro.storage.wire`) faces the network: any
byte sequence can arrive.  These tests throw malformed framing at a live
:class:`SspServer` -- truncated headers, empty frames, oversized length
prefixes, unknown opcodes, mid-message disconnects, and seeded random
garbage -- and assert the invariant that matters: the server keeps
serving well-formed clients afterwards.  The client proxy is exercised
the other way around: timeouts and dead sockets must surface as
:class:`TransientStorageError` (so the resilient transport can retry),
never as a crash or a hung filesystem.
"""

from __future__ import annotations

import random
import socket
import struct

import pytest

from repro.errors import StorageError, TransientStorageError
from repro.storage.blobs import data_blob
from repro.storage.resilient import ResilientTransport, RetryPolicy
from repro.storage.server import StorageServer
from repro.storage.wire import (OP_GET, OP_PUT, STATUS_ERROR, STATUS_OK,
                                RemoteStorageClient, SspServer,
                                _pack_fields, _recv_message)

BLOB = data_blob(7, "b0")
PAYLOAD = b"sealed ciphertext bytes"


@pytest.fixture()
def live_server():
    backend = StorageServer()
    backend.put(BLOB, PAYLOAD)
    with SspServer(backend) as ssp:
        yield ssp


def _frame(body: bytes) -> bytes:
    return struct.pack(">I", len(body)) + body


def _exchange(address, data: bytes, expect_reply: bool = True):
    """Send raw bytes on a fresh connection; return the reply or None."""
    with socket.create_connection(address, timeout=2.0) as sock:
        sock.sendall(data)
        if not expect_reply:
            return None
        return _recv_message(sock)


def _server_still_serves(ssp: SspServer) -> bool:
    """The canary: a well-formed GET on a fresh connection round-trips."""
    body = bytes([OP_GET]) + _pack_fields(str(BLOB).encode())
    reply = _exchange(ssp.address, _frame(body))
    return reply[0] == STATUS_OK and reply[1:] == PAYLOAD


class TestServerSurvivesMalformedFrames:
    def test_empty_frame_gets_error_not_handler_death(self, live_server):
        # A length-0 frame has no opcode byte; the original handler did
        # message[0] before its try block and the thread died on
        # IndexError.  Now it must answer ERROR and keep the connection.
        with socket.create_connection(live_server.address, 2.0) as sock:
            sock.sendall(_frame(b""))
            reply = _recv_message(sock)
            assert reply[0] == STATUS_ERROR
            # Same connection still works after the bad frame.
            body = bytes([OP_GET]) + _pack_fields(str(BLOB).encode())
            sock.sendall(_frame(body))
            reply = _recv_message(sock)
            assert reply[0] == STATUS_OK and reply[1:] == PAYLOAD

    def test_unknown_opcode(self, live_server):
        reply = _exchange(live_server.address, _frame(bytes([250])))
        assert reply[0] == STATUS_ERROR
        assert b"unknown opcode" in reply[1:]
        assert _server_still_serves(live_server)

    def test_truncated_length_header(self, live_server):
        _exchange(live_server.address, b"\x00\x00", expect_reply=False)
        assert _server_still_serves(live_server)

    def test_oversized_length_prefix(self, live_server):
        # Claims a 1 GiB message: the server must refuse (it cannot
        # resync, so dropping the connection is the correct move) and
        # other connections must be unaffected.
        _exchange(live_server.address,
                  struct.pack(">I", 1 << 30) + b"garbage",
                  expect_reply=False)
        assert _server_still_serves(live_server)

    def test_mid_message_disconnect(self, live_server):
        # Header promises 1000 body bytes, connection dies after 10.
        with socket.create_connection(live_server.address, 2.0) as sock:
            sock.sendall(struct.pack(">I", 1000) + b"x" * 10)
        assert _server_still_serves(live_server)

    def test_truncated_field_inside_body(self, live_server):
        # Valid opcode, but the field declares more bytes than follow.
        body = bytes([OP_GET]) + struct.pack(">I", 500) + b"short"
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_malformed_blob_id(self, live_server):
        body = bytes([OP_GET]) + _pack_fields(b"\xff\xfe not/an-int/x")
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_put_with_missing_field(self, live_server):
        # PUT wants two fields; send one.
        body = bytes([OP_PUT]) + _pack_fields(str(BLOB).encode())
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_seeded_random_garbage_storm(self, live_server):
        rng = random.Random(0xF00D)
        for _ in range(80):
            body = rng.randbytes(rng.randrange(0, 64))
            data = _frame(body)
            if rng.random() < 0.3:  # randomly truncate the frame too
                data = data[:rng.randrange(len(data) + 1)]
            try:
                _exchange(live_server.address, data,
                          expect_reply=bool(data) and rng.random() < 0.5)
            except (StorageError, OSError):
                pass  # replies to garbage may be anything; crashes not
        assert _server_still_serves(live_server)


class TestClientTransientFaults:
    def test_timeout_is_transient_error(self):
        # A server that accepts but never replies: the proxy must raise
        # the retryable error, not hang or crash (regression for the
        # socket-timeout crash).
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            client = RemoteStorageClient(*listener.getsockname(),
                                         timeout=0.2)
            with pytest.raises(TransientStorageError):
                client.get(BLOB)
            client.close()

    def test_dead_socket_is_transient_and_reconnects(self, live_server):
        client = RemoteStorageClient(*live_server.address, timeout=2.0)
        assert client.get(BLOB) == PAYLOAD
        client._sock.close()  # the OS yanks the connection
        with pytest.raises(TransientStorageError):
            client.get(BLOB)
        # Lazy reconnect: the very next call opens a new socket.
        assert client.get(BLOB) == PAYLOAD
        client.close()

    def test_resilient_transport_rides_over_reconnect(self, live_server):
        # Composed stack: transport + remote proxy.  A dead socket costs
        # one retry, not an exception to the filesystem above.
        client = RemoteStorageClient(*live_server.address, timeout=2.0)
        transport = ResilientTransport(
            client, RetryPolicy(base_delay_s=0.0, jitter=False))
        client._sock.close()
        assert transport.get(BLOB) == PAYLOAD
        assert transport.retries == 1
        client.close()

    def test_server_restart_window(self):
        # Outage: server goes away entirely, comes back on the same
        # port; the proxy reconnects instead of staying wedged.
        backend = StorageServer()
        backend.put(BLOB, PAYLOAD)
        ssp = SspServer(backend).start()
        host, port = ssp.address
        client = RemoteStorageClient(host, port, timeout=2.0)
        assert client.get(BLOB) == PAYLOAD
        ssp.stop()
        client._sock.close()  # connection torn down with the server
        with pytest.raises(TransientStorageError):
            client.get(BLOB)  # dead socket
        with pytest.raises(TransientStorageError):
            client.get(BLOB)  # reconnect refused: port is closed
        ssp2 = SspServer(backend, host=host, port=port).start()
        try:
            assert client.get(BLOB) == PAYLOAD
        finally:
            client.close()
            ssp2.stop()
