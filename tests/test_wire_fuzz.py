"""Fuzzing the SSP wire protocol (robustness satellite).

The TCP front-end (:mod:`repro.storage.wire`) faces the network: any
byte sequence can arrive.  These tests throw malformed framing at a live
:class:`SspServer` -- truncated headers, empty frames, oversized length
prefixes, unknown opcodes, mid-message disconnects, and seeded random
garbage -- and assert the invariant that matters: the server keeps
serving well-formed clients afterwards.  The client proxy is exercised
the other way around: timeouts and dead sockets must surface as
:class:`TransientStorageError` (so the resilient transport can retry),
never as a crash or a hung filesystem.
"""

from __future__ import annotations

import random
import socket
import struct

import pytest

from repro.errors import StorageError, TransientStorageError
from repro.storage.blobs import data_blob
from repro.storage.resilient import ResilientTransport, RetryPolicy
from repro.storage.server import BatchOp, StorageServer
from repro.storage.wire import (MAX_BATCH_OPS, OP_BATCH, OP_GET, OP_PUT,
                                STATUS_ERROR, STATUS_OK,
                                RemoteStorageClient, SspServer,
                                _decode_batch_reply, _pack_fields,
                                _recv_message)

BLOB = data_blob(7, "b0")
PAYLOAD = b"sealed ciphertext bytes"


@pytest.fixture()
def live_server():
    backend = StorageServer()
    backend.put(BLOB, PAYLOAD)
    with SspServer(backend) as ssp:
        yield ssp


def _frame(body: bytes) -> bytes:
    return struct.pack(">I", len(body)) + body


def _exchange(address, data: bytes, expect_reply: bool = True):
    """Send raw bytes on a fresh connection; return the reply or None."""
    with socket.create_connection(address, timeout=2.0) as sock:
        sock.sendall(data)
        if not expect_reply:
            return None
        return _recv_message(sock)


def _server_still_serves(ssp: SspServer) -> bool:
    """The canary: a well-formed GET on a fresh connection round-trips."""
    body = bytes([OP_GET]) + _pack_fields(str(BLOB).encode())
    reply = _exchange(ssp.address, _frame(body))
    return reply[0] == STATUS_OK and reply[1:] == PAYLOAD


class TestServerSurvivesMalformedFrames:
    def test_empty_frame_gets_error_not_handler_death(self, live_server):
        # A length-0 frame has no opcode byte; the original handler did
        # message[0] before its try block and the thread died on
        # IndexError.  Now it must answer ERROR and keep the connection.
        with socket.create_connection(live_server.address, 2.0) as sock:
            sock.sendall(_frame(b""))
            reply = _recv_message(sock)
            assert reply[0] == STATUS_ERROR
            # Same connection still works after the bad frame.
            body = bytes([OP_GET]) + _pack_fields(str(BLOB).encode())
            sock.sendall(_frame(body))
            reply = _recv_message(sock)
            assert reply[0] == STATUS_OK and reply[1:] == PAYLOAD

    def test_unknown_opcode(self, live_server):
        reply = _exchange(live_server.address, _frame(bytes([250])))
        assert reply[0] == STATUS_ERROR
        assert b"unknown opcode" in reply[1:]
        assert _server_still_serves(live_server)

    def test_truncated_length_header(self, live_server):
        _exchange(live_server.address, b"\x00\x00", expect_reply=False)
        assert _server_still_serves(live_server)

    def test_oversized_length_prefix(self, live_server):
        # Claims a 1 GiB message: the server must refuse (it cannot
        # resync, so dropping the connection is the correct move) and
        # other connections must be unaffected.
        _exchange(live_server.address,
                  struct.pack(">I", 1 << 30) + b"garbage",
                  expect_reply=False)
        assert _server_still_serves(live_server)

    def test_mid_message_disconnect(self, live_server):
        # Header promises 1000 body bytes, connection dies after 10.
        with socket.create_connection(live_server.address, 2.0) as sock:
            sock.sendall(struct.pack(">I", 1000) + b"x" * 10)
        assert _server_still_serves(live_server)

    def test_truncated_field_inside_body(self, live_server):
        # Valid opcode, but the field declares more bytes than follow.
        body = bytes([OP_GET]) + struct.pack(">I", 500) + b"short"
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_malformed_blob_id(self, live_server):
        body = bytes([OP_GET]) + _pack_fields(b"\xff\xfe not/an-int/x")
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_put_with_missing_field(self, live_server):
        # PUT wants two fields; send one.
        body = bytes([OP_PUT]) + _pack_fields(str(BLOB).encode())
        reply = _exchange(live_server.address, _frame(body))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_seeded_random_garbage_storm(self, live_server):
        rng = random.Random(0xF00D)
        for _ in range(80):
            body = rng.randbytes(rng.randrange(0, 64))
            data = _frame(body)
            if rng.random() < 0.3:  # randomly truncate the frame too
                data = data[:rng.randrange(len(data) + 1)]
            try:
                _exchange(live_server.address, data,
                          expect_reply=bool(data) and rng.random() < 0.5)
            except (StorageError, OSError):
                pass  # replies to garbage may be anything; crashes not
        assert _server_still_serves(live_server)


def _sub_op(opcode: int, body: bytes) -> bytes:
    """One encoded batch sub-op: opcode byte, length, body."""
    return bytes([opcode]) + struct.pack(">I", len(body)) + body


def _batch_frame(count: int, subs: bytes) -> bytes:
    return _frame(bytes([OP_BATCH]) + struct.pack(">I", count) + subs)


def _put_sub(blob_id, payload: bytes) -> bytes:
    return _sub_op(OP_PUT, _pack_fields(str(blob_id).encode(), payload))


class TestBatchFrameFuzz:
    """Malformed OP_BATCH frames: clean error, never crash, and --
    the invariant that matters for a multi-op frame -- never a silent
    half-apply: a frame that fails validation applies zero sub-ops."""

    def test_zero_count(self, live_server):
        reply = _exchange(live_server.address, _batch_frame(0, b""))
        assert reply[0] == STATUS_ERROR
        assert b"zero sub-ops" in reply[1:]
        assert _server_still_serves(live_server)

    def test_oversize_count(self, live_server):
        reply = _exchange(live_server.address,
                          _batch_frame(MAX_BATCH_OPS + 1, b""))
        assert reply[0] == STATUS_ERROR
        assert b"exceeds limit" in reply[1:]
        assert _server_still_serves(live_server)

    def test_count_promises_more_subops_than_sent(self, live_server):
        victim = data_blob(7, "half-apply-1")
        subs = _put_sub(victim, b"should never land")
        reply = _exchange(live_server.address, _batch_frame(3, subs))
        assert reply[0] == STATUS_ERROR
        # The valid first sub-op must NOT have been applied.
        assert not live_server.backend.exists(victim)
        assert _server_still_serves(live_server)

    def test_truncated_sub_op_body_rejects_whole_frame(self, live_server):
        victim = data_blob(7, "half-apply-2")
        good = _put_sub(victim, b"should never land")
        # Second sub-op header claims 500 body bytes, sends 5.
        bad = bytes([OP_PUT]) + struct.pack(">I", 500) + b"short"
        reply = _exchange(live_server.address,
                          _batch_frame(2, good + bad))
        assert reply[0] == STATUS_ERROR
        assert b"truncated" in reply[1:]
        assert not live_server.backend.exists(victim)
        assert _server_still_serves(live_server)

    def test_unknown_sub_opcode(self, live_server):
        victim = data_blob(7, "half-apply-3")
        subs = _put_sub(victim, b"x") + _sub_op(250, b"mystery")
        reply = _exchange(live_server.address, _batch_frame(2, subs))
        assert reply[0] == STATUS_ERROR
        assert b"unknown batch sub-opcode" in reply[1:]
        assert not live_server.backend.exists(victim)
        assert _server_still_serves(live_server)

    def test_nested_batch_is_rejected(self, live_server):
        # A batch inside a batch would defeat the op cap; the sub-op
        # decoder treats OP_BATCH as just another unknown sub-opcode.
        subs = _sub_op(OP_BATCH, struct.pack(">I", 1))
        reply = _exchange(live_server.address, _batch_frame(1, subs))
        assert reply[0] == STATUS_ERROR
        assert _server_still_serves(live_server)

    def test_trailing_garbage_rejects_whole_frame(self, live_server):
        victim = data_blob(7, "half-apply-4")
        subs = _put_sub(victim, b"x") + b"\xde\xad\xbe\xef"
        reply = _exchange(live_server.address, _batch_frame(1, subs))
        assert reply[0] == STATUS_ERROR
        assert b"trailing garbage" in reply[1:]
        assert not live_server.backend.exists(victim)
        assert _server_still_serves(live_server)

    def test_malformed_blob_id_inside_sub_op(self, live_server):
        victim = data_blob(7, "half-apply-5")
        bad = _sub_op(OP_GET, _pack_fields(b"not/a\xffblob"))
        subs = _put_sub(victim, b"x") + bad
        reply = _exchange(live_server.address, _batch_frame(2, subs))
        assert reply[0] == STATUS_ERROR
        assert not live_server.backend.exists(victim)
        assert _server_still_serves(live_server)

    def test_mixed_status_replies_round_trip(self, live_server):
        # Well-formed frame whose sub-ops answer differently: hit,
        # miss, and a write -- one frame, three statuses.
        client = RemoteStorageClient(*live_server.address, timeout=2.0)
        try:
            fresh = data_blob(7, "batch-new")
            replies = client.batch([
                BatchOp.get(BLOB),
                BatchOp.get(data_blob(7, "nope")),
                BatchOp.put(fresh, b"landed"),
            ])
            assert [r.status for r in replies] == ["ok", "missing", "ok"]
            assert replies[0].payload == PAYLOAD
            assert live_server.backend.get(fresh) == b"landed"
        finally:
            client.close()

    def test_seeded_garbage_batch_storm(self, live_server):
        rng = random.Random(0xBA7C)
        before = dict(live_server.backend.raw_blobs())
        for _ in range(60):
            body = bytes([OP_BATCH]) + rng.randbytes(rng.randrange(0, 96))
            try:
                reply = _exchange(live_server.address, _frame(body))
            except (StorageError, OSError):
                continue
            # Random bytes never parse into a full valid frame here;
            # the server must answer a clean error every time.
            assert reply[0] == STATUS_ERROR
        assert live_server.backend.raw_blobs() == before
        assert _server_still_serves(live_server)


class TestBatchReplyDecode:
    """Client-side strictness: a malicious/buggy SSP reply must raise
    a clean StorageError, never crash or mis-map sub-replies."""

    def _reply(self, count: int, subs: bytes) -> bytes:
        return struct.pack(">I", count) + subs

    def _sub_reply(self, code: int, payload: bytes) -> bytes:
        return bytes([code]) + struct.pack(">I", len(payload)) + payload

    def test_count_mismatch(self):
        raw = self._reply(2, self._sub_reply(STATUS_OK, b""))
        with pytest.raises(StorageError, match="count"):
            _decode_batch_reply(raw, expected=1)

    def test_missing_count(self):
        with pytest.raises(StorageError, match="missing count"):
            _decode_batch_reply(b"\x00\x00", expected=1)

    def test_unknown_sub_status(self):
        raw = self._reply(1, self._sub_reply(99, b""))
        with pytest.raises(StorageError, match="unknown batch sub-status"):
            _decode_batch_reply(raw, expected=1)

    def test_truncated_sub_reply_payload(self):
        raw = self._reply(1, bytes([STATUS_OK])
                          + struct.pack(">I", 500) + b"short")
        with pytest.raises(StorageError, match="truncated"):
            _decode_batch_reply(raw, expected=1)

    def test_trailing_garbage(self):
        raw = self._reply(1, self._sub_reply(STATUS_OK, b"fine")) + b"!!"
        with pytest.raises(StorageError, match="trailing garbage"):
            _decode_batch_reply(raw, expected=1)

    def test_error_reply_missing_transient_flag(self):
        raw = self._reply(1, self._sub_reply(STATUS_ERROR, b""))
        with pytest.raises(StorageError, match="flag byte"):
            _decode_batch_reply(raw, expected=1)

    def test_fenced_reply_with_short_epoch(self):
        from repro.storage.wire import STATUS_FENCED
        raw = self._reply(1, self._sub_reply(STATUS_FENCED, b"\x01" * 7))
        with pytest.raises(StorageError, match="epoch"):
            _decode_batch_reply(raw, expected=1)

    def test_seeded_garbage_replies_never_crash(self):
        rng = random.Random(0xDEC0DE)
        for _ in range(200):
            raw = rng.randbytes(rng.randrange(0, 64))
            try:
                _decode_batch_reply(raw, expected=rng.randrange(0, 4))
            except StorageError:
                pass  # clean rejection is the contract


class TestClientTransientFaults:
    def test_timeout_is_transient_error(self):
        # A server that accepts but never replies: the proxy must raise
        # the retryable error, not hang or crash (regression for the
        # socket-timeout crash).
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            client = RemoteStorageClient(*listener.getsockname(),
                                         timeout=0.2)
            with pytest.raises(TransientStorageError):
                client.get(BLOB)
            client.close()

    def test_dead_socket_is_transient_and_reconnects(self, live_server):
        client = RemoteStorageClient(*live_server.address, timeout=2.0)
        assert client.get(BLOB) == PAYLOAD
        client._sock.close()  # the OS yanks the connection
        with pytest.raises(TransientStorageError):
            client.get(BLOB)
        # Lazy reconnect: the very next call opens a new socket.
        assert client.get(BLOB) == PAYLOAD
        client.close()

    def test_resilient_transport_rides_over_reconnect(self, live_server):
        # Composed stack: transport + remote proxy.  A dead socket costs
        # one retry, not an exception to the filesystem above.
        client = RemoteStorageClient(*live_server.address, timeout=2.0)
        transport = ResilientTransport(
            client, RetryPolicy(base_delay_s=0.0, jitter=False))
        client._sock.close()
        assert transport.get(BLOB) == PAYLOAD
        assert transport.retries == 1
        client.close()

    def test_server_restart_window(self):
        # Outage: server goes away entirely, comes back on the same
        # port; the proxy reconnects instead of staying wedged.
        backend = StorageServer()
        backend.put(BLOB, PAYLOAD)
        ssp = SspServer(backend).start()
        host, port = ssp.address
        client = RemoteStorageClient(host, port, timeout=2.0)
        assert client.get(BLOB) == PAYLOAD
        ssp.stop()
        client._sock.close()  # connection torn down with the server
        with pytest.raises(TransientStorageError):
            client.get(BLOB)  # dead socket
        with pytest.raises(TransientStorageError):
            client.get(BLOB)  # reconnect refused: port is closed
        ssp2 = SspServer(backend, host=host, port=port).start()
        try:
            assert client.get(BLOB) == PAYLOAD
        finally:
            client.close()
            ssp2.stop()
