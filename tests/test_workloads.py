"""Workload harnesses: small-scale runs validating structure and shape.

Full-size paper-parameter runs live in benchmarks/; these tests verify
the harnesses produce sane, ordered results quickly.
"""

import pytest

from repro.sim.profiles import PAPER_2008
from repro.workloads import (IMPLEMENTATIONS, LABELS, dataset_bytes,
                             make_env, run_andrew, run_create_and_list,
                             run_op_costs, run_postmark)
from repro.workloads.report import (ComparisonRow, format_comparison,
                                    format_table, overhead_pct)


class TestRunner:
    def test_make_env_all_impls(self):
        for impl in IMPLEMENTATIONS:
            env = make_env(impl)
            assert env.fs is not None
            assert env.cost.totals.total == 0.0  # reset after setup
            env.fs.mkdir("/smoke")
            assert env.cost.totals.total > 0

    def test_unknown_impl_rejected(self):
        from repro.errors import SharoesError
        with pytest.raises(SharoesError):
            make_env("quantum-fs")

    def test_fresh_client_resets_costs(self):
        env = make_env("sharoes")
        env.fs.mkdir("/d")
        accrued = env.cost.totals.total
        assert accrued > 0
        env.fresh_client()
        # Reset, then only the new client's mount cost remains.
        assert env.cost.totals.total < 1.0

    def test_labels_cover_impls(self):
        assert set(LABELS) == set(IMPLEMENTATIONS)


class TestCreateListSmall:
    def test_orderings_hold(self):
        """Small run (40 files): SHAROES beats both public-key variants
        on list; NO-ENC variants bound everything from below."""
        results = {}
        for impl in IMPLEMENTATIONS:
            env = make_env(impl)
            results[impl] = run_create_and_list(env, files=40, dirs=4)
        baseline = results["no-enc-md-d"]
        sharoes = results["sharoes"]
        public = results["public"]
        pubopt = results["pub-opt"]
        # List phase: PUBLIC >> PUB-OPT > SHAROES.
        assert public.list_seconds > 5 * pubopt.list_seconds
        assert pubopt.list_seconds > 1.5 * sharoes.list_seconds
        # Since PR 7 readahead is on by default, so SHAROES batches the
        # per-child metadata round trips the baselines still pay one at
        # a time -- it now beats the unencrypted comparators on list.
        assert sharoes.list_seconds < baseline.list_seconds
        # Create phase: PUBLIC most expensive.
        assert public.create_seconds > sharoes.create_seconds
        assert public.create_seconds > baseline.create_seconds

    def test_result_fields(self):
        env = make_env("sharoes")
        r = run_create_and_list(env, files=20, dirs=4)
        assert r.files == 20
        assert r.dirs == 4
        assert r.create_seconds > 0
        assert r.list_seconds > 0


class TestPostmarkSmall:
    def test_cache_monotonicity(self):
        """More cache -> less simulated time, for every implementation."""
        env = make_env("sharoes")
        small = run_postmark(env, files=60, transactions=60,
                             cache_fraction=0.05)
        large = run_postmark(env, files=60, transactions=60,
                             cache_fraction=1.0)
        assert large.total_seconds < small.total_seconds

    def test_pubopt_penalized_at_small_cache(self):
        results = {}
        for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
            env = make_env(impl)
            results[impl] = run_postmark(env, files=60, transactions=60,
                                         cache_fraction=0.05)
        assert (results["pub-opt"].total_seconds
                > results["sharoes"].total_seconds)
        assert (results["sharoes"].total_seconds
                > results["no-enc-md-d"].total_seconds)

    def test_dataset_bytes_deterministic(self):
        assert dataset_bytes(100, seed=1) == dataset_bytes(100, seed=1)
        assert dataset_bytes(100, seed=1) != dataset_bytes(100, seed=2)

    def test_reruns_on_same_env_are_isolated(self):
        env = make_env("no-enc-md")
        a = run_postmark(env, files=30, transactions=30,
                         cache_fraction=0.5)
        b = run_postmark(env, files=30, transactions=30,
                         cache_fraction=0.5)
        assert abs(a.total_seconds - b.total_seconds) < 0.3 * max(
            a.total_seconds, b.total_seconds)


class TestAndrewSmall:
    def test_phases_present_and_positive(self):
        env = make_env("sharoes")
        r = run_andrew(env)
        assert set(r.phase_seconds) == {"mkdir", "copy", "stat", "read",
                                        "compile"}
        assert all(v > 0 for v in r.phase_seconds.values())

    def test_cumulative_ordering(self):
        totals = {}
        for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
            env = make_env(impl)
            totals[impl] = run_andrew(env).total_seconds
        assert (totals["no-enc-md-d"] < totals["sharoes"]
                < totals["pub-opt"])

    def test_pubopt_stat_overhead_dominates(self):
        """The paper: PUB-OPT's phase 2/4 overheads mirror phase 3 --
        private-key decryption per stat is the bottleneck."""
        base = run_andrew(make_env("no-enc-md-d")).phase_seconds
        pubopt = run_andrew(make_env("pub-opt")).phase_seconds
        stat_overhead = pubopt["stat"] - base["stat"]
        read_overhead = pubopt["read"] - base["read"]
        assert stat_overhead > 0
        assert read_overhead == pytest.approx(stat_overhead, rel=0.6)


class TestOpCosts:
    def test_all_ops_measured(self):
        env = make_env("sharoes")
        costs = run_op_costs(env)
        assert set(costs) == {"getattr", "mkdir:rwx", "mkdir:--x",
                              "mkdir:both", "read-1MB", "write-1MB"}

    def test_paper_anchors(self):
        env = make_env("sharoes")
        costs = run_op_costs(env)
        # getattr "a little over 100 ms"
        assert 0.100 < costs["getattr"].total_s < 0.160
        # 1 MB read downlink-bound (~23 s on 350 Kbit/s)
        assert 20 < costs["read-1MB"].total_s < 27
        # 1 MB write uplink-bound (~10 s on 850 Kbit/s)
        assert 8 < costs["write-1MB"].total_s < 13
        # crypto below 7% for the I/O operations
        assert costs["read-1MB"].crypto_fraction < 0.07
        assert costs["write-1MB"].crypto_fraction < 0.07
        assert costs["getattr"].crypto_fraction < 0.07

    def test_exec_only_mkdir_costs_more_crypto(self):
        env = make_env("sharoes")
        costs = run_op_costs(env)
        assert (costs["mkdir:--x"].crypto_s
                > costs["mkdir:rwx"].crypto_s)

    def test_network_dominates_everywhere(self):
        env = make_env("sharoes")
        for cost in run_op_costs(env).values():
            assert cost.network_s > cost.crypto_s


class TestReport:
    def test_comparison_row_ratio(self):
        row = ComparisonRow("x", paper=100.0, measured=110.0)
        assert row.ratio == pytest.approx(1.1)
        assert ComparisonRow("x", None, 5.0).ratio is None

    def test_format_comparison_renders(self):
        text = format_comparison("Fig 9", [
            ComparisonRow("SHAROES", 131.0, 128.1)])
        assert "SHAROES" in text
        assert "0.98x" in text

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 6

    def test_overhead_pct(self):
        assert overhead_pct(110, 100) == pytest.approx(0.10)
        assert overhead_pct(5, 0) == 0.0
