"""Cost-parity regression for the RTT/transfer split (PR 10).

The known accounting edge: ``charge_request`` charges one full RTT per
request even when requests are pipelined.  The flight model fixes that
by splitting latency from transfer -- overlapped requests share RTT
*waves* while their bytes still serialize on the link.  These tests pin
both halves of the contract:

* the **sequential path is unchanged**: ``request_time`` decomposes into
  ``rtt + transfer_time`` exactly, and a flight at ``parallel=1`` is
  byte-for-byte the sum of individual requests;
* the **overlap is honest**: only RTTs amortize (ceil(N/K) waves);
  transfer seconds are identical at every window size.
"""

from __future__ import annotations

import math

import pytest

from repro.sim.costmodel import NETWORK, CostModel
from repro.sim.network import LAN, PAPER_DSL, NetworkLink, kbits_per_sec
from repro.sim.profiles import PAPER_2008

TRANSFERS = [(64, 16), (5000, 16), (64, 9000), (1200, 1200), (64, 16),
             (800, 3500), (64, 16), (2500, 64), (64, 16), (60, 4000)]


class TestRttTransferSplit:
    def test_request_time_decomposes(self):
        for link in (PAPER_DSL, LAN):
            for up, down in TRANSFERS:
                assert link.request_time(up, down) == pytest.approx(
                    link.rtt_s + link.transfer_time(up, down))

    def test_sequential_request_time_pinned(self):
        """The 2008 DSL numbers the whole benchmark series rests on."""
        up_bw = kbits_per_sec(850)
        down_bw = kbits_per_sec(350)
        assert PAPER_DSL.request_time(1000, 2000) == pytest.approx(
            0.100 + 1000 / up_bw + 2000 / down_bw)
        assert PAPER_DSL.request_time(0, 0, round_trips=2) == pytest.approx(
            0.200)


class TestFlightTime:
    def test_empty_flight_is_free(self):
        assert PAPER_DSL.flight_time([], parallel=8) == 0.0

    def test_single_request_flight_equals_request_time(self):
        for parallel in (1, 2, 8, 64):
            assert PAPER_DSL.flight_time([(500, 900)], parallel) == \
                pytest.approx(PAPER_DSL.request_time(500, 900))

    def test_window_one_equals_back_to_back_requests(self):
        sequential = sum(PAPER_DSL.request_time(u, d)
                         for u, d in TRANSFERS)
        assert PAPER_DSL.flight_time(TRANSFERS, parallel=1) == \
            pytest.approx(sequential)

    def test_rtt_waves_amortize(self):
        for parallel in (2, 3, 8, 16):
            waves = math.ceil(len(TRANSFERS) / parallel)
            expected = (waves * PAPER_DSL.rtt_s
                        + sum(PAPER_DSL.transfer_time(u, d)
                              for u, d in TRANSFERS))
            assert PAPER_DSL.flight_time(TRANSFERS, parallel) == \
                pytest.approx(expected)

    def test_bandwidth_is_not_free(self):
        """Any window size pays the identical serialized transfer time."""
        def transfer_part(parallel: int) -> float:
            waves = math.ceil(len(TRANSFERS) / parallel)
            return (PAPER_DSL.flight_time(TRANSFERS, parallel)
                    - waves * PAPER_DSL.rtt_s)

        base = transfer_part(1)
        for parallel in (2, 8, 1024):
            assert transfer_part(parallel) == pytest.approx(base)

    def test_flight_never_beats_one_rtt_plus_bytes(self):
        """The floor is one wave: latency can overlap, never vanish."""
        floor = (PAPER_DSL.rtt_s
                 + sum(PAPER_DSL.transfer_time(u, d) for u, d in TRANSFERS))
        assert PAPER_DSL.flight_time(TRANSFERS, parallel=10**6) == \
            pytest.approx(floor)

    def test_monotone_in_window(self):
        times = [PAPER_DSL.flight_time(TRANSFERS, k) for k in range(1, 12)]
        assert times == sorted(times, reverse=True) or all(
            a >= b - 1e-12 for a, b in zip(times, times[1:]))


class TestChargeFlightParity:
    def test_charge_flight_window_one_matches_charge_request(self):
        """The sequential path's numbers are unchanged by the split."""
        seq = CostModel(PAPER_2008)
        for up, down in TRANSFERS:
            seq.charge_request(up, down)
        flight = CostModel(PAPER_2008)
        flight.charge_flight(TRANSFERS, parallel=1)
        assert flight.totals.network == pytest.approx(seq.totals.network)
        assert flight.clock.now == pytest.approx(seq.clock.now)

    def test_charge_flight_lands_in_network_bucket(self):
        cost = CostModel(PAPER_2008)
        cost.charge_flight(TRANSFERS, parallel=8)
        assert cost.totals.network == pytest.approx(
            PAPER_2008.link.flight_time(TRANSFERS, 8))
        assert cost.totals.crypto == 0.0
        assert cost.totals.other == 0.0

    def test_overlap_saves_exactly_the_amortized_rtts(self):
        cost_seq = CostModel(PAPER_2008)
        cost_seq.charge_flight(TRANSFERS, parallel=1)
        cost_par = CostModel(PAPER_2008)
        cost_par.charge_flight(TRANSFERS, parallel=8)
        waves = math.ceil(len(TRANSFERS) / 8)
        saved = (len(TRANSFERS) - waves) * PAPER_2008.link.rtt_s
        assert (cost_seq.totals.network
                - cost_par.totals.network) == pytest.approx(saved)


def test_custom_link_flight_math():
    link = NetworkLink(upload_bytes_per_s=1000.0,
                       download_bytes_per_s=500.0, rtt_s=1.0)
    # 5 requests, window 2 -> 3 waves; 1000 B up + 1000 B down.
    transfers = [(200, 200)] * 5
    assert link.flight_time(transfers, parallel=2) == pytest.approx(
        3 * 1.0 + 1000 / 1000.0 + 1000 / 500.0)
