"""SHAROES client: mount, basic operations, error paths."""

import pytest

from repro.errors import (DirectoryNotEmpty, FileExists, FileNotFound,
                          FilesystemError, IsADirectory, NotADirectory,
                          PermissionDenied, UnsupportedPermission)
from repro.fs.client import ClientConfig, SharoesFilesystem


class TestMount:
    def test_mount_unlocks_root(self, alice_fs):
        stat = alice_fs.getattr("/")
        assert stat.ftype == "dir"
        assert stat.owner == "alice"

    def test_unmounted_client_refuses(self, volume, registry):
        fs = SharoesFilesystem(volume, registry.user("alice"))
        with pytest.raises(FilesystemError):
            fs.getattr("/")

    def test_unmount_clears_state(self, alice_fs):
        alice_fs.unmount()
        assert not alice_fs.mounted
        with pytest.raises(FilesystemError):
            alice_fs.getattr("/")

    def test_mount_loads_group_keys(self, alice_fs):
        assert "eng" in alice_fs.agent.group_keys

    def test_mount_single_pk_decrypt(self, volume, registry):
        """Section III-C: one public-key operation at mount time."""
        fs = SharoesFilesystem(volume, registry.user("dave"))
        fs.mount()
        assert fs.provider.counters.total("pk_decrypt") == 1


class TestCreateAndRead:
    def test_create_read_roundtrip(self, alice_fs):
        alice_fs.create_file("/hello.txt", b"world")
        assert alice_fs.read_file("/hello.txt") == b"world"

    def test_create_empty_file(self, alice_fs):
        alice_fs.mknod("/empty")
        assert alice_fs.read_file("/empty") == b""

    def test_create_sets_attrs(self, alice_fs):
        stat = alice_fs.mknod("/f", mode=0o640)
        assert stat.owner == "alice"
        assert stat.group == "eng"   # inherited from parent
        assert stat.mode == 0o640
        assert stat.ftype == "file"

    def test_custom_group(self, alice_fs):
        stat = alice_fs.mknod("/f", mode=0o640, group="hr")
        assert stat.group == "hr"

    def test_duplicate_rejected(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(FileExists):
            alice_fs.mknod("/f")

    def test_missing_file(self, alice_fs):
        with pytest.raises(FileNotFound):
            alice_fs.read_file("/nope")

    def test_missing_parent(self, alice_fs):
        with pytest.raises(FileNotFound):
            alice_fs.mknod("/no/such/dir/f")

    def test_file_as_directory(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(NotADirectory):
            alice_fs.mknod("/f/child")

    def test_read_directory_rejected(self, alice_fs):
        alice_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            alice_fs.read_file("/d")

    def test_unsupported_mode_rejected(self, alice_fs):
        with pytest.raises(UnsupportedPermission):
            alice_fs.mknod("/wonly", mode=0o200)
        with pytest.raises(UnsupportedPermission):
            alice_fs.mkdir("/wx", mode=0o730)

    def test_deep_nesting(self, alice_fs):
        alice_fs.mkdir("/a")
        alice_fs.mkdir("/a/b")
        alice_fs.mkdir("/a/b/c")
        alice_fs.create_file("/a/b/c/deep.txt", b"deep")
        assert alice_fs.read_file("/a/b/c/deep.txt") == b"deep"

    def test_size_stale_by_default(self, alice_fs):
        """Paper Fig. 8: close sends data only -- stat size goes stale."""
        alice_fs.create_file("/f", b"12345")
        assert alice_fs.getattr("/f").size == 0
        assert alice_fs.read_file("/f") == b"12345"

    def test_size_fresh_with_option(self, make_fs):
        from repro.fs.client import ClientConfig
        fs = make_fs("alice", config=ClientConfig(
            update_metadata_on_close=True))
        fs.create_file("/sized", b"12345")
        assert fs.getattr("/sized").size == 5


class TestReaddir:
    def test_lists_sorted(self, alice_fs):
        alice_fs.mkdir("/d")
        for name in ("zeta", "alpha", "mid"):
            alice_fs.mknod(f"/d/{name}")
        assert alice_fs.readdir("/d") == ["alpha", "mid", "zeta"]

    def test_empty_dir(self, alice_fs):
        alice_fs.mkdir("/d")
        assert alice_fs.readdir("/d") == []

    def test_readdir_file_rejected(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(NotADirectory):
            alice_fs.readdir("/f")


class TestWrite:
    def test_overwrite(self, alice_fs):
        alice_fs.create_file("/f", b"one")
        alice_fs.write_file("/f", b"two!")
        assert alice_fs.read_file("/f") == b"two!"

    def test_append(self, alice_fs):
        alice_fs.create_file("/f", b"one")
        alice_fs.append_file("/f", b"+two")
        assert alice_fs.read_file("/f") == b"one+two"

    def test_truncating_write_shrinks(self, alice_fs):
        alice_fs.create_file("/f", b"a much longer original content here")
        alice_fs.write_file("/f", b"tiny")
        assert alice_fs.read_file("/f") == b"tiny"

    def test_write_to_empty(self, alice_fs):
        alice_fs.create_file("/f", b"data")
        alice_fs.write_file("/f", b"")
        assert alice_fs.read_file("/f") == b""

    def test_handle_pwrite(self, alice_fs):
        alice_fs.create_file("/f", b"0123456789")
        with alice_fs.open("/f", "rw") as handle:
            handle.pwrite(b"XY", 3)
        assert alice_fs.read_file("/f") == b"012XY56789"

    def test_pwrite_past_end_zero_fills(self, alice_fs):
        alice_fs.create_file("/f", b"ab")
        with alice_fs.open("/f", "rw") as handle:
            handle.pwrite(b"Z", 5)
        assert alice_fs.read_file("/f") == b"ab\x00\x00\x00Z"

    def test_handle_read_modes(self, alice_fs):
        alice_fs.create_file("/f", b"content")
        with alice_fs.open("/f", "r") as handle:
            assert handle.read() == b"content"
            assert handle.read(3, offset=1) == b"ont"
            with pytest.raises(PermissionDenied):
                handle.write(b"x")

    def test_write_handle_cannot_read(self, alice_fs):
        alice_fs.create_file("/f", b"content")
        with alice_fs.open("/f", "w") as handle:
            with pytest.raises(PermissionDenied):
                handle.read()

    def test_truncate_via_handle(self, alice_fs):
        alice_fs.create_file("/f", b"0123456789")
        with alice_fs.open("/f", "rw") as handle:
            handle.truncate(4)
        assert alice_fs.read_file("/f") == b"0123"

    def test_writes_flush_only_on_close(self, alice_fs, volume):
        alice_fs.create_file("/f", b"old")
        handle = alice_fs.open("/f", "w")
        handle.pwrite(b"new", 0)
        other = SharoesFilesystem(volume, alice_fs.agent.user)
        other.mount()
        assert other.read_file("/f") == b"old"  # not yet flushed
        handle.close()
        other.cache.clear()
        assert other.read_file("/f") == b"new"

    def test_double_close_harmless(self, alice_fs):
        alice_fs.create_file("/f", b"x")
        handle = alice_fs.open("/f", "w")
        handle.pwrite(b"y", 0)
        handle.close()
        handle.close()
        assert alice_fs.read_file("/f") == b"y"

    def test_closed_handle_refuses(self, alice_fs):
        alice_fs.create_file("/f", b"x")
        handle = alice_fs.open("/f", "r")
        handle.close()
        with pytest.raises(FilesystemError):
            handle.read()

    def test_bad_open_mode(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(FilesystemError):
            alice_fs.open("/f", "rx")

    def test_open_directory_rejected(self, alice_fs):
        alice_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            alice_fs.open("/d", "r")


class TestRemove:
    def test_unlink(self, alice_fs):
        alice_fs.create_file("/f", b"x")
        alice_fs.unlink("/f")
        with pytest.raises(FileNotFound):
            alice_fs.read_file("/f")
        assert alice_fs.readdir("/") == []

    def test_unlink_directory_rejected(self, alice_fs):
        alice_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            alice_fs.unlink("/d")

    def test_rmdir_empty(self, alice_fs):
        alice_fs.mkdir("/d")
        alice_fs.rmdir("/d")
        assert alice_fs.readdir("/") == []

    def test_rmdir_nonempty_rejected(self, alice_fs):
        alice_fs.mkdir("/d")
        alice_fs.mknod("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            alice_fs.rmdir("/d")

    def test_rmdir_file_rejected(self, alice_fs):
        alice_fs.mknod("/f")
        with pytest.raises(NotADirectory):
            alice_fs.rmdir("/f")

    def test_unlink_frees_ssp_blobs(self, alice_fs, server):
        alice_fs.create_file("/f", b"data" * 100)
        before = server.blob_count()
        alice_fs.unlink("/f")
        assert server.blob_count() < before

    def test_recreate_after_unlink(self, alice_fs):
        alice_fs.create_file("/f", b"one")
        alice_fs.unlink("/f")
        alice_fs.create_file("/f", b"two")
        assert alice_fs.read_file("/f") == b"two"


class TestRename:
    def test_rename_same_dir(self, alice_fs):
        alice_fs.create_file("/old", b"data")
        alice_fs.rename("/old", "/new")
        assert alice_fs.read_file("/new") == b"data"
        with pytest.raises(FileNotFound):
            alice_fs.getattr("/old")

    def test_rename_across_dirs(self, alice_fs):
        alice_fs.mkdir("/a")
        alice_fs.mkdir("/b")
        alice_fs.create_file("/a/f", b"data")
        alice_fs.rename("/a/f", "/b/g")
        assert alice_fs.read_file("/b/g") == b"data"
        assert alice_fs.readdir("/a") == []

    def test_rename_directory_with_contents(self, alice_fs):
        alice_fs.mkdir("/a")
        alice_fs.create_file("/a/f", b"inside")
        alice_fs.rename("/a", "/renamed")
        assert alice_fs.read_file("/renamed/f") == b"inside"

    def test_rename_target_exists(self, alice_fs):
        alice_fs.mknod("/a")
        alice_fs.mknod("/b")
        with pytest.raises(FileExists):
            alice_fs.rename("/a", "/b")


class TestAccess:
    def test_owner_access(self, alice_fs):
        alice_fs.mknod("/f", mode=0o640)
        assert alice_fs.access("/f", "r")
        assert alice_fs.access("/f", "w")
        assert alice_fs.access("/f", "rw")
        assert not alice_fs.access("/f", "x")

    def test_access_missing_path(self, alice_fs):
        assert not alice_fs.access("/nope", "r")

    def test_getattr_does_not_require_read(self, alice_fs, bob_fs):
        """stat works through the CAP even without read permission
        (like *nix: stat needs only path traversal)."""
        alice_fs.mknod("/f", mode=0o600)
        stat = bob_fs.getattr("/f")
        assert stat.mode == 0o600
