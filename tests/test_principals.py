"""Users, groups, registry, group key distribution, user agent wallet."""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import KeyAccessError, SharoesError
from repro.principals.groups import GroupKeyService, UserAgent
from repro.principals.registry import UnknownPrincipal
from repro.storage.blobs import group_key_blob
from repro.storage.server import StorageServer


class TestRegistry:
    def test_users_and_groups(self, registry):
        assert [u.user_id for u in registry.users()] == [
            "alice", "bob", "carol", "dave"]
        assert registry.is_member("alice", "eng")
        assert not registry.is_member("carol", "eng")
        assert registry.user("alice").groups == {"eng"}

    def test_duplicate_user_rejected(self, registry):
        with pytest.raises(SharoesError):
            registry.create_user("alice", key_bits=512)

    def test_unknown_lookups(self, registry):
        with pytest.raises(UnknownPrincipal):
            registry.user("mallory")
        with pytest.raises(UnknownPrincipal):
            registry.group("pirates")
        with pytest.raises(UnknownPrincipal):
            registry.directory.user_key("mallory")

    def test_group_with_unknown_member_rejected(self, registry):
        with pytest.raises(UnknownPrincipal):
            registry.create_group("ghosts", {"casper"}, key_bits=512)

    def test_membership_changes(self, registry):
        registry.add_member("eng", "carol")
        assert registry.is_member("carol", "eng")
        assert "eng" in registry.user("carol").groups
        registry.remove_member("eng", "carol")
        assert not registry.is_member("carol", "eng")
        assert "eng" not in registry.user("carol").groups

    def test_directory_exposes_public_keys_only(self, registry):
        key = registry.directory.user_key("alice")
        assert key == registry.user("alice").public_key
        assert not hasattr(key, "d")


class TestGroupKeys:
    def test_publish_and_fetch(self, registry, server):
        provider = CryptoProvider()
        service = GroupKeyService(registry, server, provider)
        assert service.publish(registry.group("eng")) == 2
        agent = UserAgent(registry.user("alice"), provider)
        assert agent.fetch_group_keys(server) == 1
        assert "eng" in agent.group_keys
        # The fetched key matches the group's actual private key.
        assert (agent.group_keys["eng"].n
                == registry.group("eng").keypair.private.n)

    def test_non_member_has_no_blob(self, registry, server):
        provider = CryptoProvider()
        GroupKeyService(registry, server, provider).publish_all()
        assert not server.exists(group_key_blob("eng", "carol"))
        agent = UserAgent(registry.user("dave"), provider)
        assert agent.fetch_group_keys(server) == 0

    def test_member_cannot_unwrap_others_blob(self, registry, server):
        provider = CryptoProvider()
        GroupKeyService(registry, server, provider).publish_all()
        blob = server.get(group_key_blob("eng", "alice"))
        carol_agent = UserAgent(registry.user("carol"), provider)
        with pytest.raises(Exception):
            carol_agent.provider.pk_decrypt(
                registry.user("carol").private_key, blob)

    def test_revoke_member_rotates_key(self, registry, server):
        provider = CryptoProvider()
        service = GroupKeyService(registry, server, provider)
        service.publish_all()
        old_n = registry.group("eng").keypair.private.n
        service.revoke_member("eng", "bob")
        assert not registry.is_member("bob", "eng")
        assert not server.exists(group_key_blob("eng", "bob"))
        assert registry.group("eng").keypair.private.n != old_n
        # Remaining member can still fetch the fresh key.
        agent = UserAgent(registry.user("alice"), provider)
        agent.fetch_group_keys(server)
        assert (agent.group_keys["eng"].n
                == registry.group("eng").keypair.private.n)


class TestUserAgent:
    def test_principal_ids_order(self, registry):
        agent = UserAgent(registry.user("alice"), CryptoProvider())
        agent.group_keys["eng"] = registry.group("eng").keypair.private
        assert agent.principal_ids() == ["alice", "eng"]

    def test_private_key_for_self(self, registry):
        agent = UserAgent(registry.user("alice"), CryptoProvider())
        assert (agent.private_key_for("alice")
                is registry.user("alice").private_key)

    def test_private_key_for_unknown_principal(self, registry):
        agent = UserAgent(registry.user("alice"), CryptoProvider())
        with pytest.raises(KeyAccessError):
            agent.private_key_for("hr")

    def test_unwrap_with_group_identity(self, registry):
        provider = CryptoProvider()
        agent = UserAgent(registry.user("alice"), provider)
        agent.group_keys["eng"] = registry.group("eng").keypair.private
        wrapped = provider.pk_encrypt(
            registry.group("eng").public_key, b"for the group")
        assert agent.unwrap("eng", wrapped) == b"for the group"

    def test_install_group_key(self, registry):
        provider = CryptoProvider()
        agent = UserAgent(registry.user("bob"), provider)
        wrapped = provider.pk_encrypt(
            registry.user("bob").public_key,
            registry.group("eng").keypair.private.to_bytes())
        agent.install_group_key("eng", wrapped)
        assert (agent.group_keys["eng"].n
                == registry.group("eng").keypair.private.n)
