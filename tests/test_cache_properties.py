"""Property-based tests for the byte-budgeted LRU cache.

The verified metadata cache (PR 7) sits entirely on top of ``LruCache``,
so its correctness argument leans on three accounting invariants:

1. **Conservation**: every entry that ever entered the cache is either
   still live, was evicted (counted), or was displaced by an explicit
   invalidation / a rejected oversized replacement (both of which are
   deliberate "stay gone" paths)::

       insertions == live + evictions + displaced

2. **No shadowing**: a ``rejected`` put never leaves the *previous*
   value visible under the same key -- an oversized write-through must
   not resurrect the stale entry it was replacing.

3. **Budget**: ``used_bytes`` equals the sum of live entry sizes and
   never exceeds ``capacity_bytes``.

These are checked against a dict-based reference model under randomized
operation sequences (hypothesis), including the adversarial corner the
hand-written tests missed: replacing a live key with an object larger
than the whole budget.
"""

from __future__ import annotations

import pytest

from repro.fs.cache import LruCache

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402
from hypothesis.stateful import (RuleBasedStateMachine, initialize,  # noqa: E402
                                 invariant, rule)

KEYS = st.integers(min_value=0, max_value=11)
SIZES = st.integers(min_value=0, max_value=64)
CAPACITIES = st.one_of(st.none(), st.integers(min_value=0, max_value=160))


class LruModel(RuleBasedStateMachine):
    """Reference model: a dict of {key: (value, size)} plus a displaced
    counter for the two remove-without-evicting paths."""

    @initialize(capacity=CAPACITIES)
    def setup(self, capacity):
        self.cache = LruCache(capacity_bytes=capacity)
        self.capacity = capacity
        self.model: dict[int, tuple[int, int]] = {}
        self.displaced = 0
        self.counter = 0  # monotone value generator -> puts distinguishable

    @rule(key=KEYS, size=SIZES)
    def put(self, key, size):
        self.counter += 1
        value = self.counter
        was_live = key in self.model
        before = set(self.model) if self.capacity is not None else None
        self.cache.put(key, value, size)
        if self.capacity == 0 or (self.capacity is not None
                                  and size > self.capacity):
            # Rejected.  If it displaced a live entry, that entry must be
            # gone -- never shadowed by the stale value (invariant 2).
            if was_live:
                del self.model[key]
                self.displaced += 1
            assert self.cache.get(key) is None
            self.cache.stats.misses -= 1  # undo the probe's miss
            return
        self.model[key] = (value, size)
        if before is not None:
            # Mirror evictions: drop model keys the cache no longer holds.
            for k in list(self.model):
                if k != key and self.cache._entries.get(k) is None:
                    del self.model[k]

    @rule(key=KEYS)
    def get(self, key):
        got = self.cache.get(key)
        if key in self.model:
            assert got == self.model[key][0]
        else:
            assert got is None

    @rule(key=KEYS)
    def invalidate(self, key):
        self.cache.invalidate(key)
        if key in self.model:
            del self.model[key]
            self.displaced += 1

    @invariant()
    def conservation(self):
        s = self.cache.stats
        assert s.insertions == (len(self.cache) + s.evictions
                                + self.displaced)

    @invariant()
    def live_set_matches_model(self):
        assert set(self.cache._entries) == set(self.model)

    @invariant()
    def byte_accounting(self):
        assert self.cache.used_bytes == sum(
            size for _, size in self.model.values())
        if self.capacity is not None:
            assert self.cache.used_bytes <= self.capacity


TestLruModel = LruModel.TestCase
TestLruModel.settings = settings(max_examples=60, stateful_step_count=40,
                                 deadline=None)


@given(capacity=st.integers(min_value=1, max_value=120),
       ops=st.lists(st.tuples(KEYS, SIZES), min_size=1, max_size=200))
@settings(max_examples=120, deadline=None)
def test_conservation_under_put_storm(capacity, ops):
    """Pure put sequences: insertions == live + evictions + displaced,
    where displaced counts only rejected oversized *replacements*."""
    cache = LruCache(capacity_bytes=capacity)
    displaced = 0
    for i, (key, size) in enumerate(ops):
        was_live = cache._entries.get(key) is not None
        cache.put(key, i, size)
        if size > capacity and was_live:
            displaced += 1
    s = cache.stats
    assert s.insertions == len(cache) + s.evictions + displaced
    assert s.insertions + s.replacements + s.rejected == len(ops)
    assert cache.used_bytes <= capacity


@given(ops=st.lists(st.tuples(KEYS, SIZES), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_unbounded_cache_never_evicts_or_rejects(ops):
    cache = LruCache(capacity_bytes=None)
    for i, (key, size) in enumerate(ops):
        cache.put(key, i, size)
    assert cache.stats.evictions == 0
    assert cache.stats.rejected == 0
    assert cache.stats.insertions == len(cache)
    assert cache.used_bytes == sum(
        size for _, size in cache._entries.values())


@given(capacity=st.integers(min_value=1, max_value=60),
       warm=st.lists(st.tuples(KEYS, st.integers(min_value=1, max_value=8)),
                     min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_rejected_put_never_shadows_live_entry(capacity, warm):
    """The PR 7 threat case: a write-through whose new serialization is
    larger than the whole budget must not leave the *old* (now stale)
    bytes visible under that key."""
    cache = LruCache(capacity_bytes=capacity)
    for i, (key, size) in enumerate(warm):
        cache.put(key, ("old", i), size)
    for key in {k for k, _ in warm}:
        if cache._entries.get(key) is None:
            continue
        cache.put(key, "too-big", capacity + 1)
        assert cache.get(key) is None


def test_zero_capacity_rejects_everything():
    cache = LruCache(capacity_bytes=0)
    for i in range(5):
        cache.put(("k", i), i, 1)
    assert len(cache) == 0
    assert cache.stats.rejected == 5
    assert cache.stats.insertions == 0
