"""Concurrency interleaving matrix: every schedule must stay consistent.

The acceptance bar for the multi-client lease layer: for every op pair
and every interleaving point (pause / crash / zombie-resume) in the
first client's SSP mutation sequence, the volume ends fsck-clean with
zero orphans, every rider's update survives, the first op is fully
applied or fully rolled back, and surviving clients cross-check version
statements without a fork.  The unit contracts of the lease subsystem
itself live in test_lease.py.
"""

from __future__ import annotations

import pytest

from repro.tools.interleave import (CRASH, MODES, PREEMPT, SEQUENTIAL,
                                    ZOMBIE, InterleaveMatrix, build_cases,
                                    outcomes_table)

CASE_NAMES = [case.name for case in
              build_cases({name: b"" for name in "abcx"})]


@pytest.fixture(scope="module")
def matrix() -> InterleaveMatrix:
    """One enterprise reused across the module: each cell restores the
    volume (and shared clock) to its base snapshot, so cells stay
    independent."""
    return InterleaveMatrix(seed=1234)


def _case(matrix: InterleaveMatrix, name: str):
    [case] = [c for c in build_cases(matrix.payloads)
              if c.name == name]
    return case


@pytest.mark.parametrize("name", CASE_NAMES)
def test_all_interleavings_consistent(matrix, name):
    outcomes = matrix.run_case(_case(matrix, name), MODES)
    assert outcomes, f"{name}: no interleaving points discovered"
    bad = [o for o in outcomes if not o.consistent]
    assert not bad, outcomes_table(bad)


def test_sequential_baseline_applies_everything(matrix):
    for name in CASE_NAMES:
        [outcome] = [o for o in matrix.run_case(_case(matrix, name),
                                                (SEQUENTIAL,))
                     if o.mode == SEQUENTIAL]
        assert outcome.outcome == "all_applied"
        assert outcome.first_error == ""


def test_preemption_actually_contends(matrix):
    """The sweep is not vacuous: at least one preempt cell makes a
    rider wait on the paused client's lease before succeeding."""
    outcomes = matrix.run_case(_case(matrix, "create-create"),
                               (PREEMPT,))
    assert any(o.deferred > 0 for o in outcomes)
    assert all(o.consistent for o in outcomes)


def test_zombie_fencing_actually_bites(matrix):
    """At least one zombie cell must see the resumed client fenced out
    with LeaseLostError -- otherwise the epoch check is dead code."""
    outcomes = matrix.run_case(_case(matrix, "create-create"),
                               (ZOMBIE,))
    assert any(o.first_error == "LeaseLostError" for o in outcomes)
    assert all(o.consistent for o in outcomes)


def test_crash_rides_roll_forward(matrix):
    """Crash cells past the journal append recover the first op via the
    successor's roll-forward: it must land applied, not half-done."""
    outcomes = matrix.run_case(_case(matrix, "create-create"), (CRASH,))
    assert any(o.outcome == "all_applied" for o in outcomes)
    assert any(o.outcome == "first_rolled_back" for o in outcomes)
    assert all(o.consistent for o in outcomes)


def test_matrix_is_deterministic_per_seed():
    a = InterleaveMatrix(seed=7)
    b = InterleaveMatrix(seed=7)
    case = "mkdir-create"
    assert (a.run_case(_case(a, case), (SEQUENTIAL, ZOMBIE))
            == b.run_case(_case(b, case), (SEQUENTIAL, ZOMBIE)))


def test_every_case_has_multiple_interleaving_points(matrix):
    """Each first op is genuinely multi-mutation: a single-put op would
    make the interleaving sweep vacuous."""
    for name in CASE_NAMES:
        total = matrix.count_points(_case(matrix, name))
        assert total >= 3, f"{name}: only {total} mutations"
