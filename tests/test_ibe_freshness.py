"""Cocks IBE (the paper's PKI alternative) and the freshness monitor
(the paper's SUNDR-inspired integrity future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ibe
from repro.crypto.ibe import KeyAuthority, jacobi
from repro.errors import CryptoError, IntegrityError
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.freshness import FreshnessMonitor, StaleObjectError
from repro.principals.ibe import (IdentityEnvelope,
                                  unwrap_with_identity_key,
                                  wrap_for_identity)
from repro.storage.blobs import meta_blob


@pytest.fixture(scope="module")
def authority():
    return KeyAuthority(modulus_bits=256)


class TestJacobi:
    def test_known_values(self):
        # (1/3)=1, (2/3)=-1, classic table entries.
        assert jacobi(1, 3) == 1
        assert jacobi(2, 3) == -1
        assert jacobi(2, 15) == 1
        assert jacobi(7, 15) == -1
        assert jacobi(0, 15) == 0

    def test_multiplicative(self):
        n = 77
        for a in range(1, 20):
            for b in range(1, 20):
                assert (jacobi(a * b, n)
                        == jacobi(a, n) * jacobi(b, n))

    def test_squares_are_plus_one(self):
        n = 91
        for a in range(2, 30):
            if jacobi(a, n) != 0:
                assert jacobi(a * a % n, n) == 1

    def test_even_modulus_rejected(self):
        with pytest.raises(CryptoError):
            jacobi(3, 10)


class TestCocksIbe:
    def test_roundtrip(self, authority):
        key = authority.extract("alice@corp.example")
        blob = ibe.encrypt(authority.params, "alice@corp.example",
                           b"a 128-bit key!!!")
        assert ibe.decrypt(authority.params, key,
                           blob) == b"a 128-bit key!!!"

    def test_empty_payload(self, authority):
        key = authority.extract("x@y")
        assert ibe.decrypt(authority.params, key,
                           ibe.encrypt(authority.params, "x@y", b"")) == b""

    def test_wrong_identity_garbles(self, authority):
        blob = ibe.encrypt(authority.params, "alice@corp.example",
                           b"secret--secret--")
        eve = authority.extract("eve@corp.example")
        assert ibe.decrypt(authority.params, eve,
                           blob) != b"secret--secret--"

    def test_identity_element_deterministic(self, authority):
        a1 = ibe.identity_element(authority.params, "someone@x")
        a2 = ibe.identity_element(authority.params, "someone@x")
        assert a1 == a2
        assert jacobi(a1, authority.params.n) == 1

    def test_extraction_consistent(self, authority):
        key = authority.extract("bob@corp.example")
        a = ibe.identity_element(authority.params, "bob@corp.example")
        n = authority.params.n
        expected = a % n if key.a_is_residue else (-a) % n
        assert pow(key.r, 2, n) == expected

    def test_payload_cap(self, authority):
        with pytest.raises(CryptoError):
            ibe.encrypt(authority.params, "x@y", b"z" * 65)

    def test_key_serialization(self, authority):
        key = authority.extract("s@t")
        restored = ibe.IdentityKey.from_bytes(key.to_bytes())
        assert restored == key
        params = ibe.PublicParams.from_bytes(authority.params.to_bytes())
        assert params == authority.params

    @settings(max_examples=5, deadline=None)
    @given(st.binary(min_size=0, max_size=8))
    def test_roundtrip_property(self, authority, payload):
        key = authority.extract("prop@test")
        blob = ibe.encrypt(authority.params, "prop@test", payload)
        assert ibe.decrypt(authority.params, key, blob) == payload


class TestIdentityEnvelope:
    def test_wrap_unwrap(self, authority):
        envelope = wrap_for_identity(authority.params,
                                     "newhire@corp.example",
                                     b"the bootstrap secret material")
        key = authority.extract("newhire@corp.example")
        assert unwrap_with_identity_key(
            authority.params, key,
            envelope) == b"the bootstrap secret material"

    def test_envelope_serialization(self, authority):
        envelope = wrap_for_identity(authority.params, "a@b", b"payload")
        restored = IdentityEnvelope.from_bytes(envelope.to_bytes())
        key = authority.extract("a@b")
        assert unwrap_with_identity_key(authority.params, key,
                                        restored) == b"payload"

    def test_wrong_identity_key_rejected(self, authority):
        envelope = wrap_for_identity(authority.params, "a@b", b"payload")
        other = authority.extract("c@d")
        with pytest.raises(CryptoError):
            unwrap_with_identity_key(authority.params, other, envelope)

    def test_large_payload_fine(self, authority):
        """The envelope hybrid lifts Cocks' 64-byte cap."""
        big = b"q" * 4096
        envelope = wrap_for_identity(authority.params, "a@b", big)
        key = authority.extract("a@b")
        assert unwrap_with_identity_key(authority.params, key,
                                        envelope) == big


class TestFreshnessMonitor:
    def test_monotone_versions_accepted(self):
        monitor = FreshnessMonitor()
        monitor.observe_metadata(5, 1, b"v1")
        monitor.observe_metadata(5, 2, b"v2")
        monitor.observe_metadata(5, 2, b"v2")  # same again is fine
        assert monitor.high_watermark(5) == 2

    def test_rollback_detected(self):
        monitor = FreshnessMonitor()
        monitor.observe_metadata(5, 3, b"v3")
        with pytest.raises(StaleObjectError):
            monitor.observe_metadata(5, 2, b"v2")

    def test_equivocation_detected(self):
        monitor = FreshnessMonitor()
        monitor.observe_metadata(5, 3, b"one content")
        with pytest.raises(StaleObjectError):
            monitor.observe_metadata(5, 3, b"other content")

    def test_forget_resets(self):
        monitor = FreshnessMonitor()
        monitor.observe_metadata(5, 3, b"x")
        monitor.forget(5)
        monitor.observe_metadata(5, 1, b"y")  # fresh start allowed
        assert monitor.tracked_count() == 1

    def test_independent_inodes(self):
        monitor = FreshnessMonitor()
        monitor.observe_metadata(1, 5, b"a")
        monitor.observe_metadata(2, 1, b"b")  # no cross-talk
        assert monitor.high_watermark(1) == 5
        assert monitor.high_watermark(2) == 1
        assert monitor.high_watermark(3) is None


class TestClientFreshness:
    def test_metadata_rollback_detected_on_revisit(self, volume, registry,
                                                   server):
        """The SSP serves a pre-chmod metadata replica: the client that
        saw the newer version refuses it."""
        alice = SharoesFilesystem(volume, registry.user("alice"))
        alice.mount()
        alice.mknod("/f", mode=0o644)
        inode = alice.getattr("/f").inode
        selector = "o"
        old_blob = server.get(meta_blob(inode, selector))
        alice.chmod("/f", 0o600)          # version bump
        alice.cache.clear()
        alice.getattr("/f")               # observes the new version
        server.put(meta_blob(inode, selector), old_blob)  # rollback!
        alice.cache.clear()
        with pytest.raises(StaleObjectError):
            alice.getattr("/f")

    def test_fresh_client_blind_to_rollback(self, volume, registry,
                                            server):
        """First-contact rollback is undetectable (SUNDR's remit)."""
        alice = SharoesFilesystem(volume, registry.user("alice"))
        alice.mount()
        alice.mknod("/g", mode=0o644)
        inode = alice.getattr("/g").inode
        old_blob = server.get(meta_blob(inode, "o"))
        alice.chmod("/g", 0o600)
        server.put(meta_blob(inode, "o"), old_blob)
        newcomer = SharoesFilesystem(volume, registry.user("alice"))
        newcomer.mount()
        assert newcomer.getattr("/g").mode == 0o644  # sees the rollback

    def test_freshness_optional(self, volume, registry, server):
        config = ClientConfig(check_freshness=False)
        alice = SharoesFilesystem(volume, registry.user("alice"),
                                  config=config)
        alice.mount()
        alice.mknod("/h", mode=0o644)
        inode = alice.getattr("/h").inode
        old_blob = server.get(meta_blob(inode, "o"))
        alice.chmod("/h", 0o600)
        alice.cache.clear()
        alice.getattr("/h")
        server.put(meta_blob(inode, "o"), old_blob)
        alice.cache.clear()
        assert alice.getattr("/h").mode == 0o644  # accepted silently
