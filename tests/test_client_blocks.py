"""Block-level file layout: partial updates re-encrypt only touched blocks
(paper section II-B: 'larger files are divided into multiple blocks and
each block is encrypted separately... accommodates updates efficiently').
"""

import pytest

from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume, block_blob_id
from repro.principals.groups import GroupKeyService
from repro.crypto.provider import CryptoProvider

BLOCK = 1024  # small blocks so tests exercise multi-block files cheaply


@pytest.fixture
def small_block_volume(server, registry):
    vol = SharoesVolume(server, registry, block_size=BLOCK)
    vol.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    return vol


@pytest.fixture
def fs(small_block_volume, registry):
    client = SharoesFilesystem(small_block_volume, registry.user("alice"))
    client.mount()
    return client


class TestBlockLayout:
    def test_multiblock_roundtrip(self, fs):
        content = bytes(range(256)) * 20  # 5120 B = 5 blocks
        fs.create_file("/big", content)
        fs.cache.clear()
        assert fs.read_file("/big") == content

    def test_block_count_on_server(self, fs, server):
        fs.create_file("/big", b"z" * (BLOCK * 3 + 1))
        inode = fs.getattr("/big").inode
        assert server.exists(block_blob_id(inode, 3))
        assert not server.exists(block_blob_id(inode, 4))

    def test_exact_block_boundary(self, fs):
        content = b"q" * (BLOCK * 2)
        fs.create_file("/b", content)
        fs.cache.clear()
        assert fs.read_file("/b") == content

    def test_single_byte_file(self, fs):
        fs.create_file("/tiny", b"x")
        fs.cache.clear()
        assert fs.read_file("/tiny") == b"x"

    def test_empty_after_shrink_to_zero(self, fs, server):
        fs.create_file("/f", b"z" * (BLOCK * 2))
        inode = fs.getattr("/f").inode
        fs.write_file("/f", b"")
        assert not server.exists(block_blob_id(inode, 0))
        fs.cache.clear()
        assert fs.read_file("/f") == b""


class TestPartialUpdates:
    def test_middle_block_update_touches_one_blob(self, fs, server):
        content = bytearray(b"a" * (BLOCK * 5))
        fs.create_file("/big", bytes(content))
        server.stats.reset()
        with fs.open("/big", "rw") as handle:
            handle.pwrite(b"XYZ", BLOCK * 2 + 7)  # inside block 2
        assert server.stats.puts == 1
        assert server.stats.puts_by_kind == {"data": 1}
        fs.cache.clear()
        expected = bytes(content[:BLOCK * 2 + 7]) + b"XYZ" + bytes(
            content[BLOCK * 2 + 10:])
        assert fs.read_file("/big") == expected

    def test_first_block_update(self, fs, server):
        fs.create_file("/big", b"a" * (BLOCK * 3))
        server.stats.reset()
        with fs.open("/big", "rw") as handle:
            handle.pwrite(b"HEAD", 0)
        assert server.stats.puts == 1

    def test_append_writes_tail_and_block0(self, fs, server):
        """Appending grows the count, which lives in block 0."""
        fs.create_file("/big", b"a" * (BLOCK * 3))
        server.stats.reset()
        with fs.open("/big", "a") as handle:
            handle.write(b"tail")
        # block 0 (count) + block 3 (new tail) = 2 blobs
        assert server.stats.puts_by_kind["data"] == 2
        fs.cache.clear()
        assert fs.read_file("/big") == b"a" * (BLOCK * 3) + b"tail"

    def test_append_within_last_block(self, fs, server):
        """Append that doesn't grow the block count: block 0 + last."""
        fs.create_file("/f", b"a" * (BLOCK + 10))
        server.stats.reset()
        with fs.open("/f", "a") as handle:
            handle.write(b"b")
        assert server.stats.puts_by_kind["data"] <= 2
        fs.cache.clear()
        assert fs.read_file("/f") == b"a" * (BLOCK + 10) + b"b"

    def test_shrink_deletes_tail_blocks(self, fs, server):
        fs.create_file("/f", b"a" * (BLOCK * 5))
        inode = fs.getattr("/f").inode
        fs.write_file("/f", b"b" * (BLOCK * 2))
        assert server.exists(block_blob_id(inode, 1))
        assert not server.exists(block_blob_id(inode, 2))
        assert not server.exists(block_blob_id(inode, 4))
        fs.cache.clear()
        assert fs.read_file("/f") == b"b" * (BLOCK * 2)

    def test_rewrite_identical_content_uploads_nothing(self, fs, server):
        content = b"stable" * 300
        fs.create_file("/f", content)
        server.stats.reset()
        with fs.open("/f", "rw") as handle:
            handle.pwrite(content, 0)
        assert server.stats.puts == 0

    def test_unchanged_blocks_skipped_on_big_rewrite(self, fs, server):
        blocks = [bytes([i]) * BLOCK for i in range(6)]
        fs.create_file("/f", b"".join(blocks))
        server.stats.reset()
        blocks[4] = b"\xff" * BLOCK
        with fs.open("/f", "rw") as handle:
            handle.pwrite(b"".join(blocks), 0)
        assert server.stats.puts_by_kind["data"] == 1


class TestBlockCaching:
    def test_read_after_write_hits_cache(self, fs, server):
        fs.create_file("/f", b"cached" * 100)
        server.stats.reset()
        assert fs.read_file("/f") == b"cached" * 100
        assert server.stats.gets_by_kind.get("data", 0) == 0

    def test_cold_read_fetches_all_blocks(self, fs, server):
        fs.create_file("/f", b"y" * (BLOCK * 3))
        fs.cache.clear()
        server.stats.reset()
        fs.read_file("/f")
        # 3 data blocks + the root directory table (tables are directory
        # *data* blocks, hence the same blob kind).
        assert server.stats.gets_by_kind["data"] == 4
