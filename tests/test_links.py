"""Symbolic links and hard links."""

import pytest

from repro.errors import (FileExists, FileNotFound, FilesystemError,
                          IsADirectory, PermissionDenied)
from repro.fs.client import SharoesFilesystem


class TestSymlinks:
    def test_create_and_follow(self, alice_fs):
        alice_fs.create_file("/real.txt", b"the content", mode=0o640)
        alice_fs.symlink("/real.txt", "/alias.txt")
        assert alice_fs.read_file("/alias.txt") == b"the content"

    def test_readlink(self, alice_fs):
        alice_fs.create_file("/real.txt", b"x")
        alice_fs.symlink("/real.txt", "/alias.txt")
        assert alice_fs.readlink("/alias.txt") == "/real.txt"

    def test_readlink_on_file_rejected(self, alice_fs):
        alice_fs.create_file("/plain", b"x")
        with pytest.raises(FilesystemError):
            alice_fs.readlink("/plain")

    def test_stat_follows_lstat_does_not(self, alice_fs):
        alice_fs.create_file("/real.txt", b"x", mode=0o640)
        alice_fs.symlink("/real.txt", "/alias.txt")
        assert alice_fs.getattr("/alias.txt").ftype == "file"
        assert alice_fs.lstat("/alias.txt").ftype == "symlink"

    def test_symlink_to_directory(self, alice_fs):
        alice_fs.mkdir("/docs", mode=0o755)
        alice_fs.create_file("/docs/a.txt", b"a")
        alice_fs.symlink("/docs", "/shortcut")
        assert alice_fs.readdir("/shortcut") == ["a.txt"]
        assert alice_fs.read_file("/shortcut/a.txt") == b"a"

    def test_mid_path_symlink_always_followed(self, alice_fs):
        alice_fs.mkdir("/deep", mode=0o755)
        alice_fs.mkdir("/deep/nested", mode=0o755)
        alice_fs.create_file("/deep/nested/f", b"found")
        alice_fs.symlink("/deep/nested", "/jump")
        assert alice_fs.read_file("/jump/f") == b"found"
        # lstat of a path *through* a link still follows the middle hop.
        assert alice_fs.lstat("/jump/f").ftype == "file"

    def test_dangling_symlink(self, alice_fs):
        alice_fs.symlink("/nowhere", "/dangling")
        with pytest.raises(FileNotFound):
            alice_fs.read_file("/dangling")
        assert alice_fs.lstat("/dangling").ftype == "symlink"

    def test_symlink_loop_detected(self, alice_fs):
        alice_fs.symlink("/b", "/a")
        alice_fs.symlink("/a", "/b")
        with pytest.raises(FilesystemError):
            alice_fs.read_file("/a")

    def test_chain_of_links(self, alice_fs):
        alice_fs.create_file("/target", b"end")
        alice_fs.symlink("/target", "/l1")
        alice_fs.symlink("/l1", "/l2")
        alice_fs.symlink("/l2", "/l3")
        assert alice_fs.read_file("/l3") == b"end"

    def test_unlink_symlink_keeps_target(self, alice_fs):
        alice_fs.create_file("/real.txt", b"keep me")
        alice_fs.symlink("/real.txt", "/alias.txt")
        alice_fs.unlink("/alias.txt")
        assert alice_fs.read_file("/real.txt") == b"keep me"
        with pytest.raises(FileNotFound):
            alice_fs.readlink("/alias.txt")

    def test_target_hidden_from_ssp(self, alice_fs, server):
        alice_fs.symlink("/very/secret/location/file.txt", "/l")
        everything = b"".join(server.raw_blobs().values())
        assert b"very/secret/location" not in everything

    def test_relative_target_rejected(self, alice_fs):
        from repro.fs.path import InvalidPath
        with pytest.raises(InvalidPath):
            alice_fs.symlink("relative/target", "/l")

    def test_other_users_follow_links(self, alice_fs, bob_fs):
        alice_fs.create_file("/shared.txt", b"for eng", mode=0o640)
        alice_fs.symlink("/shared.txt", "/link")
        assert bob_fs.read_file("/link") == b"for eng"

    def test_link_readable_but_target_protected(self, alice_fs,
                                                 carol_fs):
        alice_fs.create_file("/private.txt", b"mine", mode=0o600)
        alice_fs.symlink("/private.txt", "/link")
        assert carol_fs.readlink("/link") == "/private.txt"
        with pytest.raises(PermissionDenied):
            carol_fs.read_file("/link")


class TestHardLinks:
    def test_link_shares_content(self, alice_fs):
        alice_fs.create_file("/a", b"shared bytes", mode=0o640)
        alice_fs.link("/a", "/b")
        assert alice_fs.read_file("/b") == b"shared bytes"
        assert (alice_fs.getattr("/a").inode
                == alice_fs.getattr("/b").inode)

    def test_nlink_counts(self, alice_fs):
        alice_fs.create_file("/a", b"x")
        assert alice_fs.getattr("/a").nlink == 1
        alice_fs.link("/a", "/b")
        alice_fs.cache.clear()
        assert alice_fs.getattr("/a").nlink == 2

    def test_write_visible_through_both_names(self, alice_fs):
        alice_fs.create_file("/a", b"v1", mode=0o640)
        alice_fs.link("/a", "/b")
        alice_fs.write_file("/b", b"v2")
        assert alice_fs.read_file("/a") == b"v2"

    def test_unlink_one_name_keeps_data(self, alice_fs):
        alice_fs.create_file("/a", b"persistent", mode=0o640)
        alice_fs.link("/a", "/b")
        alice_fs.cache.clear()
        alice_fs.unlink("/a")
        assert alice_fs.read_file("/b") == b"persistent"
        alice_fs.cache.clear()
        assert alice_fs.getattr("/b").nlink == 1

    def test_unlink_last_name_reclaims(self, alice_fs, server):
        alice_fs.create_file("/a", b"x" * 500, mode=0o640)
        alice_fs.link("/a", "/b")
        alice_fs.cache.clear()
        alice_fs.unlink("/a")
        alice_fs.cache.clear()
        alice_fs.unlink("/b")
        with pytest.raises(FileNotFound):
            alice_fs.read_file("/a")
        with pytest.raises(FileNotFound):
            alice_fs.read_file("/b")

    def test_link_across_directories(self, alice_fs, bob_fs):
        alice_fs.mkdir("/d1", mode=0o755)
        alice_fs.mkdir("/d2", mode=0o750)
        alice_fs.create_file("/d1/f", b"linked", mode=0o640)
        alice_fs.link("/d1/f", "/d2/g")
        assert bob_fs.read_file("/d2/g") == b"linked"

    def test_directory_hardlink_rejected(self, alice_fs):
        alice_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            alice_fs.link("/d", "/d2")

    def test_link_target_exists_rejected(self, alice_fs):
        alice_fs.create_file("/a", b"x")
        alice_fs.create_file("/b", b"y")
        with pytest.raises(FileExists):
            alice_fs.link("/a", "/b")

    def test_non_owner_cannot_link(self, alice_fs, bob_fs):
        """Hard links need the owner's management keys."""
        from repro.errors import KeyAccessError
        alice_fs.mkdir("/open", mode=0o777)
        alice_fs.create_file("/open/f", b"x", mode=0o664)
        with pytest.raises((KeyAccessError, PermissionDenied)):
            bob_fs.link("/open/f", "/open/g")
