"""The verified metadata cache proven correct, twice over.

Part 1 -- **cached-vs-uncached differential** (modeled on
``tests/test_batch_differential.py``): every seeded workload runs with
``ClientConfig(mdcache=True)`` against the strict re-fetch-per-open
reference (``mdcache=False``).  The cache only changes *read* paths --
decrypt/verify consume no entropy -- so under pinned entropy the two
runs must leave **byte-identical** SSP state, show the identical visible
tree and plaintext reads, audit clean, and the cached run must never
issue more requests (strictly fewer on the revalidation-heavy Andrew
run, whose close-to-open boundaries the cache is built to survive).

Part 2 -- **coherence matrix**: every staleness-producing event

    {remote mutation by a second client, lease takeover,
     journal roll-forward, revocation, fork/rollback by the SSP}

crossed with every cache state of the observing client

    {cold, warm, stale}

asserting the two safety properties of docs/CACHING.md cell by cell:

* a cache entry whose version the freshness monitor has refuted is
  **never trusted** (``stale_rejects`` fires, the entry is refetched,
  rollbacks still raise ``StaleObjectError`` -- the watermark survives
  invalidation);
* an entry is **never served after invalidation** (lease loss, epoch
  advancement, explicit coherence events drop it; the next read goes
  back to the SSP).

A *warm* entry served before any invalidation signal is the documented
bounded-staleness window of close-to-open consistency -- allowed, and
distinguished from a stale serve below.  The matrix ends by asserting
zero stale-served cells.
"""

from __future__ import annotations

import random
import secrets
from contextlib import contextmanager

import pytest

from repro.errors import ClientCrashed, LeaseLostError, PermissionDenied
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.freshness import StaleObjectError
from repro.fs.mdcache import _VerifiedView
from repro.fs.permissions import DIRECTORY, AclEntry
from repro.fs.volume import SharoesVolume, meta_blob
from repro.principals.groups import GroupKeyService
from repro.crypto.provider import CryptoProvider
from repro.sim.clock import SimClock
from repro.storage.resilient import CrashingServer
from repro.storage.server import StorageServer
from repro.tools.fsck import VolumeAuditor
from repro.tools.interleave import PauseServer
from repro.workloads.runner import BenchEnv, make_env

_SEED = 0xCACE


# -- part 1: cached-vs-uncached differential ---------------------------------


class _SeededEntropy:
    """Drop-in for the ``secrets`` functions the crypto stack uses."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def token_bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def randbelow(self, n: int) -> int:
        return self._rng.randrange(n)

    def randbits(self, k: int) -> int:
        return self._rng.getrandbits(k)


@contextmanager
def _pinned_entropy(seed: int = _SEED):
    det = _SeededEntropy(seed)
    saved = (secrets.token_bytes, secrets.randbelow, secrets.randbits)
    secrets.token_bytes = det.token_bytes
    secrets.randbelow = det.randbelow
    secrets.randbits = det.randbits
    try:
        yield
    finally:
        secrets.token_bytes, secrets.randbelow, secrets.randbits = saved


@contextmanager
def _forced_config(**overrides):
    """Stamp config fields onto every client a run mounts (workloads
    mount fresh clients with their own configs; the differential axis
    must reach those too)."""
    original = BenchEnv.fresh_client

    def stamped(self, config=None, reset_cost=True):
        config = config if config is not None else ClientConfig()
        for name, value in overrides.items():
            setattr(config, name, value)
        return original(self, config=config, reset_cost=reset_cost)

    BenchEnv.fresh_client = stamped
    try:
        yield
    finally:
        BenchEnv.fresh_client = original


def _sharing_script(env: BenchEnv) -> None:
    """ACL grants, revocation (re-encryption), chown, rename, unlink --
    the mutation mix whose invalidations the cache must survive."""
    fs = env.fs
    payload = b"collaborative document " * 40
    fs.mkdir("/proj", mode=0o755)
    for i in range(6):
        fs.create_file(f"/proj/f{i}", payload + bytes([i]), mode=0o644)
    fs.set_acl("/proj/f0", (AclEntry("bob", 0o4),))
    fs.set_acl("/proj/f1", (AclEntry("bob", 0o6),))
    fs.chmod("/proj/f2", 0o600)
    fs.chown("/proj/f3", "bob")
    fs.set_acl("/proj/f0", ())
    fs.rename("/proj/f4", "/proj/g4")
    fs.unlink("/proj/f5")


def _run_workload(workload: str, env: BenchEnv) -> None:
    if workload == "postmark":
        import itertools

        from repro.workloads import postmark
        postmark._RUN_COUNTER = itertools.count()
        postmark.run_postmark(env, files=30, transactions=40, subdirs=3)
    elif workload == "andrew":
        from repro.workloads.andrew import run_andrew
        run_andrew(env)
    elif workload == "createlist":
        from repro.workloads.createlist import run_create_and_list
        run_create_and_list(env, files=60, dirs=6)
    elif workload == "sharing":
        _sharing_script(env)
    else:  # pragma: no cover
        raise AssertionError(workload)


def _visible_tree(fs, path: str = "/") -> dict:
    """Everything an application can see below ``path``."""
    out = {}
    for name in sorted(fs.readdir(path)):
        child = (path.rstrip("/") + "/" + name)
        stat = fs.getattr(child)
        entry = {"stat": stat}
        if stat.ftype == DIRECTORY:
            entry["children"] = _visible_tree(fs, child)
        else:
            try:
                entry["content"] = fs.read_file(child)
            except Exception as exc:  # symlinks etc.: record the shape
                entry["content"] = type(exc).__name__
        out[name] = entry
    return out


def _differential_run(workload: str, mdcache: bool):
    with _pinned_entropy(), _forced_config(mdcache=mdcache):
        config = ClientConfig(mdcache=mdcache)
        env = make_env("sharoes", config=config, extra_users=("bob",))
        _run_workload(workload, env)
        fs = env.fs
        return {
            "blobs": env.server.raw_blobs(),
            "tree": _visible_tree(fs),
            "requests": fs.request_count,
            "volume": env._volume,
            "fs": fs,
        }


WORKLOADS = ("postmark", "andrew", "createlist", "sharing")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_mdcache_differential(workload):
    cached = _differential_run(workload, mdcache=True)
    strict = _differential_run(workload, mdcache=False)

    # Byte-identical final SSP state: same blob ids, same ciphertext.
    assert set(cached["blobs"]) == set(strict["blobs"])
    assert cached["blobs"] == strict["blobs"]

    # Identical visible semantics (tree, stats, plaintext reads --
    # _visible_tree re-reads every file through both clients).
    assert cached["tree"] == strict["tree"]

    # The cache never *adds* round trips.
    assert cached["requests"] <= strict["requests"]

    # The freshness monitor never fired: nothing the cache served was
    # behind a version this client had proven.
    mdc = cached["fs"].mdcache
    assert mdc is not None and mdc.stale_rejects == 0

    # The cached volume audits clean.
    report = VolumeAuditor(cached["volume"]).audit()
    assert report.clean, report


def test_mdcache_differential_andrew_saves_requests():
    """Andrew's phase boundaries are the whole point: the strict model
    re-fetches every walked component after each ``revalidate()``, the
    verified cache keeps them warm -- strictly fewer round trips."""
    cached = _differential_run("andrew", mdcache=True)
    strict = _differential_run("andrew", mdcache=False)
    assert cached["requests"] < strict["requests"]
    mdc = cached["fs"].mdcache
    assert mdc.hits > 0
    assert mdc.revalidations >= 5  # one per andrew phase boundary


def test_listing_fast_path_serves_readdir():
    """A warm directory listing answers readdir from the
    pre-materialized (names, permission-verdict) set: zero requests."""
    env = make_env("sharoes", config=ClientConfig(mdcache=True))
    fs = env.fs
    fs.mkdir("/d", mode=0o755)
    for i in range(4):
        fs.mknod(f"/d/f{i}", mode=0o644)
    first = fs.readdir("/d")          # builds the listing
    builds = fs.mdcache.listing_builds
    before = fs.request_count
    again = fs.readdir("/d")          # served pre-materialized
    assert again == first
    assert fs.request_count == before
    assert fs.mdcache.listing_hits >= 1
    assert fs.mdcache.listing_builds == builds  # no rebuild

    # A local mutation rewrites the table -> the listing is rebuilt.
    fs.mknod("/d/f4", mode=0o644)
    assert "f4" in fs.readdir("/d")


# -- part 2: the coherence matrix --------------------------------------------

MDCONF = ClientConfig(mdcache=True)

#: matrix accumulator: {(scenario, state): outcome}; asserted complete
#: and free of stale serves at the end of the module.
_MATRIX: dict[tuple[str, str], str] = {}

SCENARIOS = ("remote_mutation", "lease_takeover", "journal_rollforward",
             "revocation", "fork_rollback")
STATES = ("cold", "warm", "stale")

#: outcomes that mean old state was served *after* the client had an
#: invalidation signal or a version proof -- the cells that must be 0.
STALE_SERVED = "STALE-SERVED"


def _record(scenario: str, state: str, outcome: str) -> str:
    _MATRIX[(scenario, state)] = outcome
    return outcome


def _mounted(volume, registry, user_id="alice",
             config=MDCONF, server=None) -> SharoesFilesystem:
    fs = SharoesFilesystem(volume, registry.user(user_id),
                           config=config, server=server)
    fs.mount()
    return fs


class TestRemoteMutation:
    """A second client of the same principal writes; the observer's
    cache entries were verified against the pre-write version."""

    def _setup(self, volume, registry):
        writer = _mounted(volume, registry)
        writer.mkdir("/rm", mode=0o755)
        writer.create_file("/rm/f", b"v1", mode=0o644)
        return writer

    def test_cold(self, volume, registry):
        writer = self._setup(volume, registry)
        writer.write_file("/rm/f", b"v2")
        reader = _mounted(volume, registry)
        assert reader.read_file("/rm/f") == b"v2"
        _record("remote_mutation", "cold", "fresh")

    def test_warm(self, volume, registry):
        writer = self._setup(volume, registry)
        reader = _mounted(volume, registry)
        assert reader.read_file("/rm/f") == b"v1"       # warm
        writer.write_file("/rm/f", b"v2")
        reader.revalidate()                              # entries stay warm
        seen = reader.read_file("/rm/f")
        # Bounded staleness: old-or-new, never garbage.  No
        # invalidation signal has reached this client yet.
        assert seen in (b"v1", b"v2")
        inode = writer.getattr("/rm/f").inode
        reader._invalidate(inode)
        assert reader.read_file("/rm/f") == b"v2"        # post-invalidation
        _record("remote_mutation", "warm",
                "bounded-stale" if seen == b"v1" else "fresh")

    def test_stale(self, volume, registry):
        """A newer version is *proven* to the observer; re-inserting
        the old entry must be refuted, not served."""
        writer = self._setup(volume, registry)
        reader = _mounted(volume, registry)
        node = reader._resolve("/rm/f")                  # warm + keep view
        old_view, inode, sel = node.view, node.inode, node.selector
        writer.write_file("/rm/f", b"v2")
        writer.chmod("/rm/f", 0o640)                     # metadata version bump
        reader._invalidate(inode)
        assert reader.read_file("/rm/f") == b"v2"        # proves new version
        # Adversarially resurrect the superseded entry in the store.
        reader.cache.put(("meta", inode, sel),
                         _VerifiedView(old_view, old_view.attrs.version), 64)
        rejects = reader.mdcache.stale_rejects
        assert reader.getattr("/rm/f").mode == 0o640     # not the old view
        assert reader.mdcache.stale_rejects == rejects + 1
        outcome = "refetched"
        _record("remote_mutation", "stale", outcome)


class TestRevocation:
    """Revocation re-encrypts immediately; the revoked reader's cache
    holds plaintext they legitimately saw -- it may keep serving *that*
    (bounded staleness) but never the post-revocation content, and
    nothing after invalidation."""

    def _setup(self, volume, registry):
        alice = _mounted(volume, registry)
        alice.mkdir("/rv", mode=0o755)
        alice.create_file("/rv/f", b"old-secret", mode=0o644)
        return alice

    def test_cold(self, volume, registry):
        alice = self._setup(volume, registry)
        alice.chmod("/rv/f", 0o600)                      # revoke world
        alice.write_file("/rv/f", b"new-secret")
        carol = _mounted(volume, registry, "carol")
        with pytest.raises(PermissionDenied):
            carol.read_file("/rv/f")
        _record("revocation", "cold", "denied")

    def test_warm(self, volume, registry):
        alice = self._setup(volume, registry)
        carol = _mounted(volume, registry, "carol")
        assert carol.read_file("/rv/f") == b"old-secret"  # warm
        alice.chmod("/rv/f", 0o600)
        alice.write_file("/rv/f", b"new-secret")
        carol.revalidate()
        try:
            seen = carol.read_file("/rv/f")
        except Exception:
            seen = None  # denied / undecryptable: also safe
        # The one forbidden outcome: the *new* plaintext.  Old plaintext
        # (already in carol's hands) inside the staleness window is the
        # documented close-to-open bound, not a leak.
        assert seen != b"new-secret"
        _record("revocation", "warm",
                "bounded-stale" if seen == b"old-secret" else "denied")

    def test_stale(self, volume, registry):
        alice = self._setup(volume, registry)
        carol = _mounted(volume, registry, "carol")
        inode = carol.getattr("/rv/f").inode
        assert carol.read_file("/rv/f") == b"old-secret"
        alice.chmod("/rv/f", 0o600)
        alice.write_file("/rv/f", b"new-secret")
        carol._invalidate(inode)                         # coherence event
        with pytest.raises(PermissionDenied):
            carol.read_file("/rv/f")                     # never re-served
        _record("revocation", "stale", "denied")


class TestForkRollback:
    """An adversarial SSP re-serves a superseded metadata replica."""

    def _setup(self, volume, registry, server):
        alice = _mounted(volume, registry)
        alice.mkdir("/fk", mode=0o755)
        alice.mknod("/fk/f", mode=0o644)
        inode = alice.getattr("/fk/f").inode
        old_blob = server.get(meta_blob(inode, "o"))
        alice.chmod("/fk/f", 0o600)                      # version bump
        return alice, inode, old_blob

    def test_warm(self, volume, registry, server):
        alice, inode, old_blob = self._setup(volume, registry, server)
        assert alice.getattr("/fk/f").mode == 0o600      # warm at v2
        server.put(meta_blob(inode, "o"), old_blob)      # rollback!
        alice.revalidate()
        # The verified cache *defeats* the rollback: the client keeps
        # serving its own newer verified view and never re-reads the
        # forged blob.
        assert alice.getattr("/fk/f").mode == 0o600
        _record("fork_rollback", "warm", "fresh")

    def test_stale(self, volume, registry, server):
        """The load-bearing cell: invalidation drops the cache entry
        but NOT the freshness watermark, so the forced re-fetch detects
        the rollback instead of quietly adopting it."""
        alice, inode, old_blob = self._setup(volume, registry, server)
        assert alice.getattr("/fk/f").mode == 0o600
        server.put(meta_blob(inode, "o"), old_blob)
        alice._invalidate(inode)
        with pytest.raises(StaleObjectError):
            alice.getattr("/fk/f")
        _record("fork_rollback", "stale", "detected")

    def test_cold(self, volume, registry, server):
        """First contact: a fresh client has no watermark -- blind to
        the rollback (SUNDR's remit, see THREAT_MODEL)."""
        alice, inode, old_blob = self._setup(volume, registry, server)
        server.put(meta_blob(inode, "o"), old_blob)
        newcomer = _mounted(volume, registry)
        assert newcomer.getattr("/fk/f").mode == 0o644   # accepted
        _record("fork_rollback", "cold", "blind-first-contact")


_LEASE_S = 5.0
LMDCONF = ClientConfig(journal=True, lease=True, lease_duration_s=_LEASE_S,
                       mdcache=True)


@pytest.fixture
def lease_world(registry):
    """(server, volume, clock) shared by every leased client."""
    clock = SimClock()
    server = StorageServer()
    volume = SharoesVolume(server, registry, clock=clock)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    return server, volume, clock


class TestLeaseTakeover:
    """A successor takes the lease over mid-mutation: the zombie's
    fenced inodes must leave its cache the moment the loss is known."""

    def _zombie_run(self, lease_world, registry):
        server, volume, clock = lease_world
        prep = _mounted(volume, registry, config=LMDCONF)
        prep.mkdir("/lt", mode=0o775)
        prep.unmount()
        bob = _mounted(volume, registry, "bob", config=LMDCONF)

        def hook() -> None:
            clock.advance(_LEASE_S + 1.0)
            bob.create_file("/lt/bob", b"bob-wins")

        pauser = PauseServer(server, pause_at=3, hook=hook)
        alice = _mounted(volume, registry, config=LMDCONF, server=pauser)
        assert alice.readdir("/lt") == []                # warm /lt
        with pytest.raises(LeaseLostError):
            alice.create_file("/lt/za", b"alice-zombie")
        return volume, alice

    def test_warm(self, lease_world, registry):
        volume, alice = self._zombie_run(lease_world, registry)
        # The LeaseLostError invalidated every fenced inode: the next
        # readdir goes back to the SSP and sees the successor's write.
        assert "bob" in alice.readdir("/lt")
        assert alice.read_file("/lt/bob") == b"bob-wins"
        assert VolumeAuditor(volume).audit().clean
        _record("lease_takeover", "warm", "fresh")

    def test_stale(self, lease_world, registry):
        volume, alice = self._zombie_run(lease_world, registry)
        # The pre-takeover entries must actually be gone from the store
        # -- not merely shadowed -- so nothing can resurrect them.
        inode = alice.getattr("/lt").inode
        for sel in ("o", "g", "w"):
            assert alice.cache.get(("table", inode, sel)) is None
            assert alice.cache.get(("listing", inode, sel)) is None
        assert alice.mdcache.invalidations >= 1
        assert "za" not in alice.readdir("/lt")
        _record("lease_takeover", "stale", "invalidated")

    def test_cold(self, lease_world, registry):
        _volume, _alice = self._zombie_run(lease_world, registry)
        probe = _mounted(_volume, registry, config=LMDCONF)
        assert probe.read_file("/lt/bob") == b"bob-wins"
        assert "za" not in probe.readdir("/lt")
        _record("lease_takeover", "cold", "fresh")


JMDCONF = ClientConfig(journal=True, mdcache=True)


class TestJournalRollForward:
    """A crashed client's journaled intent is rolled forward at the
    next mount; observers' caches span the recovery boundary."""

    def _crash(self, volume, registry):
        prep = _mounted(volume, registry, config=JMDCONF)
        prep.mkdir("/jr", mode=0o755)
        crasher = CrashingServer(volume.server, crash_after=6)
        dying = _mounted(volume, registry, config=JMDCONF, server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/jr/f", b"rolled-forward")
        return prep

    def test_cold(self, volume, registry):
        self._crash(volume, registry)
        successor = _mounted(volume, registry, config=JMDCONF)  # recovers
        assert successor.read_file("/jr/f") == b"rolled-forward"
        assert VolumeAuditor(volume).audit().clean
        _record("journal_rollforward", "cold", "fresh")

    def test_warm(self, volume, registry):
        observer = self._crash(volume, registry)   # warmed /jr pre-crash
        assert observer.readdir("/jr") == []       # bounded-stale window
        successor = _mounted(volume, registry, config=JMDCONF)
        assert successor.read_file("/jr/f") == b"rolled-forward"
        # Still no invalidation signal at the observer: old listing is
        # the close-to-open bound, not a stale serve.
        names = observer.readdir("/jr")
        assert names in ([], ["f"])
        _record("journal_rollforward", "warm",
                "bounded-stale" if names == [] else "fresh")

    def test_stale(self, volume, registry):
        observer = self._crash(volume, registry)
        assert observer.readdir("/jr") == []
        _mounted(volume, registry, config=JMDCONF)  # rolls intent forward
        inode = observer.getattr("/jr").inode
        observer._invalidate(inode)                # coherence event
        assert observer.readdir("/jr") == ["f"]    # never the old listing
        assert observer.read_file("/jr/f") == b"rolled-forward"
        _record("journal_rollforward", "stale", "fresh")


def test_matrix_complete_and_no_stale_serves():
    # Runs last in file order, after every matrix cell above.
    """Every {scenario} x {cold, warm, stale} cell ran, and none of
    them served a cache entry past an invalidation or version proof."""
    missing = [(s, st) for s in SCENARIOS for st in STATES
               if (s, st) not in _MATRIX]
    assert not missing, f"matrix cells never ran: {missing}"
    stale_served = {cell: out for cell, out in _MATRIX.items()
                    if out == STALE_SERVED}
    assert not stale_served, stale_served
