"""Differential harness: pipelining changes *when*, never *what*.

Every seeded workload runs twice -- ``ClientConfig(concurrency=8)``
(the request scheduler overlaps independent wire frames) against
``concurrency=0`` (the sequential reference execution).  The runs must
be indistinguishable to everyone except the wall clock:

* the final SSP state is **byte-identical** (same blob ids, same
  ciphertext bytes) -- the scheduler sits below the crypto layer, so it
  may only reorder wire timing, never the bytes or their order at the
  SSP;
* the visible filesystem semantics are identical (same tree, same
  stats, same file contents);
* fsck audits the concurrent volume clean;
* the concurrent run issues **at most** as many wire requests, and is
  never *slower*; on the RTT-bound postmark mix it must be strictly
  faster (the headline claim of BENCH_10, gated at >= 25% there).

The entropy-pinning trick is the same as the batching differential
(tests/test_batch_differential.py, which this module imports its
helpers from): both runs swap ``secrets`` for a seeded generator, so
they mint identical keys, IVs, and signature nonces in the same order.
That only works because staging happens strictly below seal/sign --
which is itself part of what these tests prove.
"""

from __future__ import annotations

import pytest

from repro.fs.client import ClientConfig
from repro.tools.fsck import VolumeAuditor
from repro.workloads.runner import BenchEnv, flush_client, make_env

from tests.test_batch_differential import (WORKLOADS, _forced_config,
                                           _pinned_entropy, _run_workload,
                                           _visible_tree)


def _concurrency_run(workload: str, concurrency: int,
                     flaky_p: float = 0.0) -> dict:
    with _pinned_entropy(), _forced_config(concurrency=concurrency):
        config = ClientConfig(concurrency=concurrency)
        env = make_env("sharoes", config=config, extra_users=("bob",),
                       flaky_p=flaky_p, flaky_seed=77)
        _run_workload(workload, env)
        fs = env.fs
        flush_client(fs)
        sched = getattr(fs, "scheduler", None)
        return {
            "blobs": env.server.raw_blobs(),
            "tree": _visible_tree(fs),
            "requests": fs.request_count,
            "wall": env.cost.clock.now,
            "volume": env._volume,
            "scheduler": sched.snapshot() if sched is not None else None,
        }


@pytest.mark.parametrize("workload", WORKLOADS)
def test_concurrency_differential(workload):
    concurrent = _concurrency_run(workload, concurrency=8)
    sequential = _concurrency_run(workload, concurrency=0)

    # Byte-identical final SSP state: same blob ids, same ciphertext.
    assert set(concurrent["blobs"]) == set(sequential["blobs"])
    assert concurrent["blobs"] == sequential["blobs"]

    # Identical visible semantics.
    assert concurrent["tree"] == sequential["tree"]

    # The reference run mounts no scheduler at all...
    assert sequential["scheduler"] is None
    # ...the concurrent one actually pipelined something,
    assert concurrent["scheduler"]["flushed_ops"] > 0
    # ...without leaving anything staged past the barrier,
    assert concurrent["scheduler"]["queue_depth"] == 0
    # ...and never paid more wire requests or simulated seconds.
    assert concurrent["requests"] <= sequential["requests"]
    assert concurrent["wall"] <= sequential["wall"]

    # The concurrent volume audits clean.
    report = VolumeAuditor(concurrent["volume"]).audit()
    assert report.clean, report


def test_postmark_strictly_faster():
    """On the RTT-bound transaction mix the overlap must show up as a
    strict wall-clock win, not a tie."""
    concurrent = _concurrency_run("postmark", concurrency=8)
    sequential = _concurrency_run("postmark", concurrency=0)
    assert concurrent["blobs"] == sequential["blobs"]
    assert concurrent["wall"] < sequential["wall"]


def test_postmark_speedup_gate():
    """The BENCH_10 acceptance bar: >= 25% postmark wall-clock
    reduction at concurrency=8, at a scale where the transaction mix
    (not setup) dominates -- the same bar CI gates via
    ``repro bench --diff --overlap-gate``."""
    from repro.workloads import postmark

    def run(concurrency: int) -> float:
        import itertools
        with _pinned_entropy(), _forced_config(concurrency=concurrency):
            env = make_env("sharoes",
                           config=ClientConfig(concurrency=concurrency))
            postmark._RUN_COUNTER = itertools.count()
            result = postmark.run_postmark(env, files=80,
                                           transactions=200, subdirs=5)
            return result.total_seconds

    sequential = run(0)
    concurrent = run(8)
    speedup = (sequential - concurrent) / sequential
    assert speedup >= 0.25, (
        f"postmark concurrency=8 saved only {speedup:.1%} "
        f"({sequential:.1f}s -> {concurrent:.1f}s); the PR's claim "
        f"is >= 25%")


@pytest.mark.parametrize("workload", ("postmark", "sharing"))
def test_flaky_concurrency_reconciles(workload):
    """Fault injection composes: a seeded flaky SSP under a pipelined
    client (retries ride the transport's batch partial-retry path)
    still converges to the exact bytes of the undisturbed sequential
    run, and fsck stays clean."""
    flaky = _concurrency_run(workload, concurrency=8, flaky_p=0.05)
    reference = _concurrency_run(workload, concurrency=0)

    assert flaky["blobs"] == reference["blobs"]
    assert flaky["tree"] == reference["tree"]
    report = VolumeAuditor(flaky["volume"]).audit()
    assert report.clean, report
