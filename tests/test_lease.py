"""Per-inode signed leases with fencing epochs: the unit contracts.

The full multi-client schedule sweep lives in test_interleave.py; this
file covers the lease subsystem's own guarantees -- the signed record
codec (tamper / prefix-contradiction rejection), the acquire / renew /
release / takeover state machine, CAS race handling, epoch-chain
rollback detection (an SSP re-serving an old lease never grants one),
roll-forward at takeover, fence supersession of stranded intents, the
end-to-end zombie fencing path, the VSL journal-sequence binding, and
cost parity for default (non-leased) clients.
"""

from __future__ import annotations

import pytest

from repro.crypto.provider import CryptoProvider
from repro.errors import (CasConflictError, ClientCrashed, IntegrityError,
                          LeaseHeldError, LeaseLostError, StaleEpochError)
from repro.fs import journal
from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.consistency import ForkDetected
from repro.fs.freshness import StaleObjectError
from repro.fs.lease import LeaseManager, LeaseRecord, break_record
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.sim.clock import SimClock
from repro.storage.blobs import BlobId, journal_blob, lease_blob
from repro.storage.resilient import CrashingServer, ServerWrapper
from repro.storage.server import StorageServer, fence_epoch
from repro.storage.wire import RemoteStorageClient, SspServer
from repro.tools.fsck import VolumeAuditor
from repro.tools.interleave import PauseServer

_LEASE_S = 5.0

LCONF = ClientConfig(journal=True, lease=True, lease_duration_s=_LEASE_S,
                     cache_bytes=0)


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def shared(registry, clock):
    """(server, volume) whose clock is shared by every leased client."""
    server = StorageServer()
    volume = SharoesVolume(server, registry, clock=clock)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    return server, volume


def make_manager(registry, server, clock, user_id="alice", escrow=None,
                 duration=_LEASE_S) -> LeaseManager:
    return LeaseManager(registry.user(user_id), registry.directory,
                        server, clock, duration_s=duration,
                        provider=CryptoProvider(), escrow=escrow)


def make_leased(volume, registry, user_id="alice", server=None,
                consistency=False) -> SharoesFilesystem:
    fs = SharoesFilesystem(volume, registry.user(user_id),
                           config=LCONF, server=server)
    if consistency:
        fs.enable_consistency_log()
    fs.mount()
    return fs


# -- record codec -------------------------------------------------------------


class TestRecordCodec:
    def test_roundtrip_and_verify(self, registry, clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock)
        record = mgr.acquire(9)
        raw = server.get(lease_blob(9))
        back = LeaseRecord.from_bytes(raw)
        assert back == record
        assert back.epoch == 1 and back.holder == "alice"
        back.verify(registry.directory)  # does not raise
        assert fence_epoch(raw) == 1

    def test_tampered_signature_rejected(self, registry, clock):
        server = StorageServer()
        make_manager(registry, server, clock).acquire(9)
        raw = bytearray(server.get(lease_blob(9)))
        raw[-1] ^= 1
        record = LeaseRecord.from_bytes(bytes(raw))
        with pytest.raises(IntegrityError):
            record.verify(registry.directory)

    def test_prefix_contradicting_signed_epoch_rejected(self, registry,
                                                        clock):
        """The SSP acts on the plaintext prefix; a prefix that disagrees
        with the signed epoch is SSP tampering, caught at decode."""
        server = StorageServer()
        make_manager(registry, server, clock).acquire(9)
        raw = bytearray(server.get(lease_blob(9)))
        raw[7] ^= 0xFF  # bump the plaintext epoch prefix only
        with pytest.raises(IntegrityError, match="contradicts"):
            LeaseRecord.from_bytes(bytes(raw))

    def test_truncated_blob_rejected(self):
        with pytest.raises(IntegrityError):
            LeaseRecord.from_bytes(b"\x00\x01")


# -- state machine ------------------------------------------------------------


class TestStateMachine:
    def test_renewal_bumps_epoch(self, registry, clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock, duration=1.0)
        assert mgr.acquire(5).epoch == 1
        clock.advance(2.0)  # expired: re-acquire renews our own lease
        assert mgr.acquire(5).epoch == 2
        assert mgr.held_epoch(5) == 2

    def test_release_writes_released_record(self, registry, clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock)
        mgr.acquire(5)
        mgr.release(5)
        record = LeaseRecord.from_bytes(server.get(lease_blob(5)))
        assert record.released and record.epoch == 2
        assert mgr.held_epoch(5) is None
        # Another client may take a released lease over immediately.
        bob = make_manager(registry, server, clock, "bob")
        assert bob.acquire(5).epoch == 3

    def test_unexpired_lease_blocks_peers(self, registry, clock):
        server = StorageServer()
        make_manager(registry, server, clock).acquire(5)
        bob = make_manager(registry, server, clock, "bob")
        with pytest.raises(LeaseHeldError) as err:
            bob.acquire(5)
        assert err.value.holder == "alice"

    def test_takeover_needs_escrow(self, registry, clock):
        """Without the enterprise key escrow, a dead client's journal
        cannot be rolled forward -- takeover is refused, not lossy."""
        server = StorageServer()
        make_manager(registry, server, clock, duration=1.0).acquire(5)
        clock.advance(2.0)
        bob = make_manager(registry, server, clock, "bob", escrow=None)
        with pytest.raises(LeaseHeldError, match="escrow"):
            bob.acquire(5)

    def test_takeover_rolls_dead_holders_journal_forward(self, registry,
                                                         clock):
        """Committed-but-unapplied work of the dead client lands before
        the epoch is bumped past it."""
        server = StorageServer()
        provider = CryptoProvider()
        alice = registry.user("alice")
        mgr = make_manager(registry, server, clock, duration=1.0)
        mgr.acquire(99)
        target = BlobId("data", 99, "b0")
        server.put(journal_blob("alice"), journal.seal_journal(
            provider, alice, [journal.IntentRecord(
                seq=1, op="x", calls=(journal.StagedCall(
                    journal.PUT, ((target, b"pending-payload"),)),))]))
        clock.advance(2.0)
        bob = make_manager(registry, server, clock, "bob",
                           escrow=registry.user)
        taken = bob.acquire(99)
        assert taken.epoch == 2 and taken.holder == "bob"
        assert server.get(target) == b"pending-payload"
        assert journal.open_journal(provider, alice,
                                    server.get(journal_blob("alice"))) == []

    def test_lost_lease_detected_at_reacquire(self, registry, clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock, duration=1.0)
        mgr.acquire(5)
        clock.advance(2.0)
        bob = make_manager(registry, server, clock, "bob",
                           escrow=registry.user)
        bob.acquire(5)
        with pytest.raises(LeaseLostError):
            mgr.acquire(5)
        assert mgr.held_epoch(5) is None

    def test_cas_race_is_reinspected(self, registry, clock):
        """Losing the acquire CAS re-inspects the winner's record (and
        yields LeaseHeldError while it is unexpired), no re-fetch."""
        server = StorageServer()
        bob = make_manager(registry, server, clock, "bob")

        class RaceOnce(ServerWrapper):
            def __init__(self, inner):
                super().__init__(inner)
                self.racer = lambda: bob.acquire(5)

            def put_if(self, blob_id, payload, expected):
                if self.racer is not None:
                    racer, self.racer = self.racer, None
                    racer()
                self.inner.put_if(blob_id, payload, expected)

        alice = make_manager(registry, RaceOnce(server), clock)
        with pytest.raises(LeaseHeldError) as err:
            alice.acquire(5)
        assert err.value.holder == "bob"

    def test_break_record_is_verifiable_released_successor(self, registry,
                                                           clock):
        server = StorageServer()
        make_manager(registry, server, clock).acquire(5)
        prior = LeaseRecord.from_bytes(server.get(lease_blob(5)))
        broken = break_record(prior, registry.user("alice"))
        assert broken.released and broken.epoch == prior.epoch + 1
        broken.verify(registry.directory)


# -- epoch-chain rollback (satellite: stale lease never granted) --------------


class TestChainRollback:
    def test_rolled_back_lease_blob_never_grants(self, registry, clock):
        """An SSP re-serving an older, validly-signed lease record is a
        chain rollback: StaleObjectError, never a stale grant."""
        server = StorageServer()
        mgr = make_manager(registry, server, clock)
        mgr.acquire(7)
        old_raw = server.get(lease_blob(7))  # epoch 1, valid signature
        mgr.release(7)                       # chain advances to epoch 2
        server.put(lease_blob(7), old_raw)   # the SSP rolls back
        with pytest.raises(StaleObjectError):
            mgr.acquire(7)

    def test_equivocating_lease_blob_detected(self, registry, clock):
        """Two different validly-signed byte-strings claiming the same
        epoch: the SSP cannot show one chain link to one client and a
        different one to another without being caught."""
        server = StorageServer()
        mgr = make_manager(registry, server, clock, duration=1.0)
        mgr.acquire(7)
        prior = LeaseRecord.from_bytes(server.get(lease_blob(7)))
        clock.advance(2.0)
        bob = make_manager(registry, server, clock, "bob",
                           escrow=registry.user, duration=1.0)
        bob.acquire(7)  # epoch 2, bob's record, observed by bob
        # A second, different epoch-2 record with a valid signature
        # (the escrow-built released successor of epoch 1).
        forged = break_record(prior, registry.user("alice"))
        assert forged.epoch == 2
        server.put(lease_blob(7), forged.to_bytes())
        clock.advance(2.0)  # bob's hold lapses; he must re-read
        with pytest.raises(StaleObjectError):
            bob.acquire(7)


# -- fence supersession (stranded intents vs. takeover) ----------------------


class TestFenceSupersession:
    def test_stale_fenced_intent_is_skipped(self, registry, clock):
        """A journaled intent whose recorded fences lag the lease chain
        was superseded by a takeover: roll_forward drops it instead of
        resurrecting the lost update."""
        server = StorageServer()
        provider = CryptoProvider()
        alice = registry.user("alice")
        make_manager(registry, server, clock).acquire(50)  # chain at 1
        target = BlobId("data", 50, "b0")
        server.put(journal_blob("alice"), journal.seal_journal(
            provider, alice, [journal.IntentRecord(
                seq=3, op="x", calls=(journal.StagedCall(
                    journal.PUT, ((target, b"superseded"),)),),
                fences=((50, 0),))]))  # epoch 0 < current epoch 1
        replayed = journal.roll_forward(server, provider, alice)
        assert replayed == []
        assert not server.exists(target)
        assert journal.open_journal(provider, alice,
                                    server.get(journal_blob("alice"))) == []

    def test_current_fenced_intent_is_replayed(self, registry, clock):
        server = StorageServer()
        provider = CryptoProvider()
        alice = registry.user("alice")
        make_manager(registry, server, clock).acquire(50)
        target = BlobId("data", 50, "b0")
        record = journal.IntentRecord(
            seq=3, op="x", calls=(journal.StagedCall(
                journal.PUT, ((target, b"live"),)),),
            fences=((50, 1),))
        server.put(journal_blob("alice"),
                   journal.seal_journal(provider, alice, [record]))
        assert not journal.fences_stale(server, record)
        assert journal.roll_forward(server, provider, alice) == [record]
        assert server.get(target) == b"live"


# -- fenced writes at the SSP and over the wire -------------------------------


class TestSspPrimitives:
    def test_put_if_create_and_conflict(self):
        server = StorageServer()
        bid = lease_blob(1)
        server.put_if(bid, b"\x00" * 8 + b"a", expected=None)
        with pytest.raises(CasConflictError) as err:
            server.put_if(bid, b"\x00" * 8 + b"b", expected=b"wrong")
        assert err.value.current == b"\x00" * 8 + b"a"

    def test_fenced_write_below_epoch_rejected(self):
        server = StorageServer()
        fence = lease_blob(1)
        server.put(fence, (5).to_bytes(8, "big") + b"rec")
        target = BlobId("data", 1, "b0")
        with pytest.raises(StaleEpochError):
            server.put_fenced(target, b"x", fence, epoch=4)
        server.put_fenced(target, b"x", fence, epoch=5)
        assert server.get(target) == b"x"
        with pytest.raises(StaleEpochError):
            server.delete_fenced(target, fence, epoch=3)
        server.delete_fenced(target, fence, epoch=6)
        assert not server.exists(target)

    def test_cas_and_fenced_ops_cross_the_wire(self):
        """put_if / put_fenced / delete_fenced survive the TCP proxy,
        conflicts and fence rejections included."""
        backend = StorageServer()
        ssp = SspServer(backend).start()
        host, port = ssp.address
        client = RemoteStorageClient(host, port)
        try:
            bid = lease_blob(3)
            payload = (1).to_bytes(8, "big") + b"r1"
            client.put_if(bid, payload, expected=None)
            with pytest.raises(CasConflictError) as err:
                client.put_if(bid, payload, expected=b"nope")
            assert err.value.current == payload
            nxt = (2).to_bytes(8, "big") + b"r2"
            client.put_if(bid, nxt, expected=payload)
            assert backend.get(bid) == nxt
            target = BlobId("data", 3, "b0")
            with pytest.raises(StaleEpochError):
                client.put_fenced(target, b"x", bid, epoch=1)
            client.put_fenced(target, b"x", bid, epoch=2)
            with pytest.raises(StaleEpochError):
                client.delete_fenced(target, bid, epoch=0)
            client.delete_fenced(target, bid, epoch=2)
            assert not backend.exists(target)
        finally:
            client.close()
            ssp.stop()


# -- the zombie path, end to end ----------------------------------------------


class TestZombie:
    def test_zombie_write_is_fenced_out_and_rolls_back(self, shared,
                                                       registry, clock):
        """The deterministic zombie: alice pauses mid-create, her lease
        expires and bob takes it over; on resume her fenced writes are
        rejected (LeaseLostError), her op rolls back cleanly, bob's
        survives, and a retry by the no-longer-zombie succeeds."""
        server, volume = shared
        prep = make_leased(volume, registry, "alice")
        prep.mkdir("/d", mode=0o775)
        prep.unmount()
        bob = make_leased(volume, registry, "bob")

        def hook() -> None:
            clock.advance(_LEASE_S + 1.0)
            bob.create_file("/d/zb", b"bob-wins")

        pauser = PauseServer(server, pause_at=3, hook=hook)
        alice = make_leased(volume, registry, "alice", server=pauser)
        with pytest.raises(LeaseLostError):
            alice.create_file("/d/za", b"alice-zombie")

        probe = SharoesFilesystem(volume, registry.user("alice"),
                                  config=ClientConfig(cache_bytes=0))
        probe.mount()
        assert probe.read_file("/d/zb") == b"bob-wins"
        assert "za" not in probe.readdir("/d")
        report = VolumeAuditor(volume).audit()
        assert report.clean and not report.orphaned_blobs
        assert alice.metrics.snapshot()["lease.lost"] >= 1

        # The zombie is just a slow client: its retry re-serializes.
        alice.create_file("/d/za", b"alice-retry")
        assert alice.read_file("/d/za") == b"alice-retry"
        assert probe.read_file("/d/zb") == b"bob-wins"

    def test_crashed_holder_is_taken_over_with_roll_forward(
            self, shared, registry, clock):
        """A client dying mid-create strands a journaled intent; the
        next writer waits out the lease, replays it, and both effects
        land -- no lost update, no orphans."""
        server, volume = shared
        prep = make_leased(volume, registry, "alice")
        prep.mkdir("/d", mode=0o775)
        prep.unmount()
        crasher = CrashingServer(server, crash_after=4)
        dying = make_leased(volume, registry, "alice", server=crasher)
        with pytest.raises(ClientCrashed):
            dying.create_file("/d/dead", b"committed-before-crash")

        clock.advance(_LEASE_S + 1.0)
        bob = make_leased(volume, registry, "bob")
        bob.create_file("/d/bob", b"successor")

        probe = SharoesFilesystem(volume, registry.user("alice"),
                                  config=ClientConfig(cache_bytes=0))
        probe.mount()
        assert probe.read_file("/d/bob") == b"successor"
        assert probe.read_file("/d/dead") == b"committed-before-crash"
        report = VolumeAuditor(volume).audit()
        assert report.clean and not report.orphaned_blobs


# -- VSL journal binding (satellite: stale committed journal) -----------------


class _JournalTap(ServerWrapper):
    """Records every version of one user's journal blob as it is put."""

    def __init__(self, inner, user_id: str):
        super().__init__(inner)
        self.jid = journal_blob(user_id)
        self.history: list[bytes] = []

    def put(self, blob_id, payload):
        if blob_id == self.jid:
            self.history.append(payload)
        self.inner.put(blob_id, payload)


class TestVslJournalBinding:
    def test_reserved_committed_journal_forks(self, shared, registry):
        """An SSP re-serving an old committed journal (to resurrect an
        undone mutation) is caught at mount: the version statement's
        journal watermark says those intents already committed."""
        server, volume = shared
        tap = _JournalTap(server, "alice")
        fs = make_leased(volume, registry, "alice", server=tap,
                         consistency=True)
        fs.create_file("/a", b"created")   # journal append captured
        fs.unlink("/a")                    # then undone
        fs.publish_statement()             # watermark covers both
        fs.unmount()

        # The attack: serve the create's pending journal again.
        pending = tap.history[0]
        server.put(journal_blob("alice"), pending)
        with pytest.raises(ForkDetected, match="journal"):
            make_leased(volume, registry, "alice", consistency=True)

        # Nothing was replayed: /a stays deleted.
        probe = SharoesFilesystem(volume, registry.user("alice"),
                                  config=ClientConfig(cache_bytes=0))
        probe.mount()
        assert "a" not in probe.readdir("/")

    def test_fresh_pending_journal_still_recovers(self, shared, registry):
        """The binding only rejects journals at-or-below the committed
        watermark; a genuinely newer pending intent replays normally."""
        server, volume = shared
        fs = make_leased(volume, registry, "alice", consistency=True)
        fs.create_file("/keep", b"x")
        fs.publish_statement()
        fs.unmount()
        crasher = CrashingServer(server, crash_after=8)
        dying = make_leased(volume, registry, "alice", server=crasher,
                            consistency=True)
        with pytest.raises(ClientCrashed):
            dying.create_file("/recovered", b"later-intent")
        fs2 = make_leased(volume, registry, "alice", consistency=True)
        assert fs2.read_file("/recovered") == b"later-intent"


# -- cost parity (leases off by default) --------------------------------------


class TestCostParity:
    def test_default_client_issues_no_lease_or_journal_traffic(
            self, volume, registry):
        """ClientConfig() keeps the paper's Figure 8/9 cost model
        byte-identical: no lease or journal blobs, no CAS ops, no
        lease metrics -- the subsystem is invisible until opted into."""
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig())
        fs.mount()
        fs.mkdir("/plain")
        fs.create_file("/plain/f", b"y" * 300)
        fs.rename("/plain/f", "/plain/g")
        fs.read_file("/plain/g")
        fs.unlink("/plain/g")
        assert fs.lease is None
        kinds = {blob_id.kind for blob_id in volume.server.raw_blobs()}
        assert "lease" not in kinds
        assert "journal" not in kinds
        snapshot = fs.metrics.snapshot()
        assert not any(name.startswith("lease.") for name in snapshot)

    def test_leased_traffic_is_confined_to_new_blob_kinds(
            self, shared, registry):
        """Leases add lease/journal blobs but never change what object
        blobs an op writes -- the cost deltas are additive, auditable
        kinds, not perturbations of the paper's object layout."""
        server, volume = shared
        fs = make_leased(volume, registry, "alice")
        fs.create_file("/f", b"z" * 300)
        fs.unmount()
        kinds = {blob_id.kind for blob_id in server.raw_blobs()}
        assert "lease" in kinds and "journal" in kinds


# -- lease contention backoff (ClientConfig surface) --------------------------


def _waiting_config(**overrides) -> ClientConfig:
    return ClientConfig(journal=True, lease=True,
                        lease_duration_s=_LEASE_S, cache_bytes=0,
                        **overrides)


class TestLeaseWaitRetry:
    def test_default_is_fail_fast(self, shared, registry, clock):
        """lease_wait_attempts=0 preserves the original contract: a
        held lease surfaces LeaseHeldError on the first acquire."""
        server, volume = shared
        fs = make_leased(volume, registry)
        fs.create_file("/f", b"v1")
        inode = fs.getattr("/f").inode
        make_manager(registry, server, clock, "bob").acquire(inode)
        with pytest.raises(LeaseHeldError) as err:
            fs.write_file("/f", b"v2")
        assert err.value.holder == "bob"
        assert fs.metrics.counter("lease.waits").value == 0

    def test_backoff_waits_out_expiring_holder(self, shared, registry,
                                               clock):
        """With lease_wait_attempts set, the client backs off on the
        simulated clock until the holder's lease expires, then takes
        over (rolling any stranded journal forward) and writes."""
        server, volume = shared
        config = _waiting_config(lease_wait_attempts=6,
                                 lease_wait_base_s=0.25,
                                 lease_wait_max_s=2.0)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=config)
        fs.mount()
        fs.create_file("/f", b"v1")
        inode = fs.getattr("/f").inode
        # A short-lived peer grabs the lease and then goes silent.
        make_manager(registry, server, clock, "bob",
                     duration=1.0).acquire(inode)
        before = clock.now
        fs.write_file("/f", b"v2")  # waits ~0.25+0.5+1.0s, then takes over
        assert fs.read_file("/f") == b"v2"
        waits = fs.metrics.counter("lease.waits").value
        assert waits >= 2  # genuinely backed off more than once
        assert clock.now - before >= 1.0  # the holder's term elapsed
        report = VolumeAuditor(volume).audit()
        assert report.clean, report.summary()

    def test_exhausted_attempts_reraise(self, shared, registry, clock):
        """A holder that outlives every backoff window still wins: the
        waiter re-raises the typed error after its attempt budget."""
        server, volume = shared
        config = _waiting_config(lease_wait_attempts=2,
                                 lease_wait_base_s=0.1)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=config)
        fs.mount()
        fs.create_file("/f", b"v1")
        inode = fs.getattr("/f").inode
        make_manager(registry, server, clock, "bob",
                     duration=3600.0).acquire(inode)
        with pytest.raises(LeaseHeldError):
            fs.write_file("/f", b"v2")
        assert fs.metrics.counter("lease.waits").value == 2

    def test_shared_clock_charges_wait_as_other(self, shared, registry,
                                                clock):
        """When the cost model shares the lease clock, backoff is
        charged (OTHER bucket) instead of silently advancing time."""
        from repro.sim.costmodel import CostModel
        from repro.sim.profiles import FREE
        server, volume = shared
        cost = CostModel(FREE, clock=clock)
        config = _waiting_config(lease_wait_attempts=6,
                                 lease_wait_base_s=0.25)
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               cost_model=cost, config=config)
        fs.mount()
        fs.create_file("/f", b"v1")
        inode = fs.getattr("/f").inode
        make_manager(registry, server, clock, "bob",
                     duration=1.0).acquire(inode)
        other_before = cost.totals.other
        fs.write_file("/f", b"v2")
        assert cost.totals.other - other_before >= 1.0


# -- batched lease renewal ----------------------------------------------------


class TestBatchedRenewal:
    def test_renew_all_bumps_every_epoch_in_one_frame(self, registry,
                                                      clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock)
        before = {}
        for inode in (3, 4, 5):
            before[inode] = mgr.acquire(inode).epoch
        renewed, lost, up, down = mgr.renew_all()
        assert renewed == [3, 4, 5] and lost == []
        assert up > 0 and down == 0
        for inode in (3, 4, 5):
            assert mgr.held_epoch(inode) == before[inode] + 1
            # the mechanical fence prefix on the SSP moved with it
            assert fence_epoch(server.get(lease_blob(inode))) == \
                before[inode] + 1

    def test_renew_all_with_nothing_held_is_free(self, registry, clock):
        server = StorageServer()
        mgr = make_manager(registry, server, clock)
        assert mgr.renew_all() == ([], [], 0, 0)
        assert not server.raw_blobs()  # nothing crossed the wire

    def test_renew_all_reports_stolen_lease_lost(self, registry, clock):
        """Per-lease conflicts are independent: the inode a successor
        advanced past is dropped and reported; the rest renew."""
        server = StorageServer()
        mgr = make_manager(registry, server, clock, duration=1.0)
        for inode in (7, 8):
            mgr.acquire(inode)
        clock.advance(2.0)  # both expired; bob takes over only one
        bob = make_manager(registry, server, clock, "bob",
                           escrow=registry.user)
        bob.acquire(8)
        renewed, lost, up, down = mgr.renew_all()
        assert renewed == [7] and lost == [8]
        assert down > 0  # the winner's record rode back in the conflict
        assert mgr.held_epoch(8) is None
        assert mgr.held_epoch(7) is not None

    def test_fs_renew_leases_is_one_round_trip(self, shared, registry):
        """A long-running client renews N held leases for the price of
        one request, observed as one batch frame of N sub-ops."""
        server, volume = shared
        fs = make_leased(volume, registry)
        fs.create_file("/f", b"v1")
        fs.create_file("/g", b"v2")
        inodes = [fs.getattr(p).inode for p in ("/f", "/g")]
        for inode in inodes:
            fs.lease.acquire(inode)
        before = {i: fs.lease.held_epoch(i) for i in inodes}
        hist = fs.metrics.histogram("client.batch.size")
        frames, subops = hist.count, hist.total
        requests = fs.request_count
        renewed = fs.renew_leases()
        assert sorted(renewed) == sorted(inodes)
        assert fs.request_count - requests == 1
        assert hist.count == frames + 1
        assert hist.total == subops + len(inodes)
        for inode in inodes:
            assert fs.lease.held_epoch(inode) == before[inode] + 1

    def test_fs_renew_leases_none_held_is_free(self, shared, registry):
        server, volume = shared
        fs = make_leased(volume, registry)
        requests = fs.request_count
        assert fs.renew_leases() == []
        assert fs.request_count == requests
