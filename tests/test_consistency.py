"""Fork-consistency log (the paper's SUNDR integration, section VI)."""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.fs.consistency import (ConsistencyLog, ForkDetected,
                                  VersionStatement, statement_blob)
from repro.storage.server import StorageServer


@pytest.fixture
def logs(registry):
    """A ConsistencyLog per user, sharing the registry's directory."""
    def make(user_id: str) -> ConsistencyLog:
        user = registry.user(user_id)
        return ConsistencyLog(user_id, user.private_key,
                              registry.directory)
    return make


class TestStatements:
    def test_roundtrip(self, logs, server):
        log = logs("alice")
        log.observe(5, 3)
        log.observe(7, 1)
        statement = log.publish(server)
        restored = VersionStatement.from_bytes(
            server.get(statement_blob("alice")))
        assert restored == statement
        assert restored.observed(5) == 3
        assert restored.observed(99) is None

    def test_chain_digests(self, logs, server):
        log = logs("alice")
        first = log.publish(server)
        second = log.publish(server)
        assert second.previous_digest == first.digest()
        assert second.sequence == first.sequence + 1

    def test_seen_vector_grows(self, logs, server):
        alice, bob = logs("alice"), logs("bob")
        bob.publish(server)
        alice.sync(server, ["bob"])
        statement = alice.publish(server)
        assert statement.seen_sequence("bob") == 1
        assert statement.seen_sequence("carol") == 0


class TestHonestOperation:
    def test_peers_exchange_cleanly(self, logs, server):
        alice, bob = logs("alice"), logs("bob")
        alice.observe(10, 4)
        alice.publish(server)
        accepted = bob.sync(server, ["alice", "carol"])
        assert len(accepted) == 1
        assert bob.known_high[10] == 4  # learned from alice

    def test_lagging_peer_is_legal(self, logs, server):
        """bob publishes BEFORE seeing alice's newer version: no fork."""
        alice, bob = logs("alice"), logs("bob")
        bob.observe(10, 1)
        bob.publish(server)
        alice.observe(10, 9)
        alice.publish(server)
        alice.sync(server, ["bob"])  # bob's older view: fine

    def test_multi_round_convergence(self, logs, server):
        alice, bob, carol = logs("alice"), logs("bob"), logs("carol")
        alice.observe(1, 5)
        alice.publish(server)
        for log in (bob, carol):
            log.sync(server, ["alice", "bob", "carol"])
            log.publish(server)
        alice.sync(server, ["bob", "carol"])
        assert bob.known_high[1] == 5
        assert carol.known_high[1] == 5


class TestForkDetection:
    def test_sequence_regression_detected(self, logs, server):
        alice, bob = logs("alice"), logs("bob")
        old_one = alice.publish(server)
        old_blob = server.get(statement_blob("alice"))
        alice.publish(server)
        bob.sync(server, ["alice"])          # bob saw seq 2
        server.put(statement_blob("alice"), old_blob)  # SSP rolls back
        with pytest.raises(ForkDetected):
            bob.sync(server, ["alice"])

    def test_equivocation_same_sequence_detected(self, logs, server,
                                                 registry):
        alice, bob = logs("alice"), logs("bob")
        alice.observe(3, 1)
        alice.publish(server)
        bob.sync(server, ["alice"])
        # The SSP (or a compromised alice key) crafts a DIFFERENT
        # statement with the same sequence number.
        from repro.crypto import rsa
        forged = VersionStatement(
            user_id="alice", sequence=1,
            previous_digest=b"\x00" * 32,
            observations=((3, 99),), seen=())
        signature = rsa.sign(registry.user("alice").private_key,
                             forged.signed_payload())
        forged = VersionStatement(
            user_id="alice", sequence=1,
            previous_digest=b"\x00" * 32,
            observations=((3, 99),), seen=(), signature=signature)
        server.put(statement_blob("alice"), forged.to_bytes())
        with pytest.raises(ForkDetected):
            bob.sync(server, ["alice"])

    def test_unsigned_statement_rejected(self, logs, server):
        bob = logs("bob")
        fake = VersionStatement(
            user_id="alice", sequence=1, previous_digest=b"\x00" * 32,
            observations=(), seen=(), signature=b"\x01" * 64)
        server.put(statement_blob("alice"), fake.to_bytes())
        with pytest.raises(ForkDetected):
            bob.sync(server, ["alice"])

    def test_wrong_slot_rejected(self, logs, server):
        alice, bob = logs("alice"), logs("bob")
        alice.publish(server)
        # SSP serves alice's (valid) statement in carol's slot.
        server.put(statement_blob("carol"),
                   server.get(statement_blob("alice")))
        with pytest.raises(ForkDetected):
            bob.sync(server, ["carol"])

    def test_causal_contradiction_detected(self, logs, server):
        """The heart of fork consistency: bob acknowledges alice's chain
        but the SSP fed him a forked history of inode 7."""
        alice, bob = logs("alice"), logs("bob")
        alice.observe(7, 5)
        alice.publish(server)              # alice seq 1: inode7@v5
        bob.sync(server, ["alice"])        # bob acks alice seq 1 + merges
        # The fork: bob's client is manipulated to believe inode7@v2,
        # overriding what the (forked) SSP let him learn.
        bob.known_high[7] = 2
        bob.publish(server)                # claims seen alice@1, 7@v2
        with pytest.raises(ForkDetected):
            alice.sync(server, ["bob"])

    def test_fork_detected_even_after_delay(self, logs, server):
        """Statements keep history honest across multiple rounds."""
        alice, bob = logs("alice"), logs("bob")
        alice.observe(7, 5)
        alice.publish(server)
        bob.sync(server, ["alice"])
        bob.publish(server)
        alice.sync(server, ["bob"])        # round 1: clean
        bob.known_high[7] = 1              # forked view appears later
        bob.publish(server)
        with pytest.raises(ForkDetected):
            alice.sync(server, ["bob"])


class TestFilesystemIntegration:
    def test_wired_to_real_volume(self, volume, registry, server,
                                  alice_fs, bob_fs):
        """Drive logs from actual client freshness observations."""
        alice_log = ConsistencyLog("alice",
                                   registry.user("alice").private_key,
                                   registry.directory)
        bob_log = ConsistencyLog("bob",
                                 registry.user("bob").private_key,
                                 registry.directory)
        alice_fs.create_file("/shared", b"v1", mode=0o664)
        stat = alice_fs.getattr("/shared")
        alice_log.observe(stat.inode, stat.version)
        alice_log.publish(server)

        bob_log.sync(server, ["alice"])
        bob_stat = bob_fs.getattr("/shared")
        bob_log.observe(bob_stat.inode, bob_stat.version)
        bob_log.publish(server)
        alice_log.sync(server, ["bob"])  # clean: same history

        # chmod bumps the version; alice publishes the new state.
        alice_fs.chmod("/shared", 0o660)
        stat = alice_fs.getattr("/shared")
        alice_log.observe(stat.inode, stat.version)
        alice_log.publish(server)
        # bob acknowledges it; if the SSP later hid the chmod from bob's
        # *statements*, alice would catch the contradiction.
        bob_log.sync(server, ["alice"])
        bob_log.publish(server)
        alice_log.sync(server, ["bob"])


class TestClientWiring:
    def test_enable_and_exchange(self, volume, registry, alice_fs,
                                 bob_fs):
        alice_log = alice_fs.enable_consistency_log()
        bob_log = bob_fs.enable_consistency_log()
        alice_fs.create_file("/wired", b"v1", mode=0o664)
        alice_fs.cache.clear()
        alice_fs.getattr("/wired")         # observation feeds the log
        assert alice_log.known_high        # something observed
        alice_fs.publish_statement()
        bob_fs.sync_statements(["alice"])
        bob_fs.getattr("/wired")
        bob_fs.publish_statement()
        alice_fs.sync_statements(["bob"])  # clean exchange

    def test_wired_fork_detected(self, volume, registry, server,
                                 alice_fs, bob_fs):
        from repro.fs.consistency import ForkDetected
        alice_fs.enable_consistency_log()
        bob_fs.enable_consistency_log()
        alice_fs.create_file("/forked", b"v1", mode=0o664)
        alice_fs.chmod("/forked", 0o660)   # version moves forward
        alice_fs.cache.clear()
        alice_fs.getattr("/forked")
        alice_fs.publish_statement()
        bob_fs.sync_statements(["alice"])
        # A forked SSP view makes bob believe an older version.
        inode = alice_fs.getattr("/forked").inode
        bob_fs.consistency.known_high[inode] = 1
        bob_fs.publish_statement()
        with pytest.raises(ForkDetected):
            alice_fs.sync_statements(["bob"])

    def test_not_enabled_raises(self, alice_fs):
        from repro.errors import SharoesError
        with pytest.raises(SharoesError):
            alice_fs.publish_statement()
        with pytest.raises(SharoesError):
            alice_fs.sync_statements()


class TestForkEdges:
    """Boundary cases of the causal cross-check (robustness satellite)."""

    def test_fork_detected_on_first_cross_read_after_partition_heal(
            self, logs, server):
        # Alice asserts inode 7 at version 5; bob acknowledges her chain
        # before the SSP partitions them into divergent views.
        alice, bob = logs("alice"), logs("bob")
        alice.observe(7, 5)
        alice.publish(server)
        bob.sync(server, ["alice"])  # bob now acks alice@1
        # Partition: the SSP feeds bob a forked history where inode 7
        # never went past version 2.  Bob's own chain stays perfectly
        # linear while he keeps working and publishing.
        bob.known_high[7] = 2
        bob.publish(server)
        bob.observe(11, 1)
        bob.publish(server)
        # Alice also keeps working during the partition.
        alice.observe(3, 1)
        alice.publish(server)
        # Heal: the very FIRST cross-read of bob's statements must expose
        # the fork -- bob acknowledged alice@1 (which asserted 7@5) yet
        # reports 7@2.
        with pytest.raises(ForkDetected):
            alice.sync(server, ["bob"])

    def test_stale_but_linear_peer_is_legal(self, logs, server):
        # A peer that merely LAGS -- acknowledging an old statement and
        # reporting old versions consistent with it -- is not a fork.
        alice, bob = logs("alice"), logs("bob")
        alice.observe(7, 1)
        alice.publish(server)  # seq 1 asserts 7@1
        bob.sync(server, ["alice"])  # bob acks alice@1
        # Alice advances to 7@9 in seq 2; bob never sees it (stale SSP
        # cache, slow replication -- all benign).
        alice.observe(7, 9)
        alice.publish(server)
        bob.publish(server)  # seen alice@1, observations {7: 1}
        accepted = alice.sync(server, ["bob"])  # must NOT raise
        assert len(accepted) == 1
        assert accepted[0].observed(7) == 1
        # Bob keeps publishing stale-but-linear statements; still legal.
        bob.publish(server)
        assert alice.sync(server, ["bob"])

    def test_stale_peer_becomes_fork_once_it_acks_the_new_chain(
            self, logs, server):
        # The moment the laggard acknowledges the NEWER statement while
        # still contradicting it, legality flips to fork.
        alice, bob = logs("alice"), logs("bob")
        alice.observe(7, 1)
        alice.publish(server)
        bob.sync(server, ["alice"])
        alice.observe(7, 9)
        alice.publish(server)  # seq 2 asserts 7@9
        bob.sync(server, ["alice"])  # bob acks alice@2 ...
        bob.known_high[7] = 1  # ... but the SSP forks his view back
        bob.publish(server)
        with pytest.raises(ForkDetected):
            alice.sync(server, ["bob"])


class TestShardedReplicaDivergence:
    """A rolled-back or tampering *replica* (one shard of a sharded
    backend, not the whole SSP) is outvoted by quorum reads before the
    client ever sees its bytes: freshness monitoring and fork detection
    stay quiet, the divergent copy is flagged for repair, and one
    anti-entropy pass heals it.  Per-blob rollback of the *whole*
    quorum is still the client's to detect (TestForkEdges above)."""

    def _stack(self, registry, **kwargs):
        from repro.fs.client import ClientConfig, SharoesFilesystem
        from repro.fs.volume import SharoesVolume
        from repro.principals.groups import GroupKeyService
        from repro.storage.shards import ShardedServer
        server = ShardedServer(shards=4, replicas=3, read_quorum=2,
                               **kwargs)
        volume = SharoesVolume(server, registry)
        volume.format(root_owner="alice", root_group="eng")
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        # No client-side caching: every read re-fetches, so quorum
        # resolution runs on each access (what this class tests).
        fs = SharoesFilesystem(volume, registry.user("alice"),
                               config=ClientConfig(cache_bytes=0,
                                                   mdcache=False))
        fs.mount()
        return server, volume, fs

    def _meta_primary(self, server, fs, path: str) -> int:
        """The shard consulted first for the file's owner metadata."""
        inode = fs.getattr(path).inode
        blob = next(b for b in server.census()
                    if b.inode == inode and b.kind == "meta"
                    and b.selector == "o")
        return server.placement(blob)[0]

    def test_rolled_back_replica_outvoted_and_healed(self, registry):
        from repro.storage.faults import RollbackServer
        server, volume, fs = self._stack(registry)
        # One replica rolls back: arm the shard that plain reads
        # consult first for /doc's data, so its stale copy is the one
        # quorum resolution must reject.
        fs.create_file("/doc", b"version one", mode=0o644)
        inode = fs.getattr("/doc").inode
        block = next(b for b in server.census()
                     if b.inode == inode and b.kind == "data")
        server.wrap_shard(server.placement(block)[0],
                          lambda b: RollbackServer(inner=b))
        fs.write_file("/doc", b"version two!")  # the wrapper's "first"
        fs.write_file("/doc", b"version three")
        # The armed replica keeps serving version two; the other two
        # replicas outvote it on every read -- the client only ever
        # sees fresh, verifiable bytes (no IntegrityError, no
        # StaleObjectError).
        assert fs.read_file("/doc") == b"version three"
        snap = server.shard_snapshot()
        assert snap["outvoted"] >= 1
        assert server._suspect  # flagged for repair, never served
        assert snap["reads.suspect_served"] == 0
        server.clear_wrappers()
        report = server.repair()
        assert report.fully_replicated
        assert report.healed_divergent >= 1
        assert fs.read_file("/doc") == b"version three"

    def test_tampering_replica_outvoted_and_healed(self, registry):
        from repro.storage.blobs import LEASE
        from repro.storage.faults import TamperingServer
        server, volume, fs = self._stack(registry)
        fs.create_file("/bits", bytes(range(256)), mode=0o644)
        evil = self._meta_primary(server, fs, "/bits")
        server.wrap_shard(
            evil, lambda b: TamperingServer(
                inner=b, should_tamper=lambda bid: bid.kind != LEASE))
        # Quorum reads mask the bit flips end-to-end: no IntegrityError
        # reaches the client's verification layer.
        assert fs.read_file("/bits") == bytes(range(256))
        assert server.shard_snapshot()["outvoted"] >= 1
        server.clear_wrappers()
        assert server.repair().fully_replicated

    def test_whole_quorum_rollback_still_caught_by_client(self, registry):
        # Quorum defends against a divergent *minority*; if every
        # replica rolls back in concert (the SSP operator, not a sick
        # disk), the router has nothing to vote with -- the client's
        # freshness monitor is the detector, exactly as unsharded.
        from repro.fs.freshness import StaleObjectError
        server, volume, fs = self._stack(registry)
        fs.create_file("/c", b"old", mode=0o644)
        inode = fs.getattr("/c").inode
        blob = next(b for b in server.census()
                    if b.inode == inode and b.kind == "meta"
                    and b.selector == "o")
        stale = {i: server.shards[i].backend.get(blob)
                 for i in server.placement(blob)}
        fs.chmod("/c", 0o600)  # bumps the signed metadata version
        # Observe the new version so the monitor's watermark advances.
        assert fs.getattr("/c").mode & 0o777 == 0o600
        for i, payload in stale.items():
            server.shards[i].backend.put(blob, payload)  # coordinated
        with pytest.raises(StaleObjectError):
            fs.getattr("/c")
