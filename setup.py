"""Setup shim for legacy editable installs.

This environment has no ``wheel`` package and no network, so PEP-517
editable installs (which need bdist_wheel) fail.  ``pip install -e .``
falls back to ``setup.py develop`` through this shim:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
