"""Ablation: immediate vs lazy revocation (paper section IV, chmod).

Immediate revocation re-encrypts the file during the chmod; lazy
revocation defers the re-encryption to the next content update.  The
tradeoff: chmod latency vs a window in which a revoked-but-caching user
could still read updated... nothing (no updates happened yet).  The
prototype defaults to immediate, like the paper's.
"""

import pytest

from repro.fs.client import ClientConfig, SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.registry import PrincipalRegistry
from repro.sim.costmodel import CostModel
from repro.sim.profiles import PAPER_2008
from repro.storage.server import StorageServer
from repro.workloads.report import format_table

from .common import emit

FILE_SIZES = (10_000, 100_000, 1_000_000)


def _stack(immediate: bool):
    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    registry.create_user("bob", key_bits=512)
    registry.create_group("eng", {"alice", "bob"}, key_bits=512)
    volume = SharoesVolume(StorageServer(), registry)
    volume.format(root_owner="alice", root_group="eng")
    cost = CostModel(PAPER_2008)
    fs = SharoesFilesystem(volume, alice, cost_model=cost,
                           config=ClientConfig(
                               immediate_revocation=immediate))
    fs.mount()
    return fs, cost


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for mode, immediate in (("immediate", True), ("lazy", False)):
        fs, cost = _stack(immediate)
        per_size = {}
        for size in FILE_SIZES:
            path = f"/f{size}"
            fs.create_file(path, b"z" * size, mode=0o644)
            with cost.span() as chmod_span:
                fs.chmod(path, 0o600)  # revokes world read
            with cost.span() as write_span:
                fs.write_file(path, b"y" * size)
            per_size[size] = (chmod_span.total, write_span.total)
        out[mode] = per_size
    return out


def test_report_revocation(sweep):
    rows = []
    for mode, per_size in sweep.items():
        for size, (chmod_s, write_s) in per_size.items():
            rows.append([mode, f"{size // 1000}KB", f"{chmod_s:.2f}",
                         f"{write_s:.2f}",
                         f"{chmod_s + write_s:.2f}"])
    emit("ablation_revocation", format_table(
        "Immediate vs lazy revocation -- chmod and next-write seconds",
        ["mode", "file", "chmod s", "next write s", "combined s"], rows))


class TestShape:
    def test_lazy_chmod_much_cheaper(self, sweep):
        for size in FILE_SIZES:
            assert sweep["lazy"][size][0] < 0.5 * sweep["immediate"][size][0]

    def test_lazy_chmod_size_independent(self, sweep):
        small = sweep["lazy"][FILE_SIZES[0]][0]
        big = sweep["lazy"][FILE_SIZES[-1]][0]
        assert big < 2 * small

    def test_immediate_chmod_scales_with_size(self, sweep):
        small = sweep["immediate"][FILE_SIZES[0]][0]
        big = sweep["immediate"][FILE_SIZES[-1]][0]
        assert big > 5 * small

    def test_lazy_pays_on_next_write(self, sweep):
        """The deferred cost shows up in the next write (rekey+rewrite)."""
        for size in FILE_SIZES[1:]:
            lazy_write = sweep["lazy"][size][1]
            immediate_write = sweep["immediate"][size][1]
            assert lazy_write >= 0.9 * immediate_write

    def test_lazy_wins_when_write_follows(self, sweep):
        """The paper's motivation for lazy revocation: if the content is
        about to change anyway, immediate mode re-encrypts twice (once at
        chmod, once at the write) while lazy re-encrypts once."""
        size = FILE_SIZES[-1]
        lazy_total = sum(sweep["lazy"][size])
        immediate_total = sum(sweep["immediate"][size])
        assert 0.3 < lazy_total / immediate_total < 0.8


def test_benchmark_immediate_revocation_1mb(benchmark):
    def run():
        fs, cost = _stack(True)
        fs.create_file("/f", b"z" * 1_000_000, mode=0o644)
        start = cost.clock.now
        fs.chmod("/f", 0o600)
        return cost.clock.now - start
    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert seconds > 0
