"""Ablation: varying network characteristics.

The paper defers its varying-network analysis to the first author's
thesis ("Additional experimental analysis of SHAROES with varying network
characteristics can be found in [6]").  This harness reproduces the
obvious sweep: as the link improves from home DSL toward LAN, the
network share of operation cost shrinks and the crypto differences
between implementations become the bottleneck -- which is precisely why
minimizing public-key operations matters even more on fast networks.
"""

import pytest

from repro.sim.profiles import dsl_profile
from repro.workloads import make_env, run_create_and_list
from repro.workloads.report import format_table

from .common import emit

#: (label, up kbit/s, down kbit/s, rtt ms)
LINKS = (
    ("paper-DSL", 850, 350, 100),
    ("T1", 1500, 1500, 40),
    ("10Mbit", 10_000, 10_000, 10),
    ("LAN-100Mbit", 100_000, 100_000, 1),
)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for label, up, down, rtt in LINKS:
        profile = dsl_profile(up, down, rtt)
        per_impl = {}
        for impl in ("no-enc-md-d", "sharoes", "pub-opt"):
            env = make_env(impl, profile=profile)
            result = run_create_and_list(env, files=100, dirs=10)
            per_impl[impl] = result
        out[label] = per_impl
    return out


def test_report_network_sweep(sweep):
    rows = []
    for label, per_impl in sweep.items():
        base = per_impl["no-enc-md-d"].list_seconds
        rows.append([
            label,
            f"{per_impl['no-enc-md-d'].list_seconds:.1f}",
            f"{per_impl['sharoes'].list_seconds:.1f}",
            f"{per_impl['pub-opt'].list_seconds:.1f}",
            f"{(per_impl['sharoes'].list_seconds / base - 1) * 100:.0f}%",
            f"{(per_impl['pub-opt'].list_seconds / base - 1) * 100:.0f}%",
        ])
    emit("ablation_network", format_table(
        "Network sweep -- list-phase seconds (100 files) and overheads",
        ["link", "NO-ENC", "SHAROES", "PUB-OPT", "SHAROES over",
         "PUB-OPT over"], rows))


class TestShape:
    def test_faster_network_is_faster(self, sweep):
        labels = [label for label, *_ in LINKS]
        for impl in ("no-enc-md-d", "sharoes"):
            series = [sweep[label][impl].list_seconds for label in labels]
            assert series == sorted(series, reverse=True)

    def test_crypto_gap_widens_relatively_on_fast_links(self, sweep):
        """On the LAN, PUB-OPT's private-key stat cost dwarfs the
        network; its *relative* overhead explodes."""
        def rel_overhead(label):
            per = sweep[label]
            return (per["pub-opt"].list_seconds
                    / per["no-enc-md-d"].list_seconds)
        assert rel_overhead("LAN-100Mbit") > 3 * rel_overhead("paper-DSL")

    def test_sharoes_stays_close_everywhere(self, sweep):
        """Symmetric metadata keeps SHAROES within ~2.5x of plaintext
        even when the network stops hiding crypto costs."""
        for label, *_ in LINKS:
            per = sweep[label]
            ratio = (per["sharoes"].list_seconds
                     / per["no-enc-md-d"].list_seconds)
            assert ratio < 2.5, (label, ratio)

    def test_pubopt_absolute_floor_is_crypto(self, sweep):
        """PUB-OPT cannot go below ~one private op per stat (~28.6 s for
        110 stats) no matter how fast the link."""
        lan = sweep["LAN-100Mbit"]["pub-opt"].list_seconds
        assert lan > 110 * 0.25  # 110 stats x ~0.26 s private op
