"""Ablation: ESIGN vs RSA signatures (paper footnote 3).

"While public key schemes like RSA can be used for signing and
verification, there are other techniques like ESIGN that are over an
order of magnitude faster."  This harness measures our *actual*
implementations (host time, pytest-benchmark) and the simulated 2008
profile costs.
"""

import time

import pytest

from repro.crypto import esign, rsa
from repro.sim.profiles import PAPER_2008
from repro.workloads.report import format_table

from .common import emit

MESSAGE = b"the quick brown block of file data" * 8


@pytest.fixture(scope="module")
def keys():
    return {
        "esign": esign.generate_keypair(prime_bits=256),
        "rsa": rsa.generate_keypair(1024),
    }


def _time_per_op(fn, min_ops: int = 50) -> float:
    start = time.perf_counter()
    for _ in range(min_ops):
        fn()
    return (time.perf_counter() - start) / min_ops


def test_report_signature_ablation(keys):
    e, r = keys["esign"], keys["rsa"]
    esign_sign = _time_per_op(lambda: esign.sign(e.signing, MESSAGE))
    rsa_sign = _time_per_op(lambda: rsa.sign(r.private, MESSAGE))
    esig = esign.sign(e.signing, MESSAGE)
    rsig = rsa.sign(r.private, MESSAGE)
    esign_verify = _time_per_op(
        lambda: esign.verify(e.verification, MESSAGE, esig))
    rsa_verify = _time_per_op(
        lambda: rsa.verify(r.public, MESSAGE, rsig))
    rows = [
        ["ESIGN (n=p^2q, e=4)", f"{esign_sign * 1e6:.0f}",
         f"{esign_verify * 1e6:.0f}"],
        ["RSA", f"{rsa_sign * 1e6:.0f}", f"{rsa_verify * 1e6:.0f}"],
        ["host speedup (sign)", f"{rsa_sign / esign_sign:.1f}x", ""],
        ["simulated-2008 speedup",
         f"{PAPER_2008.pk_private_block_s / PAPER_2008.esign_sign_s:.0f}x",
         ""],
    ]
    emit("ablation_esign", format_table(
        "ESIGN vs RSA signing (host microseconds per op)",
        ["scheme", "sign us", "verify us"], rows))


class TestClaims:
    def test_esign_sign_order_of_magnitude_faster(self, keys):
        """Footnote 3's claim, on our real implementations."""
        e, r = keys["esign"], keys["rsa"]
        esign_time = _time_per_op(lambda: esign.sign(e.signing, MESSAGE))
        rsa_time = _time_per_op(lambda: rsa.sign(r.private, MESSAGE), 20)
        assert rsa_time > 10 * esign_time

    def test_simulated_profile_reflects_the_gap(self):
        assert (PAPER_2008.pk_private_block_s
                > 10 * PAPER_2008.esign_sign_s)


def test_benchmark_esign_sign(benchmark, keys):
    benchmark(lambda: esign.sign(keys["esign"].signing, MESSAGE))


def test_benchmark_esign_verify(benchmark, keys):
    sig = esign.sign(keys["esign"].signing, MESSAGE)
    benchmark(lambda: esign.verify(keys["esign"].verification, MESSAGE,
                                   sig))


def test_benchmark_rsa_sign(benchmark, keys):
    benchmark(lambda: rsa.sign(keys["rsa"].private, MESSAGE))


def test_benchmark_aes_seal_4k(benchmark):
    from repro.crypto.provider import AesEngine
    engine = AesEngine()
    payload = b"m" * 4096
    benchmark(lambda: engine.seal(b"k" * 16, payload))


def test_benchmark_stream_seal_64k(benchmark):
    from repro.crypto import stream
    payload = b"m" * 65536
    benchmark(lambda: stream.seal(b"k" * 16, payload))
