"""Figure 11: Andrew benchmark, per-phase results.

Five phases (mkdir tree / copy source / stat all / read all / compile).
The shape to reproduce: I/O phases show minimal SHAROES overhead, while
PUB-OPT's phase 2 and 4 overheads are comparable to its phase 3 (stat)
overhead -- the private-key decryption per metadata access is what hurts,
not the data path.
"""

import pytest

from repro.workloads import LABELS, PHASES, make_env, run_andrew
from repro.workloads.report import format_table

from .common import andrew_results, emit

IMPLS = ("no-enc-md-d", "no-enc-md", "sharoes", "pub-opt")


@pytest.fixture(scope="module")
def results():
    return andrew_results()


def test_report_fig11(results):
    headers = ["implementation"] + [f"phase-{i + 1} {name}"
                                    for i, name in enumerate(PHASES)]
    rows = []
    for impl in IMPLS:
        rows.append([LABELS[impl]] + [
            f"{results[impl].phase_seconds[p]:.1f}" for p in PHASES])
    emit("fig11_andrew_phases", format_table(
        "Figure 11 -- Andrew benchmark phase seconds", headers, rows))


class TestShape:
    def test_sharoes_io_overheads_minimal(self, results):
        """Paper: 'Phase-2 and Phase-4 results show that I/O overheads
        for SHAROES are minimal' -- read overhead well under 2x."""
        base = results["no-enc-md-d"].phase_seconds
        sharoes = results["sharoes"].phase_seconds
        assert sharoes["read"] / base["read"] < 1.5
        assert sharoes["stat"] / base["stat"] < 1.5

    def test_pubopt_io_overheads_match_stat_overhead(self, results):
        """Paper: 'PUB-OPT overheads for Phase-2 and Phase-4 are almost
        equal to the Phase-3 overheads'."""
        base = results["no-enc-md-d"].phase_seconds
        pubopt = results["pub-opt"].phase_seconds
        stat_over = pubopt["stat"] - base["stat"]
        read_over = pubopt["read"] - base["read"]
        assert read_over == pytest.approx(stat_over, rel=0.6)
        assert stat_over > 3 * (results["sharoes"].phase_seconds["stat"]
                                - base["stat"])

    def test_compile_phase_dominated_by_cpu(self, results):
        """The compile phase is mostly implementation-independent CPU."""
        from repro.workloads import COMPILE_CPU_SECONDS
        for impl in IMPLS:
            assert (results[impl].phase_seconds["compile"]
                    > COMPILE_CPU_SECONDS)

    def test_every_phase_ordered_noenc_first(self, results):
        for phase in PHASES:
            assert (results["no-enc-md-d"].phase_seconds[phase]
                    <= results["sharoes"].phase_seconds[phase] * 1.02)


def test_benchmark_andrew_sharoes(benchmark):
    result = benchmark.pedantic(
        lambda: run_andrew(make_env("sharoes")), rounds=1, iterations=1)
    assert result.total_seconds > 0
