"""Instrumentation overhead bound.

The observability layer must stay out of the hot path: with the metrics
registry attached but no exporter, the extra work per operation is span
bookkeeping plus one histogram observe.  This harness measures *host*
wall-clock of an identical Postmark pass with tracing active vs stubbed
out, and bounds the difference below 5%.
"""

import time
from contextlib import contextmanager

from repro.obs.tracing import Tracer

from .common import emit


class _NullSpan:
    __slots__ = ("attrs",)

    def __init__(self):
        self.attrs = {}


_NULL = _NullSpan()


@contextmanager
def _null_span(self, name, **attrs):
    yield _NULL


def _postmark_wall_seconds(tracer_sinks=()) -> float:
    from repro.workloads import make_env, run_postmark
    env = make_env("sharoes", tracer_sinks=tracer_sinks)
    start = time.perf_counter()
    run_postmark(env, files=120, transactions=120, cache_fraction=0.25)
    return time.perf_counter() - start


def test_overhead_under_5_percent(monkeypatch):
    _postmark_wall_seconds()  # warm caches/imports before timing
    repeats = 3
    instrumented = min(_postmark_wall_seconds() for _ in range(repeats))

    monkeypatch.setattr(Tracer, "span", _null_span)
    monkeypatch.setattr(Tracer, "on_charge",
                        lambda self, category, seconds: None)
    bare = min(_postmark_wall_seconds() for _ in range(repeats))

    ratio = instrumented / bare
    emit("obs_overhead",
         "Postmark wall-clock (120 files/120 txns, min of "
         f"{repeats}): instrumented {instrumented:.3f}s vs stubbed "
         f"{bare:.3f}s -> x{ratio:.3f}")
    assert ratio < 1.05, ratio


def test_event_log_overhead():
    """A sampled EventLog span sink adds < 5% on top of plain tracing:
    the sampling decision is one crc32 over a short key and most spans
    short-circuit before any dict is built."""
    from repro.obs.eventlog import EventLog

    _postmark_wall_seconds()  # warm caches/imports before timing
    # Interleaved plain/logged pairs, best pair ratio: shared-runner
    # wall-clock jitter (observed +-15%) swamps the per-span cost, so
    # min-of-each across disjoint batches does not converge -- adjacent
    # pairs see the same machine weather.
    repeats = 5
    ratios = []
    log = None
    for _ in range(repeats):
        plain = _postmark_wall_seconds()
        log = EventLog(sample=0.25)
        logged = _postmark_wall_seconds(tracer_sinks=(log.span_sink,))
        ratios.append(logged / plain)

    ratio = min(ratios)
    stats = log.stats()
    emit("eventlog_overhead",
         "Postmark wall-clock (120 files/120 txns, best of "
         f"{repeats} interleaved pairs): 25%-sampled event log vs "
         f"plain -> x{ratio:.3f} ({stats['accepted']} events kept, "
         f"{stats['sampled_out']} sampled out)")
    assert stats["accepted"] > 0
    assert stats["sampled_out"] > 0
    assert ratio < 1.05, ratios
