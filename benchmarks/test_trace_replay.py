"""Trace replay across all five implementations.

Not a paper figure -- methodological tooling: one recorded operation
stream replayed byte-identically against every implementation, at two
cache sizes, demonstrating both the Figure 9/10 orderings and the
cache-dependent crossover between SHAROES and PUB-OPT on a single
workload.
"""

import pytest

from repro.fs.client import ClientConfig
from repro.workloads import (IMPLEMENTATIONS, LABELS, make_env,
                             replay_timed, synthesize_office_trace)
from repro.workloads.report import format_table

from .common import emit

SMALL_CACHE = 4096
TRACE = synthesize_office_trace(users_dirs=4, files_per_dir=6, churn=80)


@pytest.fixture(scope="module")
def results():
    out = {}
    for impl in IMPLEMENTATIONS:
        # A trace creates fixed paths, so each replay gets a fresh volume.
        cold = replay_timed(make_env(impl), TRACE,
                            config=ClientConfig(cache_bytes=SMALL_CACHE))
        warm = replay_timed(make_env(impl), TRACE, config=ClientConfig())
        out[impl] = (cold, warm)
    return out


def test_report_trace_replay(results):
    rows = [[LABELS[impl], f"{cold:.1f}", f"{warm:.1f}",
             f"{cold / warm:.2f}x"]
            for impl, (cold, warm) in results.items()]
    emit("trace_replay", format_table(
        "Office trace replay -- simulated seconds "
        f"({len(TRACE.ops)} ops; {SMALL_CACHE}B vs unbounded cache)",
        ["implementation", "small cache", "full cache", "penalty"],
        rows))


class TestShape:
    def test_ordering_with_small_cache(self, results):
        cold = {impl: c for impl, (c, _) in results.items()}
        assert cold["no-enc-md-d"] <= cold["no-enc-md"]
        assert cold["no-enc-md"] < cold["sharoes"]
        assert cold["sharoes"] < cold["pub-opt"] < cold["public"]

    def test_public_expensive_even_warm(self, results):
        """With a full cache PUBLIC only pays public-key *encryption*
        per create -- still the costliest implementation by far."""
        warm = {impl: w for impl, (_, w) in results.items()}
        assert warm["public"] > 1.5 * warm["no-enc-md-d"]
        assert warm["public"] == max(warm.values())

    def test_pubopt_cache_sensitivity_highest(self, results):
        """PUB-OPT's small-cache penalty factor exceeds SHAROES's: every
        metadata miss costs it a private-key operation."""
        penalties = {impl: cold / warm
                     for impl, (cold, warm) in results.items()}
        assert penalties["pub-opt"] > penalties["sharoes"]

    def test_identical_streams(self):
        """Replaying the same trace twice produces identical content."""
        env_a = make_env("sharoes")
        env_b = make_env("public")
        TRACE.replay(env_a.fs, seed=3)
        TRACE.replay(env_b.fs, seed=3)
        assert (env_a.fs.read_file("/proj0/doc0.txt")
                == env_b.fs.read_file("/proj0/doc0.txt"))
