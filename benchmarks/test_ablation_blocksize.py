"""Ablation: block size vs partial-update cost (paper section II-B).

"Larger files are divided into multiple blocks and each block is
encrypted separately.  This helps accommodate updates efficiently by
avoiding re-encrypting entire files after a write."  This harness
quantifies that design choice: a 1 MB file receives a 1 KB in-place
update under different block sizes, including "one block per file"
(no blocking at all -- what the design avoids).
"""

import random

import pytest

from repro.crypto.provider import CryptoProvider
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.sim.costmodel import CostModel
from repro.sim.profiles import PAPER_2008
from repro.storage.server import StorageServer
from repro.workloads.report import format_table

from .common import emit

FILE_BYTES = 1_000_000
UPDATE_BYTES = 1_000
#: swept block sizes; the last entry means "whole file in one block"
BLOCK_SIZES = (16 * 1024, 64 * 1024, 256 * 1024, FILE_BYTES + 1)


def _measure(block_size: int) -> tuple[float, float]:
    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    registry.create_group("eng", {"alice"}, key_bits=512)
    server = StorageServer()
    volume = SharoesVolume(server, registry, block_size=block_size)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    cost = CostModel(PAPER_2008)
    fs = SharoesFilesystem(volume, alice, cost_model=cost)
    fs.mount()
    payload = random.Random(3).randbytes(FILE_BYTES)
    fs.create_file("/big", payload, mode=0o600)
    with cost.span() as update_span:
        with fs.open("/big", "rw") as handle:
            handle.pwrite(b"Z" * UPDATE_BYTES, FILE_BYTES // 2)
    with cost.span() as read_span:
        fs.cache.invalidate_prefix(("data",))
        fs.read_file("/big")
    return update_span.total, read_span.total


@pytest.fixture(scope="module")
def sweep():
    return {size: _measure(size) for size in BLOCK_SIZES}


def test_report_blocksize(sweep):
    rows = []
    for size, (update_s, read_s) in sweep.items():
        label = ("whole-file" if size > FILE_BYTES
                 else f"{size // 1024} KiB")
        rows.append([label, f"{update_s:.2f}", f"{read_s:.2f}"])
    emit("ablation_blocksize", format_table(
        "Block size vs 1 KB in-place update of a 1 MB file (seconds)",
        ["block size", "update+close", "cold re-read"], rows))


class TestShape:
    def test_blocking_makes_updates_cheap(self, sweep):
        """The paper's rationale: with blocks, a small update re-encrypts
        and re-uploads one block, not the whole megabyte."""
        whole_file = sweep[BLOCK_SIZES[-1]][0]
        blocked = sweep[64 * 1024][0]
        assert whole_file > 8 * blocked

    def test_update_cost_scales_with_block_size(self, sweep):
        u16 = sweep[16 * 1024][0]
        u64 = sweep[64 * 1024][0]
        u256 = sweep[256 * 1024][0]
        assert u16 < u64 < u256

    def test_read_cost_roughly_flat(self, sweep):
        """Blocking should not tax sequential reads (same bytes moved)."""
        reads = [read for (_, read) in sweep.values()]
        assert max(reads) < 1.35 * min(reads)
