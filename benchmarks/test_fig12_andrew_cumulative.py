"""Figure 12 (table): cumulative Andrew benchmark performance.

Paper values: NO-ENC-MD-D 239 s, NO-ENC-MD 248 s (+3.7%), SHAROES 266 s
(+11%), PUB-OPT 384 s (+60%).
"""

import pytest

from repro.workloads import LABELS, PAPER_FIG12, PAPER_FIG12_OVERHEADS
from repro.workloads.report import (ComparisonRow, format_comparison,
                                    overhead_pct)

from .common import andrew_results, emit

IMPLS = ("no-enc-md-d", "no-enc-md", "sharoes", "pub-opt")


@pytest.fixture(scope="module")
def results():
    return andrew_results()


def test_report_fig12(results):
    rows = [ComparisonRow(LABELS[impl], PAPER_FIG12[impl],
                          results[impl].total_seconds)
            for impl in IMPLS]
    emit("fig12_andrew_cumulative", format_comparison(
        "Figure 12 -- Andrew benchmark cumulative seconds", rows))


class TestShape:
    def test_absolute_totals_track_paper(self, results):
        for impl in IMPLS:
            ratio = results[impl].total_seconds / PAPER_FIG12[impl]
            assert 0.8 < ratio < 1.25, (impl, ratio)

    def test_overhead_ordering(self, results):
        base = results["no-enc-md-d"].total_seconds
        overheads = {impl: overhead_pct(results[impl].total_seconds, base)
                     for impl in IMPLS[1:]}
        assert (overheads["no-enc-md"] < overheads["sharoes"]
                < overheads["pub-opt"])

    def test_sharoes_overhead_band(self, results):
        """Paper: 11%.  Accept 5-25% -- the ordering and rough factor are
        the reproduction target."""
        base = results["no-enc-md-d"].total_seconds
        over = overhead_pct(results["sharoes"].total_seconds, base)
        assert 0.05 < over < 0.25

    def test_pubopt_overhead_band(self, results):
        """Paper: 60%.  Accept 30-80%."""
        base = results["no-enc-md-d"].total_seconds
        over = overhead_pct(results["pub-opt"].total_seconds, base)
        assert 0.30 < over < 0.80

    def test_noenc_md_overhead_small(self, results):
        base = results["no-enc-md-d"].total_seconds
        over = overhead_pct(results["no-enc-md"].total_seconds, base)
        assert over < 0.10

    def test_sharoes_beats_pubopt_by_over_40pct_less_overhead(
            self, results):
        """The abstract's claim: SHAROES outperforms comparable systems
        by over 40% on a number of benchmarks -- here, PUB-OPT carries
        >=3x SHAROES's overhead on the same workload."""
        base = results["no-enc-md-d"].total_seconds
        sharoes_over = results["sharoes"].total_seconds - base
        pubopt_over = results["pub-opt"].total_seconds - base
        assert pubopt_over > 2.0 * sharoes_over
