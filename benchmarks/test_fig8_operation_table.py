"""Figure 8: the SHAROES filesystem-operation cost table.

The paper tabulates, per operation, the PROCESSING performed and its
NETWORK and CRYPTO cost components.  This harness *measures* the same
decomposition on the implementation -- SSP messages exchanged and
cryptographic operations performed -- and checks each row:

    getattr  metadata recv;              1 metadata decrypt
    mknod    md send + parent-dir send;  1 md-enc + 1 parent-enc [*]
    mkdir    (same, plus the new directory's own tables)
    chmod    metadata send;              1 md-enc [*]
    read     data recv;                  1 data decrypt
    write    (local cache only -- free)
    close    data send;                  1 data encrypt

    [*] per required CAP
"""

import pytest

from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.crypto.provider import CryptoProvider
from repro.sim.costmodel import CostModel
from repro.sim.profiles import PAPER_2008
from repro.storage.server import StorageServer
from repro.workloads.report import format_table

from .common import emit


@pytest.fixture(scope="module")
def stack():
    registry = PrincipalRegistry()
    alice = registry.create_user("alice", key_bits=512)
    registry.create_user("bob", key_bits=512)
    registry.create_group("eng", {"alice", "bob"}, key_bits=512)
    server = StorageServer()
    volume = SharoesVolume(server, registry)
    volume.format(root_owner="alice", root_group="eng")
    GroupKeyService(registry, server, CryptoProvider()).publish_all()
    cost = CostModel(PAPER_2008)
    fs = SharoesFilesystem(volume, alice, cost_model=cost)
    fs.mount()
    return fs, server, cost


def _measure(fs, server, cost, op):
    server.stats.reset()
    fs.provider.counters.reset()
    requests_before = fs.request_count
    with cost.span() as span:
        op()
    counters = fs.provider.counters
    return {
        "requests": fs.request_count - requests_before,
        "gets": server.stats.gets,
        "puts": server.stats.puts,
        "sym_enc": counters.total("sym_encrypt"),
        "sym_dec": counters.total("sym_decrypt"),
        "sign": counters.total("sign"),
        "verify": counters.total("verify"),
        "pk": (counters.total("pk_encrypt")
               + counters.total("pk_decrypt")),
        "ms": span.total * 1000,
    }


@pytest.fixture(scope="module")
def rows(stack):
    fs, server, cost = stack
    fs.mkdir("/w", mode=0o700)
    fs.create_file("/w/seed", b"seed-content" * 40, mode=0o600)
    out = {}

    inode = fs.getattr("/w/seed").inode
    fs.cache.invalidate_prefix(("meta", inode))
    out["getattr"] = _measure(
        fs, server, cost, lambda: fs.getattr("/w/seed"))

    out["mknod"] = _measure(
        fs, server, cost, lambda: fs.mknod("/w/newfile", mode=0o600))
    out["mkdir"] = _measure(
        fs, server, cost, lambda: fs.mkdir("/w/newdir", mode=0o700))
    out["chmod"] = _measure(
        fs, server, cost, lambda: fs.chmod("/w/seed", 0o640))

    fs.getattr("/w/seed")  # re-warm metadata after the chmod
    fs.cache.invalidate_prefix(("data", inode))
    out["read"] = _measure(
        fs, server, cost, lambda: fs.read_file("/w/seed"))

    handle = fs.open("/w/seed", "w")
    out["write"] = _measure(
        fs, server, cost, lambda: handle.pwrite(b"fresh" * 60, 0))
    out["close"] = _measure(fs, server, cost, handle.close)
    return out


def test_report_fig8(rows):
    table_rows = []
    for op in ("getattr", "mknod", "mkdir", "chmod", "read", "write",
               "close"):
        r = rows[op]
        table_rows.append([
            op, str(r["requests"]), str(r["gets"]), str(r["puts"]),
            str(r["sym_enc"]), str(r["sym_dec"]),
            str(r["sign"]), str(r["verify"]), str(r["pk"]),
            f"{r['ms']:.0f}"])
    emit("fig8_operation_table", format_table(
        "Figure 8 -- measured operation decomposition "
        "(owner-only CAPs; SSP messages and crypto ops)",
        ["op", "reqs", "recv", "send", "sym-enc", "sym-dec", "sign",
         "verify", "pk-ops", "ms"], table_rows))


class TestRows:
    def test_getattr_row(self, rows):
        """getattr: obtain metadata and decrypt -- 1 recv, 1 decrypt."""
        r = rows["getattr"]
        assert r["gets"] == 1 and r["puts"] == 0
        assert r["sym_dec"] == 1 and r["sym_enc"] == 0
        assert r["pk"] == 0

    def test_mknod_row(self, rows):
        """mknod: 'metadata send; parent-dir send' = 2 requests; the
        crypto column multiplies per materialized CAP replica
        (o/g/w metadata replicas + 1 parent view here)."""
        r = rows["mknod"]
        assert r["requests"] == 2   # metadata send + parent-dir send
        assert r["puts"] == 4       # 3 class replicas + 1 parent view
        assert r["sym_enc"] == 4    # md-enc per CAP + parentdir-enc
        assert r["sign"] == 4
        assert r["pk"] == 0

    def test_mkdir_row(self, rows):
        """mkdir additionally stores the new directory's own table
        (one view: the group/world CAPs of a 700 dir are zero)."""
        r = rows["mkdir"]
        assert r["requests"] == 3   # md send, own-tables send, parent
        assert r["puts"] == 5
        assert r["sym_enc"] == 5
        assert r["pk"] == 0

    def test_chmod_row(self, rows):
        """chmod (non-structural): modify metadata, encrypt, send."""
        r = rows["chmod"]
        assert r["puts"] >= 1
        assert r["gets"] <= 1       # parent pointer check may read cache
        assert r["sym_enc"] >= 1
        assert r["pk"] == 0

    def test_read_row(self, rows):
        """read: obtain data and decrypt."""
        r = rows["read"]
        assert r["gets"] == 1 and r["puts"] == 0
        assert r["sym_dec"] == 1
        assert r["verify"] == 1
        assert r["requests"] == 1

    def test_write_is_local(self, rows):
        """write: into the local cache -- zero SSP traffic, zero crypto."""
        r = rows["write"]
        assert r["gets"] == 0 and r["puts"] == 0
        assert r["sym_enc"] == 0 and r["sym_dec"] == 0

    def test_close_row(self, rows):
        """close: encrypt file, send to server."""
        r = rows["close"]
        assert r["puts"] == 1
        assert r["sym_enc"] == 1
        assert r["sign"] == 1
        assert r["pk"] == 0

    def test_no_public_key_ops_anywhere(self, rows):
        assert all(r["pk"] == 0 for r in rows.values())
