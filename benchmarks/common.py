"""Shared helpers for the figure benchmarks.

Workload results are cached per session (Figure 11 and Figure 12 are two
presentations of the same Andrew runs), and every harness both prints its
paper-vs-measured table and appends it to ``benchmarks/results/`` so
EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

import functools
import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable ``BENCH_<name>.json`` under results/.

    These are the documents CI uploads as artifacts so the perf
    trajectory (op -> mean/percentiles + phase breakdown) is diffable
    across PRs.  See docs/OBSERVABILITY.md.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@functools.lru_cache(maxsize=None)
def create_list_results(files: int = 500, dirs: int = 25):
    from repro.workloads import (IMPLEMENTATIONS, make_env,
                                 run_create_and_list)
    return {impl: run_create_and_list(make_env(impl), files=files,
                                      dirs=dirs)
            for impl in IMPLEMENTATIONS}


@functools.lru_cache(maxsize=None)
def andrew_results():
    from repro.workloads import make_env, run_andrew
    impls = ("no-enc-md-d", "no-enc-md", "sharoes", "pub-opt")
    return {impl: run_andrew(make_env(impl)) for impl in impls}


@functools.lru_cache(maxsize=None)
def postmark_results(files: int = 500, transactions: int = 500):
    from repro.workloads import (FIG10_CACHE_FRACTIONS, FIG10_IMPLS,
                                 make_env, run_postmark)
    out = {}
    for impl in FIG10_IMPLS:
        env = make_env(impl)
        out[impl] = {
            frac: run_postmark(env, files=files, transactions=transactions,
                               cache_fraction=frac)
            for frac in FIG10_CACHE_FRACTIONS}
    return out


@functools.lru_cache(maxsize=None)
def op_cost_results():
    from repro.workloads import make_env, run_op_costs
    return run_op_costs(make_env("sharoes"))
