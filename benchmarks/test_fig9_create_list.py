"""Figure 9: the Create-And-List microbenchmark.

500 empty files in 25 directories; create phase then recursive listing
(``ls -lR``), across the five implementations.  Reproduces the paper's
headline metadata result: symmetric-key metadata (SHAROES) stays within
single-digit percent of the unencrypted baseline while the public-key
approaches blow up -- PUBLIC's list phase by ~37x.
"""

import pytest

from repro.workloads import IMPLEMENTATIONS, LABELS, PAPER_FIG9, make_env, \
    run_create_and_list
from repro.workloads.report import ComparisonRow, format_comparison

from .common import create_list_results, emit


@pytest.fixture(scope="module")
def results():
    return create_list_results()


@pytest.fixture(scope="module")
def paper_results(results):
    """Figure-9 bars under the paper's 2008 prototype model.

    Speculative readahead defaults on since PR 7, which batches the
    per-child metadata round trips of the list phase -- a win the 2008
    prototype did not have.  The absolute bar-for-bar match against the
    published figure therefore pins ``readahead=False`` for SHAROES;
    the baselines have no readahead to disable.
    """
    from repro.fs.client import ClientConfig
    paper = dict(results)
    paper["sharoes"] = run_create_and_list(
        make_env("sharoes", config=ClientConfig(readahead=False)))
    return paper


def test_report_fig9(paper_results):
    """Emit the paper-vs-measured table for both phases (paper-faithful
    configuration, so the bars stay comparable to the published figure)."""
    for phase in ("create", "list"):
        rows = [ComparisonRow(LABELS[impl], PAPER_FIG9[impl][phase],
                              getattr(paper_results[impl],
                                      f"{phase}_seconds"))
                for impl in IMPLEMENTATIONS]
        emit(f"fig9_{phase}",
             format_comparison(f"Figure 9 -- Create-And-List: {phase} "
                               f"phase (500 files / 25 dirs)", rows))


class TestShape:
    """The qualitative claims of section V-A must hold."""

    def test_public_list_catastrophic(self, results):
        """Paper: 2253 s vs 60 s -- private-key decrypt per stat."""
        ratio = (results["public"].list_seconds
                 / results["no-enc-md-d"].list_seconds)
        assert ratio > 20

    def test_pubopt_list_over_225pct(self, results):
        """Paper: PUB-OPT list is over 225% above NO-ENC."""
        ratio = (results["pub-opt"].list_seconds
                 / results["no-enc-md-d"].list_seconds)
        assert ratio > 2.25

    def test_pubopt_create_over_10pct(self, results):
        ratio = (results["pub-opt"].create_seconds
                 / results["no-enc-md-d"].create_seconds)
        assert ratio > 1.10

    def test_sharoes_within_25pct_of_noenc(self, paper_results):
        """Paper: 5-8% overheads; we allow some slack for the larger
        metadata objects our ESIGN keys produce."""
        for phase in ("create_seconds", "list_seconds"):
            ratio = (getattr(paper_results["sharoes"], phase)
                     / getattr(paper_results["no-enc-md-d"], phase))
            assert 1.0 <= ratio < 1.25

    def test_readahead_beats_noenc_on_list(self, results):
        """Since PR 7 readahead is on by default: the list phase's
        per-child stat round trips collapse into batched ``get_many``
        frames, so SHAROES undercuts even the unencrypted baselines
        (which pay one round trip per stat).  Create is walk-light --
        parents stay warm -- so it still tracks the paper's ordering."""
        assert (results["sharoes"].list_seconds
                < results["no-enc-md-d"].list_seconds)
        ratio = (results["sharoes"].create_seconds
                 / results["no-enc-md-d"].create_seconds)
        assert 1.0 <= ratio < 1.25

    def test_sharoes_beats_both_public_variants(self, results):
        assert (results["sharoes"].list_seconds
                < results["pub-opt"].list_seconds
                < results["public"].list_seconds)
        assert (results["sharoes"].create_seconds
                < results["public"].create_seconds)

    def test_absolute_match_within_20pct(self, paper_results):
        """Measured simulated seconds track the published bars (under
        the paper-faithful readahead-off configuration for SHAROES)."""
        for impl in IMPLEMENTATIONS:
            for phase in ("create", "list"):
                measured = getattr(paper_results[impl], f"{phase}_seconds")
                paper = PAPER_FIG9[impl][phase]
                assert 0.8 < measured / paper < 1.25, (impl, phase)


def test_benchmark_sharoes_create_list(benchmark):
    """Host-time benchmark of the full SHAROES microbenchmark run."""
    def run():
        return run_create_and_list(make_env("sharoes"), files=100, dirs=5)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.create_seconds > 0
