"""Figure 13: SHAROES per-operation cost breakdown.

getattr, mkdir (per CAP combination), 1 MB read, 1 MB write+close, each
split into NETWORK / CRYPTO / OTHER.  Anchors from the paper: getattr
completes "in a little over 100 ms"; CRYPTO stays under 7% for the data
operations; the 1 MB read is downlink-bound (~23 s) and the write
uplink-bound (~10 s); exec-only CAPs cost extra inner-table encryption.
"""

import pytest

from repro.workloads import OPERATIONS, PAPER_FIG13_ANCHORS, make_env, \
    run_op_costs
from repro.workloads.report import format_table

from .common import emit, emit_json, op_cost_results


@pytest.fixture(scope="module")
def costs():
    return op_cost_results()


def test_report_fig13(costs):
    rows = []
    for op in OPERATIONS:
        c = costs[op]
        rows.append([op, f"{c.network_s * 1000:.0f}",
                     f"{c.crypto_s * 1000:.0f}",
                     f"{c.other_s * 1000:.0f}",
                     f"{c.total_s * 1000:.0f}",
                     f"{c.crypto_fraction * 100:.1f}%"])
    emit("fig13_op_costs", format_table(
        "Figure 13 -- SHAROES operation costs (ms)",
        ["operation", "NETWORK", "CRYPTO", "OTHER", "total", "crypto%"],
        rows))


class TestAnchors:
    def test_getattr_a_little_over_100ms(self, costs):
        low, high = PAPER_FIG13_ANCHORS["getattr_ms"]
        assert low / 1000 < costs["getattr"].total_s < high / 1000

    def test_read_1mb_downlink_bound(self, costs):
        low, high = PAPER_FIG13_ANCHORS["read_1mb_s"]
        assert low < costs["read-1MB"].total_s < high

    def test_write_1mb_uplink_bound(self, costs):
        low, high = PAPER_FIG13_ANCHORS["write_1mb_s"]
        assert low < costs["write-1MB"].total_s < high

    def test_crypto_under_7pct_for_data_ops(self, costs):
        cap = PAPER_FIG13_ANCHORS["crypto_fraction_max"]
        for op in ("getattr", "read-1MB", "write-1MB"):
            assert costs[op].crypto_fraction < cap, op

    def test_mkdir_band(self, costs):
        low, high = PAPER_FIG13_ANCHORS["mkdir_ms"]
        for op in ("mkdir:rwx", "mkdir:--x", "mkdir:both"):
            assert low / 1000 < costs[op].total_s < high / 1000, op

    def test_exec_only_mkdir_extra_crypto(self, costs):
        """Paper: 'creating an exec-only CAP is more expensive as it
        requires an additional encryption for the inner directory-table
        structure'."""
        assert costs["mkdir:--x"].crypto_s > costs["mkdir:rwx"].crypto_s

    def test_multi_cap_mkdir_most_expensive_crypto(self, costs):
        assert (costs["mkdir:both"].crypto_s
                >= costs["mkdir:--x"].crypto_s * 0.95)

    def test_network_dominates_every_op(self, costs):
        for op in OPERATIONS:
            assert costs[op].network_s > 0.5 * costs[op].total_s, op


def test_emit_bench_json(costs):
    payload = {
        "schema": 1,
        "name": "fig13_opcosts",
        "ops": {op: {"network_s": c.network_s, "crypto_s": c.crypto_s,
                     "other_s": c.other_s, "total_s": c.total_s,
                     "crypto_fraction": c.crypto_fraction}
                for op, c in costs.items()},
    }
    emit_json("fig13_opcosts", payload)


def test_benchmark_op_costs(benchmark):
    result = benchmark.pedantic(
        lambda: run_op_costs(make_env("sharoes")), rounds=1, iterations=1)
    assert set(result) == set(OPERATIONS)
