"""Figure 10: Postmark total time vs client cache size.

500 small files (500 B - 9.77 KB), 500 transactions, cache size swept as
a fraction of the dataset.  PUBLIC is omitted as in the paper; the
optimized public-key variant (PUB-OPT) is competitive only with a huge
cache and degrades fastest as the cache shrinks.
"""

import pytest

from repro.workloads import (FIG10_CACHE_FRACTIONS, FIG10_IMPLS, LABELS,
                             make_env, run_postmark)
from repro.workloads.report import format_table

from .common import emit, emit_json, postmark_results


@pytest.fixture(scope="module")
def results():
    return postmark_results()


def test_report_fig10(results):
    headers = ["implementation"] + [f"{int(f * 100)}%"
                                    for f in FIG10_CACHE_FRACTIONS]
    rows = []
    for impl in FIG10_IMPLS:
        rows.append([LABELS[impl]] + [
            f"{results[impl][frac].total_seconds:.0f}"
            for frac in FIG10_CACHE_FRACTIONS])
    emit("fig10_postmark", format_table(
        "Figure 10 -- Postmark seconds vs cache size "
        "(500 files, 500 transactions)", headers, rows))


class TestShape:
    def test_monotone_in_cache_size(self, results):
        for impl in FIG10_IMPLS:
            series = [results[impl][f].total_seconds
                      for f in FIG10_CACHE_FRACTIONS]
            assert all(a >= b * 0.98 for a, b in zip(series, series[1:])), \
                (impl, series)

    def test_pubopt_expensive_at_small_cache(self, results):
        """Paper: at 10% cache PUB-OPT is ~64% above NO-ENC-MD-D and
        ~43% above SHAROES."""
        base = results["no-enc-md-d"][0.10].total_seconds
        pubopt = results["pub-opt"][0.10].total_seconds
        sharoes = results["sharoes"][0.10].total_seconds
        assert pubopt / base > 1.30
        assert pubopt / sharoes > 1.15

    def test_pubopt_competitive_only_with_infinite_cache(self, results):
        """Paper: 'the optimized public key scheme is competitive only
        for an infinite cache size (100%)'."""
        base_100 = results["no-enc-md-d"][1.00].total_seconds
        pubopt_100 = results["pub-opt"][1.00].total_seconds
        assert pubopt_100 / base_100 < 1.25
        base_10 = results["no-enc-md-d"][0.10].total_seconds
        pubopt_10 = results["pub-opt"][0.10].total_seconds
        assert pubopt_10 / base_10 > pubopt_100 / base_100

    def test_sharoes_near_baseline_at_operating_points(self, results):
        """Paper: SHAROES always within ~15% of NO-ENC-MD-D; we allow
        up to 20% for our larger serialized table rows."""
        for frac in FIG10_CACHE_FRACTIONS[1:]:
            ratio = (results["sharoes"][frac].total_seconds
                     / results["no-enc-md-d"][frac].total_seconds)
            assert ratio < 1.20, (frac, ratio)

    def test_crossover_pubopt_overtakes_sharoes(self, results):
        """PUB-OPT beats SHAROES with a full cache (fewer bytes moved)
        but loses once metadata misses carry private-key costs."""
        assert (results["pub-opt"][0.05].total_seconds
                > results["sharoes"][0.05].total_seconds)


def test_emit_bench_json():
    """Machine-readable Postmark report, self-reconciling to 1%.

    The per-op phase decomposition comes from the span tracer; summed
    across every operation it must land within 1% of what the cost
    model charged for the whole run (it is exact by construction -- the
    tolerance only absorbs float accumulation)."""
    from repro.workloads import run_observed
    payload, _spans = run_observed(
        "postmark", params={"files": 150, "transactions": 150})
    emit_json("postmark", payload)
    total = payload["cost_model"]["total"]
    phase_sum = sum(payload["totals"]["phases"].values())
    assert abs(phase_sum - total) <= 0.01 * total


def test_benchmark_postmark_sharoes(benchmark):
    def run():
        return run_postmark(make_env("sharoes"), files=80,
                            transactions=80, cache_fraction=0.10)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_seconds > 0


class TestRepetitionProtocol:
    """Paper section V-A: 'all experiments were repeated ten times and
    results were averaged'.  Repetition varies the workload seed; the
    spread must stay far below the implementation differences."""

    def test_mean_with_confidence(self):
        from repro.sim.stats import repeat_runs
        env = make_env("sharoes")
        summary = repeat_runs(
            lambda seed: run_postmark(env, files=120, transactions=120,
                                      cache_fraction=0.10,
                                      seed=seed).total_seconds,
            repetitions=5)
        low, high = summary.ci95()
        assert low < summary.mean < high
        assert summary.stdev < 0.2 * summary.mean
        emit("fig10_repetitions",
             "Postmark @10% cache, SHAROES, 5 seeds: "
             f"{summary}")
