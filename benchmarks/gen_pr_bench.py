"""Regenerate the per-PR performance snapshot (BENCH_<pr>.json).

Runs the four standard workloads at the same scale as the previous
snapshots and bundles the ``run_observed`` payloads into one file, so
``benchmarks/results/BENCH_<n>.json`` files form a comparable series
across PRs (same workloads, same params, same schema).

Usage::

    PYTHONPATH=src:. python benchmarks/gen_pr_bench.py [out_dir]

PR 5 note: batching is on by default (it only changes framing, not
request counts -- the client already priced multi-blob writes as one
round trip); the createlist entry additionally enables speculative
readahead, which is what turns batched ``get_many`` frames into fewer
round trips on the list phase.  The toggle is recorded in the entry's
``params``.

PR 6 note: runs are wire-traced (``wire_trace=True``), which adds the
schema-v2 ``trace`` section (server decode/disk/verify phase totals and
per-depth resolve attribution) without perturbing the measurement --
server spans live on a synthetic timeline, so wall seconds and request
counts are identical to an untraced run (asserted by
``tests/test_trace_differential.py``; gated in CI by
``repro bench --diff`` against the previous snapshot).

PR 7 note: readahead is now the client default (the createlist override
is kept so the recorded params stay comparable across snapshots), and
the andrew entry mounts the verified metadata cache
(``mdcache=True``, recorded in its params) -- phase-boundary
revalidation keeps entries warm instead of dropping them, which is what
collapses the resolve seconds the CI gate now locks in at <= 50% of the
BENCH_6 baseline (``--resolve-gate andrew=0.5``).

PR 8 note: ``mdcache`` is the client default now, so every entry runs
with it (the andrew param is kept so its recorded params stay
comparable).  A fifth entry, ``postmark_sharded``, runs postmark on a
``ShardedServer`` (shards=4, replicas=2) and records the
**replication-overhead column**: physical backend requests/bytes across
every shard vs the logical single-SSP view the client sees.  The wall
seconds and request counts the ``repro bench --diff`` gate reads are
the client-side (logical) numbers, identical to an unsharded run by
construction (the kill-any-shard differential in tests/test_shards.py
is the proof); the replication section makes the k-way write
amplification visible instead of letting it hide in the backends.

PR 10 note: a seventh entry, ``postmark_concurrent``, reruns the
standard postmark with the pipelined request scheduler on
(``concurrency=8``): write-behind staging plus fetch flights overlap
independent wire frames, so its wall seconds must land at <= 75% of
the plain postmark entry (the acceptance claim, gated in CI by
``repro bench --diff --overlap-gate postmark=0.75``; byte-identical
SSP state is proven by tests/test_concurrency_differential.py).  A
``throughput`` entry records the many-client axis: 100 mounted
clients (journal + lease + concurrency=8) driving a seeded interleave
on one shared volume, reporting ops/sec, exact latency percentiles,
lease conflicts and the final fsck verdict (gated non-regressing by
the same ``--diff``).

PR 9 note: a sixth entry, ``postmark_rebalance``, runs the sharded
postmark with an **online rebalance** (grow 4 -> 6 shards) proposed,
staged and completed mid-workload by a mutation-count trigger
(``run_observed(setup=...)`` interposes the trigger under the client).
Its **rebalance-overhead column** records the request/byte
amplification of backend traffic over logical client traffic *while
the plan was active* (dual-placement writes plus the copy/verify/drop
pipeline), next to the end-state replication section.  Logical client
numbers stay identical to unsharded postmark by construction (the
acceptance trio in tests/test_shards.py is the proof).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.fs.client import ClientConfig
from repro.workloads.runner import run_observed

PR = 10

#: (entry name, workload, params, config overrides recorded in params)
RUNS = (
    ("andrew", "andrew", {"mdcache": True}, {}),
    ("createlist", "createlist", {"files": 100, "dirs": 5},
     {"readahead": True}),
    ("office", "office", {}, {}),
    ("postmark", "postmark", {"files": 100, "transactions": 100}, {}),
    ("postmark_sharded", "postmark",
     {"files": 100, "transactions": 100}, {"shards": 4, "replicas": 2}),
    ("postmark_rebalance", "postmark",
     {"files": 100, "transactions": 100}, {"shards": 4, "replicas": 2}),
    ("postmark_concurrent", "postmark",
     {"files": 100, "transactions": 100}, {"concurrency": 8}),
)

#: many-client harness scale recorded as the ``throughput`` entry.
THROUGHPUT = {"clients": 100, "ops_per_client": 20, "concurrency": 8}

#: client-mutation counts at which the rebalance trigger fires: the
#: plan is proposed + staged at the first mark and driven to DONE at
#: the second, so a window of real workload traffic runs under dual
#: placement.
REBALANCE_STAGES = (150, 400)


def _replication_section(server) -> dict:
    """Physical-vs-logical replication overhead for a sharded run."""
    logical_requests = (server.stats.puts + server.stats.gets
                        + server.stats.deletes)
    logical_bytes = sum(len(p) for p in server.raw_blobs().values())
    physical_requests = server.physical_requests()
    physical_bytes = server.physical_bytes()
    return {
        "shards": len(server.shards),
        "replicas": server.replicas,
        "logical_requests": logical_requests,
        "physical_requests": physical_requests,
        "request_amplification": (physical_requests / logical_requests
                                  if logical_requests else 0.0),
        "logical_bytes": logical_bytes,
        "physical_bytes": physical_bytes,
        "byte_amplification": (physical_bytes / logical_bytes
                               if logical_bytes else 0.0),
    }


def _traffic(server) -> tuple[int, int]:
    """(requests, traffic bytes) seen by one server's stats."""
    s = server.stats
    return (s.puts + s.gets + s.deletes,
            s.bytes_received + s.bytes_served)


def _physical_traffic(server) -> tuple[int, int]:
    """Summed backend (requests, traffic bytes) across every shard."""
    requests = bytes_ = 0
    for shard in server.shards:
        r, b = _traffic(shard.backend)
        requests += r
        bytes_ += b
    return requests, bytes_


def _rebalance_setup(marks: dict):
    """A ``run_observed`` setup hook arming the mid-postmark rebalance.

    Grows the ring 4 -> 6 at the ``REBALANCE_STAGES`` mutation marks
    and snapshots logical/physical traffic at plan start and plan end,
    so the overhead column measures exactly the active-plan window.
    """
    from repro.crypto import rsa
    from repro.storage.rebalance import (VERIFIED, MidRunRebalance,
                                         Rebalancer)

    def setup(env):
        key = rsa.generate_keypair(512)
        server = env.server
        for _ in range(2):
            server.add_shard()
        holder = {}

        def stage_plan():
            marks["logical_start"] = _traffic(server)
            marks["physical_start"] = _physical_traffic(server)
            reb = Rebalancer(server, keypair=key)
            reb.propose(tuple(range(6)), server.replicas)
            reb.execute(until=VERIFIED)
            holder["reb"] = reb

        def finish_plan():
            holder["reb"].execute()
            marks["logical_end"] = _traffic(server)
            marks["physical_end"] = _physical_traffic(server)
            marks["snapshot"] = server.shard_snapshot()

        env._client_server = MidRunRebalance(
            server, list(zip(REBALANCE_STAGES,
                             (stage_plan, finish_plan))))
    return setup


def _rebalance_section(server, marks: dict) -> dict:
    """Request/byte amplification while the rebalance plan was active."""
    logical_req = marks["logical_end"][0] - marks["logical_start"][0]
    logical_bytes = marks["logical_end"][1] - marks["logical_start"][1]
    physical_req = (marks["physical_end"][0]
                    - marks["physical_start"][0])
    physical_bytes = (marks["physical_end"][1]
                      - marks["physical_start"][1])
    snap = marks["snapshot"]
    return {
        "plan": {"from_shards": 4, "to_shards": 6,
                 "replicas": server.replicas},
        "window_logical_requests": logical_req,
        "window_physical_requests": physical_req,
        "request_amplification": (physical_req / logical_req
                                  if logical_req else 0.0),
        "window_logical_bytes": logical_bytes,
        "window_physical_bytes": physical_bytes,
        "byte_amplification": (physical_bytes / logical_bytes
                               if logical_bytes else 0.0),
        "moved": snap["rebalance.moved"],
        "verified": snap["rebalance.verified"],
        "dropped": snap["rebalance.dropped"],
        "dual_reads": snap["rebalance.dual_reads"],
        "dual_writes": snap["rebalance.dual_writes"],
    }


def main(out_dir: str = "benchmarks/results") -> int:
    workloads = {}
    for entry, name, params, overrides in RUNS:
        config = ClientConfig(**overrides) if overrides else None
        env_out: list = []
        marks: dict = {}
        setup = (_rebalance_setup(marks)
                 if entry == "postmark_rebalance" else None)
        payload, _spans = run_observed(name, params=params, config=config,
                                       wire_trace=True, setup=setup,
                                       _env_out=env_out)
        payload["params"].update(overrides)
        if overrides.get("shards"):
            payload["replication"] = _replication_section(
                env_out[0].server)
        if marks:
            assert "snapshot" in marks, \
                "rebalance trigger never completed inside the workload"
            payload["rebalance"] = _rebalance_section(
                env_out[0].server, marks)
        workloads[entry] = payload
        print(f"{entry}: requests="
              f"{payload['metrics'].get('client.requests')}")
    from repro.workloads.throughput import run_throughput
    tput = run_throughput(**THROUGHPUT)
    assert tput["fsck_clean"], "throughput run left the volume dirty"
    workloads["throughput"] = tput
    print(f"throughput: {tput['ops_per_sec']:.3f} ops/s, "
          f"p95 {tput['latency_s']['p95']:.3f}s, "
          f"{tput['lease_conflicts']} lease conflicts")
    doc = {
        "pr": PR,
        "description": ("per-PR performance snapshot: standard "
                        "workloads, default scale, sharoes impl, "
                        "default ClientConfig (batching, readahead and "
                        "the verified metadata cache all on); "
                        "postmark_sharded runs on a 4-shard/2-replica "
                        "ShardedServer and records the replication-"
                        "overhead column (physical vs logical "
                        "requests/bytes); postmark_rebalance adds an "
                        "online grow 4->6 rebalance completed mid-"
                        "workload and records the rebalance-overhead "
                        "column (request/byte amplification during the "
                        "active plan); postmark_concurrent reruns "
                        "postmark with the pipelined request scheduler "
                        "(concurrency=8, gated at <= 75% of the "
                        "sequential wall); throughput is the 100-client "
                        "many-client harness (journal+lease+"
                        "concurrency=8: ops/sec, exact latency "
                        "percentiles, lease conflicts, fsck verdict); "
                        "runs are wire-traced, adding "
                        "the schema-v2 trace section at zero simulated "
                        "cost"),
        "workloads": workloads,
    }
    out = Path(out_dir) / f"BENCH_{PR}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
