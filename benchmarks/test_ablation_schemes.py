"""Ablation: Scheme-1 vs Scheme-2 metadata replication (section III-D).

The paper estimates Scheme-1 at "nearly $0.60 per user per month" for a
million-file filesystem at 2008 Amazon S3 prices, while Scheme-2 shares
replicas across users with equal CAPs.  This harness measures actual
stored metadata bytes per scheme on a synthetic enterprise tree and
extrapolates to the paper's million-file scale, plus the update-cost
asymmetry (a chmod touches one replica set vs every user's tree).
"""

import pytest

from repro.crypto.provider import CryptoProvider
from repro.fs.client import SharoesFilesystem
from repro.fs.volume import SharoesVolume
from repro.migration.localfs import make_enterprise_tree
from repro.migration.migrate import MigrationTool
from repro.principals.groups import GroupKeyService
from repro.principals.registry import PrincipalRegistry
from repro.storage.accounting import monthly_storage_dollars
from repro.storage.server import StorageServer
from repro.workloads.report import format_table

from .common import emit

N_USERS = 8
FILES_TARGET = 1_000_000  # the paper's extrapolation scale


@pytest.fixture(scope="module")
def deployments():
    out = {}
    for scheme in ("scheme1", "scheme2"):
        registry = PrincipalRegistry()
        users = [registry.create_user(f"user{i}", key_bits=512).user_id
                 for i in range(N_USERS)]
        registry.create_group("staff", set(users), key_bits=512)
        tree = make_enterprise_tree(users, "staff", dirs_per_user=2,
                                    files_per_dir=4, file_bytes=1024)
        server = StorageServer()
        volume = SharoesVolume(server, registry, scheme=scheme)
        MigrationTool(volume).migrate(tree)
        GroupKeyService(registry, server, CryptoProvider()).publish_all()
        dirs, files = tree.count()
        out[scheme] = dict(server=server, volume=volume,
                           registry=registry, objects=dirs + files,
                           users=users)
    return out


def _meta_overhead_bytes(entry) -> int:
    """Metadata-related bytes: replicas + tables + lockboxes."""
    server = entry["server"]
    return (server.stored_bytes("meta") + server.stored_bytes("lockbox"))


def test_report_scheme_costs(deployments):
    rows = []
    for scheme, entry in deployments.items():
        meta_bytes = _meta_overhead_bytes(entry)
        per_object = meta_bytes / entry["objects"]
        million_file_bytes = per_object * FILES_TARGET
        dollars = monthly_storage_dollars(million_file_bytes)
        per_user = dollars / len(entry["users"])
        rows.append([scheme, str(entry["objects"]),
                     f"{meta_bytes / 1024:.0f} KiB",
                     f"{per_object:.0f} B",
                     f"${dollars:.2f}",
                     f"${per_user:.3f}"])
    emit("ablation_schemes", format_table(
        "Scheme-1 vs Scheme-2 -- metadata storage and 2008-S3 dollars "
        f"(extrapolated to {FILES_TARGET:,} files, {N_USERS} users)",
        ["scheme", "objects", "meta stored", "meta B/object",
         "$/month @1M files", "$/user/month"], rows))


class TestStorage:
    def test_scheme1_scales_with_users(self, deployments):
        s1 = _meta_overhead_bytes(deployments["scheme1"])
        s2 = _meta_overhead_bytes(deployments["scheme2"])
        assert s1 > 1.5 * s2

    def test_scheme1_dollar_estimate_order_of_magnitude(self, deployments):
        """The paper's ~$0.60/user/month at 1M files: our replicas are
        a few hundred bytes each, so we accept the same order."""
        entry = deployments["scheme1"]
        per_object = _meta_overhead_bytes(entry) / entry["objects"]
        dollars_per_user = monthly_storage_dollars(
            per_object * FILES_TARGET)
        # per-user replica share: each user's tree is ~per_object/N
        per_user = dollars_per_user / len(entry["users"])
        assert 0.01 < per_user < 2.0


class TestUpdateCost:
    def test_chmod_cheaper_under_scheme2(self, deployments):
        """Scheme-1 rewrites a replica per user; Scheme-2 per chain."""
        puts = {}
        for scheme, entry in deployments.items():
            volume = entry["volume"]
            registry = entry["registry"]
            owner = "user0"
            fs = SharoesFilesystem(volume, registry.user(owner))
            fs.mount()
            path = "/home/user0/dir0/file0.dat"
            entry["server"].stats.reset()
            fs.chmod(path, 0o664)
            puts[scheme] = entry["server"].stats.puts_by_kind.get(
                "meta", 0)
        assert puts["scheme1"] >= N_USERS  # one replica per user
        assert puts["scheme2"] <= 4        # o/g/w (+acl)
        assert puts["scheme1"] > 2 * puts["scheme2"]

    def test_access_cost_slightly_higher_under_scheme2(self, deployments):
        """The paper's stated tradeoff: Scheme-2 buys its storage savings
        'at slightly higher access costs' -- here one extra lockbox fetch
        at the /home ownership split; Scheme-1 never splits."""
        gets = {}
        for scheme, entry in deployments.items():
            volume = entry["volume"]
            registry = entry["registry"]
            fs = SharoesFilesystem(volume, registry.user("user1"))
            fs.mount()
            entry["server"].stats.reset()
            fs.getattr("/home/user1/dir0/file0.dat")
            gets[scheme] = entry["server"].stats.gets
        assert gets["scheme1"] <= gets["scheme2"] <= gets["scheme1"] + 2


class TestDeleteCost:
    def test_unlink_reclaims_more_replicas_under_scheme1(self,
                                                         deployments):
        """Deletion mirrors creation: Scheme-1 reclaims one metadata
        replica per user, Scheme-2 one per permission chain -- visible
        in the SSP's per-kind delete counts and bytes_freed."""
        rows = []
        meta_deletes = {}
        freed = {}
        for scheme, entry in deployments.items():
            volume = entry["volume"]
            registry = entry["registry"]
            fs = SharoesFilesystem(volume, registry.user("user0"))
            fs.mount()
            stats = entry["server"].stats
            stats.reset()
            fs.unlink("/home/user0/dir1/file1.dat")
            meta_deletes[scheme] = stats.deletes_by_kind.get("meta", 0)
            freed[scheme] = stats.bytes_freed
            rows.append([scheme, str(stats.deletes),
                         str(meta_deletes[scheme]),
                         str(stats.deletes_by_kind.get("data", 0)),
                         f"{freed[scheme]} B"])
        emit("ablation_deletes", format_table(
            "Scheme-1 vs Scheme-2 -- blobs reclaimed by one unlink",
            ["scheme", "blobs deleted", "meta replicas", "data blocks",
             "bytes freed"], rows))
        assert meta_deletes["scheme1"] >= N_USERS
        assert meta_deletes["scheme2"] <= 4
        assert freed["scheme1"] > freed["scheme2"] > 0


def test_benchmark_scheme2_migration(benchmark):
    def run():
        registry = PrincipalRegistry()
        users = [registry.create_user(f"u{i}", key_bits=512).user_id
                 for i in range(3)]
        registry.create_group("g", set(users), key_bits=512)
        tree = make_enterprise_tree(users, "g", dirs_per_user=1,
                                    files_per_dir=2)
        volume = SharoesVolume(StorageServer(), registry)
        return MigrationTool(volume).migrate(tree)
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.files > 0
