"""Path handling: absolute slash-separated paths, normalized."""

from __future__ import annotations

from ..errors import FilesystemError


class InvalidPath(FilesystemError):
    """Malformed path string."""


def split_path(path: str) -> list[str]:
    """Split an absolute path into components.

    ``"/"`` -> ``[]``; ``"/a//b/"`` -> ``["a", "b"]``.  ``.`` components
    are dropped; ``..`` is rejected (the client resolves forward only).
    """
    if not path or not path.startswith("/"):
        raise InvalidPath(f"path must be absolute: {path!r}")
    parts = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            raise InvalidPath("'..' components are not supported")
        if "\x00" in component:
            raise InvalidPath("NUL byte in path component")
        parts.append(component)
    return parts


def normalize(path: str) -> str:
    """Canonical form of an absolute path."""
    return "/" + "/".join(split_path(path))


def parent_and_name(path: str) -> tuple[str, str]:
    """Split into (parent path, final component)."""
    parts = split_path(path)
    if not parts:
        raise InvalidPath("the root has no parent")
    return "/" + "/".join(parts[:-1]), parts[-1]


def join(base: str, *names: str) -> str:
    """Join path components onto an absolute base."""
    combined = base.rstrip("/")
    for name in names:
        combined += "/" + name.strip("/")
    return normalize(combined if combined.startswith("/") else "/" + combined)
