"""Per-user write-ahead intent journal (crash-consistent mutations).

Every SHAROES mutation is a *multi-blob* update: ``create_file`` writes
data blocks, metadata replicas and the parent directory table;
``rename`` touches two parents; ``unlink`` rewrites tables and deletes
object blobs.  The SSP applies blobs one at a time, so a client crash
mid-mutation strands half-applied state that an audit can detect but
not explain.  This module supplies the redo log that makes those
mutations atomic:

* before any blob of a mutation leaves the client, the full set of
  staged wire calls (puts with their sealed payloads, deletes) is
  serialized into an :class:`IntentRecord` and uploaded to the user's
  journal blob at the SSP;
* the mutation then *applies* (replays the staged calls for real) and
  *commits* (truncates the journal);
* a crash at any point leaves either no intent (nothing was sent:
  the op rolled back by construction) or a sealed intent whose replay
  is idempotent (every staged action is an overwrite-put or an
  idempotent delete), so recovery always converges on *fully applied*.

The SSP is untrusted, so the journal itself follows the paper's in-band
key discipline: payloads are encrypted under a **journal encryption
key** derived from the user's private identity key (the user-scope MEK
analogue -- it never exists outside the enterprise), and the sealed
blob is signed with the user's identity key (the user-scope MSK
analogue).  Recovery verifies before replaying, so a tampered or
SSP-forged intent is rejected with :class:`~repro.errors.
IntegrityError`, never replayed.

Known gap, shared with the rest of the design: an SSP serving a stale
*committed* journal uniformly on first contact is a rollback the client
cannot see (SUNDR's fork-consistency gap; ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import hashes
from ..crypto.provider import CryptoProvider
from ..errors import BlobNotFound, IntegrityError
from ..serialize import Reader, SerializationError, Writer
from ..storage.blobs import BlobId, principal_hash
from .sealed import bind_context, open_verified, seal_and_sign

#: staged wire-call kinds, mirroring the client's batching helpers so a
#: replay reproduces the exact request grouping (and therefore the
#: exact simulated network cost) of the original mutation.
PUT = "put"
PUT_MANY = "put_many"
DELETE = "delete"
DELETE_MANY = "delete_many"

_KINDS = (PUT, PUT_MANY, DELETE, DELETE_MANY)


def journal_key(user) -> bytes:
    """Journal encryption key: derived, never stored, never leaves.

    Deterministic in the user's private identity key, so any mount by
    the same user (or the enterprise fsck holding the key escrow) can
    open the journal, while the SSP -- which only ever sees the public
    half -- cannot read or forge records.
    """
    return hashes.digest(b"sharoes/journal-key/"
                         + user.private_key.to_bytes())


def journal_context(user_id: str) -> bytes:
    """Context binding a journal blob to its owner's slot."""
    return bind_context("journal", 0, principal_hash(user_id))


@dataclass(frozen=True)
class StagedCall:
    """One deferred wire call of a mutation batch.

    ``blobs`` pairs each :class:`BlobId` with its sealed payload (puts)
    or ``None`` (deletes).  Payloads are stored exactly as they would
    hit the wire -- already encrypted and signed under object keys --
    so replay needs no cryptography beyond opening the journal itself.
    """

    kind: str
    blobs: tuple[tuple[BlobId, bytes | None], ...]

    def blob_ids(self) -> tuple[BlobId, ...]:
        return tuple(blob_id for blob_id, _ in self.blobs)

    def to_writer(self, writer: Writer) -> None:
        writer.put_str(self.kind)
        writer.put_int(len(self.blobs))
        for blob_id, payload in self.blobs:
            writer.put_str(blob_id.kind)
            writer.put_int(blob_id.inode)
            writer.put_str(blob_id.selector)
            writer.put_optional_bytes(payload)

    @classmethod
    def from_reader(cls, reader: Reader) -> "StagedCall":
        kind = reader.get_str()
        if kind not in _KINDS:
            raise SerializationError(f"unknown staged call kind {kind!r}")
        count = reader.get_int()
        blobs = []
        for _ in range(count):
            blob_id = BlobId(kind=reader.get_str(),
                             inode=reader.get_int(),
                             selector=reader.get_str())
            blobs.append((blob_id, reader.get_optional_bytes()))
        return cls(kind=kind, blobs=tuple(blobs))


@dataclass(frozen=True)
class IntentRecord:
    """One journaled mutation: op name, sequence number, staged calls.

    ``fences`` lists the ``(inode, fencing epoch)`` pairs of the leases
    this mutation held when it was journaled (empty without the lease
    subsystem).  The apply phase fences each write on the corresponding
    lease blob, so a zombie whose lease was taken over is rejected by
    the SSP mechanically; recovery, by contrast, replays *unfenced* --
    whoever recovers (successor takeover, fsck, the owner's next mount)
    is by construction acting on behalf of the newest epoch.
    """

    seq: int
    op: str
    calls: tuple[StagedCall, ...]
    fences: tuple[tuple[int, int], ...] = ()

    def mutation_count(self) -> int:
        """Total individual puts+deletes this intent will apply."""
        return sum(len(call.blobs) for call in self.calls)

    def to_writer(self, writer: Writer) -> None:
        writer.put_int(self.seq)
        writer.put_str(self.op)
        writer.put_int(len(self.calls))
        for call in self.calls:
            call.to_writer(writer)
        writer.put_int(len(self.fences))
        for inode, epoch in self.fences:
            writer.put_int(inode)
            writer.put_int(epoch)

    @classmethod
    def from_reader(cls, reader: Reader) -> "IntentRecord":
        seq = reader.get_int()
        op = reader.get_str()
        count = reader.get_int()
        calls = tuple(StagedCall.from_reader(reader)
                      for _ in range(count))
        fence_count = reader.get_int()
        fences = tuple((reader.get_int(), reader.get_int())
                       for _ in range(fence_count))
        return cls(seq=seq, op=op, calls=calls, fences=fences)


def encode_records(records: list[IntentRecord]) -> bytes:
    writer = Writer()
    writer.put_int(len(records))
    for record in records:
        record.to_writer(writer)
    return writer.getvalue()


def decode_records(raw: bytes) -> list[IntentRecord]:
    reader = Reader(raw)
    count = reader.get_int()
    records = [IntentRecord.from_reader(reader) for _ in range(count)]
    reader.expect_end()
    return records


def seal_journal(provider: CryptoProvider, user,
                 records: list[IntentRecord]) -> bytes:
    """Encrypt-then-sign the pending-intent list for one user."""
    return seal_and_sign(provider, journal_key(user), user.private_key,
                         journal_context(user.user_id),
                         encode_records(records))


def open_journal(provider: CryptoProvider, user,
                 blob: bytes) -> list[IntentRecord]:
    """Verify, decrypt and decode a journal blob.

    Raises :class:`IntegrityError` on a bad signature (tampering, or an
    SSP-forged record -- the SSP holds no user private key) and on any
    structural corruption of the verified plaintext.
    """
    payload = open_verified(provider, journal_key(user), user.public_key,
                            journal_context(user.user_id), blob)
    try:
        return decode_records(payload)
    except SerializationError as exc:
        raise IntegrityError(
            f"journal for {user.user_id}: verified payload is "
            f"structurally corrupt: {exc}") from exc


class MutationBatch:
    """Staged wire calls plus a read-your-writes overlay for one op.

    While a batch is active the client defers every put/delete here
    instead of sending it, preserving the original request *grouping*
    (a ``put_many`` stays one round trip on replay).  Reads during the
    op consult the overlay first, so an op that re-reads a blob it just
    wrote (e.g. ``symlink`` resolving its fresh entry with caching
    disabled) observes its own staged state.
    """

    def __init__(self, op: str):
        self.op = op
        self.calls: list[StagedCall] = []
        self._writes: dict[BlobId, bytes] = {}
        self._deletes: set[BlobId] = set()

    def stage(self, kind: str,
              blobs: list[tuple[BlobId, bytes | None]]) -> None:
        self.calls.append(StagedCall(kind=kind, blobs=tuple(blobs)))
        for blob_id, payload in blobs:
            if payload is None:
                self._writes.pop(blob_id, None)
                self._deletes.add(blob_id)
            else:
                self._deletes.discard(blob_id)
                self._writes[blob_id] = payload

    def read(self, blob_id: BlobId) -> tuple[bool, bytes | None]:
        """Overlay lookup: (covered?, payload-or-None-if-deleted)."""
        if blob_id in self._writes:
            return True, self._writes[blob_id]
        if blob_id in self._deletes:
            return True, None
        return False, None

    def exists(self, blob_id: BlobId) -> bool | None:
        """Overlay existence: True/False if covered, None to fall through."""
        if blob_id in self._writes:
            return True
        if blob_id in self._deletes:
            return False
        return None

    def record(self, seq: int,
               fences: tuple[tuple[int, int], ...] = ()) -> IntentRecord:
        return IntentRecord(seq=seq, op=self.op, calls=tuple(self.calls),
                            fences=fences)


@dataclass
class RecoveryOutcome:
    """What one journal recovery pass did (client mount or fsck)."""

    replayed: list[IntentRecord] = field(default_factory=list)
    aborted: list[IntentRecord] = field(default_factory=list)

    @property
    def pending_found(self) -> int:
        return len(self.replayed) + len(self.aborted)


def fences_stale(server, record: IntentRecord) -> bool:
    """Has any lease this intent relied on moved past its epoch?

    A record with stale fences was *superseded*: a successor took the
    lease over (rolling the journal forward first), so anything still
    journaled at an older epoch predates the successor's writes and
    must be dropped, not replayed -- replaying it would resurrect the
    lost-update the fencing exists to prevent.  An absent lease blob
    reads as epoch 0 (fail open), matching the SSP's fence check.
    """
    from ..storage.blobs import lease_blob
    from ..storage.server import fence_epoch

    for inode, epoch in record.fences:
        try:
            current = server.get(lease_blob(inode))
        except BlobNotFound:
            current = None
        if epoch < fence_epoch(current):
            return True
    return False


def roll_forward(server, provider: CryptoProvider,
                 user) -> list[IntentRecord]:
    """Verify and replay ``user``'s pending intents, then truncate.

    The single roll-forward code path shared by ``fsck --repair``
    (including ``--stranded``) and lease takeover: open the user's
    journal with their key (the caller supplies the key material -- the
    user's own at mount, the enterprise escrow everywhere else), replay
    every staged call in order, and commit the empty journal.  Replay
    itself is *unfenced* (the recovering party acts for or ahead of the
    newest fencing epoch by construction), but records whose recorded
    fences lag the current lease chain are skipped: they were already
    superseded by a takeover (see :func:`fences_stale`).

    Returns the replayed records (empty if no journal / nothing
    pending).  Raises :class:`~repro.errors.IntegrityError` if the
    journal fails verification -- the caller decides whether to
    quarantine; nothing is ever replayed from untrusted bytes.
    """
    from ..storage.blobs import journal_blob  # cycle-free local import

    jid = journal_blob(user.user_id)
    try:
        blob = server.get(jid)
    except BlobNotFound:
        return []
    records = open_journal(provider, user, blob)
    if not records:
        return []
    replayed = []
    for record in records:
        if fences_stale(server, record):
            continue
        for call in record.calls:
            for blob_id, payload in call.blobs:
                if payload is None:
                    server.delete(blob_id)
                else:
                    server.put(blob_id, payload)
        replayed.append(record)
    server.put(jid, seal_journal(provider, user, []))
    return replayed
