"""Inode number allocation.

A single monotonically increasing allocator per volume.  Multi-client
allocation coordination (leases, ranges) is orthogonal to the paper's
contribution; clients of one volume share the allocator object.
"""

from __future__ import annotations


class InodeAllocator:
    """Hands out unique inode numbers, starting at the ext2-style root 2."""

    ROOT_INODE = 2

    def __init__(self, next_inode: int | None = None):
        self._next = next_inode if next_inode is not None else self.ROOT_INODE

    def allocate(self) -> int:
        inode = self._next
        self._next += 1
        return inode

    @property
    def allocated(self) -> int:
        """How many inodes have been handed out."""
        return self._next - self.ROOT_INODE
