"""Seal-and-sign envelope for everything stored at the SSP.

Every SHAROES blob -- metadata replica, directory-table view, file data
block -- is stored as::

    Writer(ciphertext, signature)

where ``ciphertext = SymEnc(key, payload)`` and ``signature`` covers a
*context-bound* message ``context || ciphertext``.  The context string
(blob kind + inode + selector/index) prevents an untrusted SSP from
swapping validly-signed blobs between locations -- e.g. serving file A's
(correctly signed) data for file B, or block 3 in place of block 0.

Signing covers the ciphertext, so readers verify *before* decrypting and
writers never reveal plaintext to the signature path.  This realizes the
paper's reader/writer distinction: DEK holders can decrypt, but only DSK
holders can produce blobs that verify under the DVK.
"""

from __future__ import annotations

from ..crypto.provider import CryptoProvider
from ..errors import IntegrityError
from ..serialize import Reader, SerializationError, Writer


def bind_context(kind: str, inode: int, qualifier: str = "") -> bytes:
    """Context string binding a blob to its logical location."""
    return f"sharoes/{kind}/{inode}/{qualifier}".encode("utf-8")


def seal_and_sign(provider: CryptoProvider, sym_key: bytes, signing_key,
                  context: bytes, payload: bytes) -> bytes:
    """Encrypt ``payload`` then sign ``context || ciphertext``."""
    ciphertext = provider.sym_encrypt(sym_key, payload)
    signature = provider.sign(signing_key, context + ciphertext)
    writer = Writer()
    writer.put_bytes(ciphertext)
    writer.put_bytes(signature)
    return writer.getvalue()


def open_verified(provider: CryptoProvider, sym_key: bytes,
                  verification_key, context: bytes, blob: bytes) -> bytes:
    """Verify the signature, then decrypt.

    Raises :class:`IntegrityError` on any tampering (bit flips, blob
    swaps, structural corruption, or forged writes by DEK-only readers).
    """
    try:
        reader = Reader(blob)
        ciphertext = reader.get_bytes()
        signature = reader.get_bytes()
        reader.expect_end()
    except SerializationError as exc:
        raise IntegrityError(f"malformed sealed blob: {exc}") from exc
    provider.verify(verification_key, context + ciphertext, signature)
    return provider.sym_decrypt(sym_key, ciphertext)


def open_unverified(provider: CryptoProvider, sym_key: bytes,
                    blob: bytes) -> bytes:
    """Decrypt without verifying (used by tests to model lazy readers)."""
    reader = Reader(blob)
    ciphertext = reader.get_bytes()
    reader.get_bytes()  # discard signature
    reader.expect_end()
    return provider.sym_decrypt(sym_key, ciphertext)


def signature_of(blob: bytes) -> bytes:
    """Extract the signature field (for tamper-crafting in tests)."""
    reader = Reader(blob)
    reader.get_bytes()
    return reader.get_bytes()


def replace_ciphertext(blob: bytes, new_ciphertext: bytes) -> bytes:
    """Re-wrap a blob with different ciphertext, keeping the signature.

    Only used by attack-simulation tests (a malicious writer splicing
    content under someone else's signature must be caught by verifiers).
    """
    reader = Reader(blob)
    reader.get_bytes()
    signature = reader.get_bytes()
    writer = Writer()
    writer.put_bytes(new_ciphertext)
    writer.put_bytes(signature)
    return writer.getvalue()


class VerificationFailed(IntegrityError):
    """Alias kept for symmetry with older call sites."""
