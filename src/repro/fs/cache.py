"""Client-side LRU cache with a byte budget.

The SHAROES filesystem caches *decrypted* metadata, directory tables and
data blocks; every miss costs an SSP round trip plus decryption, which is
why the Postmark benchmark (paper Figure 10) sweeps cache size -- the
smaller the cache, the more the metadata-crypto differences between the
five implementations show.

Capacity is expressed in bytes of (approximate) decrypted payload, as a
fraction of the total dataset in the benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: first-time inserts only; overwrites of a live key count below.
    insertions: int = 0
    #: puts that replaced an existing entry (write-through refreshes).
    replacements: int = 0
    #: puts dropped without caching: zero-capacity cache, or an object
    #: larger than the whole byte budget.  Without this counter those
    #: drops were silent and skewed hit-rate analyses.
    rejected: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """Byte-budgeted LRU.  ``capacity_bytes=0`` disables caching entirely;
    ``capacity_bytes=None`` means unbounded (the 100% point in Figure 10).
    """

    def __init__(self, capacity_bytes: int | None = None):
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity must be >= 0 (or None for unbounded)")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value or None; refreshes recency on hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: Hashable, value: Any, size_bytes: int) -> None:
        """Insert/replace; evicts least-recently-used entries to fit.

        Objects larger than the whole budget are simply not cached.
        """
        if self.capacity_bytes == 0:
            self.stats.rejected += 1
            return
        replacing = key in self._entries
        if replacing:
            self._used_bytes -= self._entries.pop(key)[1]
        if (self.capacity_bytes is not None
                and size_bytes > self.capacity_bytes):
            # Too big to ever fit; any stale entry stays evicted.
            self.stats.rejected += 1
            return
        self._entries[key] = (value, size_bytes)
        self._used_bytes += size_bytes
        if replacing:
            self.stats.replacements += 1
        else:
            self.stats.insertions += 1
        while (self.capacity_bytes is not None
               and self._used_bytes > self.capacity_bytes):
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._used_bytes -= evicted_size
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= entry[1]

    def invalidate_prefix(self, prefix: tuple) -> None:
        """Drop every entry whose (tuple) key starts with ``prefix``."""
        victims = [k for k in self._entries
                   if isinstance(k, tuple) and k[:len(prefix)] == prefix]
        for key in victims:
            self.invalidate(key)

    def clear(self) -> None:
        self._entries.clear()
        self._used_bytes = 0
