"""The SHAROES filesystem: metadata structures, CAP navigation, client."""

from .cache import CacheStats, LruCache
from .consistency import ConsistencyLog, ForkDetected, VersionStatement
from .freshness import FreshnessMonitor, StaleObjectError
from .client import ClientConfig, OpenFile, ResolvedNode, SharoesFilesystem
from .dirtable import DIRECT, SPLIT, ZERO, DirEntry, DirPointer, TableView
from .inode import InodeAllocator
from .metadata import MetadataAttrs, MetadataView, Stat
from .permissions import (DIRECTORY, EXEC, FILE, GROUP, OTHER, OWNER, READ,
                          WRITE, AclEntry, ObjectPerms, ReferenceEvaluator,
                          format_mode, parse_mode, triple)
from .superblock import Superblock
from .volume import (DEFAULT_BLOCK_SIZE, SharoesVolume, block_blob_id,
                     table_blob_id)

__all__ = [
    "SharoesFilesystem",
    "ClientConfig",
    "OpenFile",
    "ResolvedNode",
    "SharoesVolume",
    "DEFAULT_BLOCK_SIZE",
    "block_blob_id",
    "table_blob_id",
    "MetadataAttrs",
    "MetadataView",
    "Stat",
    "TableView",
    "DirEntry",
    "DirPointer",
    "DIRECT",
    "SPLIT",
    "ZERO",
    "Superblock",
    "InodeAllocator",
    "LruCache",
    "CacheStats",
    "FreshnessMonitor",
    "StaleObjectError",
    "ConsistencyLog",
    "ForkDetected",
    "VersionStatement",
    "AclEntry",
    "ObjectPerms",
    "ReferenceEvaluator",
    "format_mode",
    "parse_mode",
    "triple",
    "READ",
    "WRITE",
    "EXEC",
    "OWNER",
    "GROUP",
    "OTHER",
    "FILE",
    "DIRECTORY",
]
