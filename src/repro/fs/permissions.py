"""The *nix permission model: modes, classes and a reference evaluator.

SHAROES's goal is to replicate these semantics cryptographically.  This
module is the *ground truth*: a plain (non-cryptographic) implementation of
the original UNIX owner/group/other model plus minimal POSIX ACL user
entries.  Property-based tests check that what the cryptographic CAP layer
allows/denies matches what this evaluator says, which is the central
correctness claim of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

READ = 4
WRITE = 2
EXEC = 1

OWNER = "owner"
GROUP = "group"
OTHER = "other"

FILE = "file"
DIRECTORY = "dir"
#: Symbolic links carry their target as (encrypted) file content and are
#: CAP-wise identical to files; their mode bits are conventional.
SYMLINK = "symlink"


def triple(mode: int, which: str) -> int:
    """Extract one rwx triple from a 9-bit mode (e.g. 0o754)."""
    shift = {OWNER: 6, GROUP: 3, OTHER: 0}[which]
    return (mode >> shift) & 0o7


def format_mode(mode: int) -> str:
    """Render a 9-bit mode as ``rwxr-x---``."""
    out = []
    for shift in (6, 3, 0):
        bits = (mode >> shift) & 0o7
        out.append("r" if bits & READ else "-")
        out.append("w" if bits & WRITE else "-")
        out.append("x" if bits & EXEC else "-")
    return "".join(out)


def parse_mode(text: str) -> int:
    """Inverse of :func:`format_mode` (also accepts octal strings)."""
    if text.isdigit():
        return int(text, 8)
    if len(text) != 9:
        raise ValueError(f"mode string must be 9 chars: {text!r}")
    mode = 0
    for i, (char, bit) in enumerate(zip(text, "rwxrwxrwx")):
        if char == bit:
            mode |= 1 << (8 - i)
        elif char != "-":
            raise ValueError(f"bad mode char {char!r} at {i}")
    return mode


@dataclass(frozen=True)
class AclEntry:
    """A POSIX-ACL style per-user permission grant."""

    user_id: str
    bits: int  # rwx bits, 0..7


@dataclass
class ObjectPerms:
    """Ownership + mode + ACL of one filesystem object."""

    owner: str
    group: str
    mode: int  # 9-bit rwx triple set
    ftype: str = FILE
    acl: tuple[AclEntry, ...] = field(default_factory=tuple)

    def class_of(self, user_id: str, user_groups: set[str]) -> str:
        """Which permission class applies to ``user_id`` for this object.

        ACL entries take precedence (returned as a pseudo-class
        ``acl:<uid>``), then the classic owner -> group -> other cascade.
        """
        for entry in self.acl:
            if entry.user_id == user_id:
                return f"acl:{user_id}"
        if user_id == self.owner:
            return OWNER
        if self.group in user_groups:
            return GROUP
        return OTHER

    def bits_for_class(self, perm_class: str) -> int:
        if perm_class.startswith("acl:"):
            uid = perm_class[4:]
            for entry in self.acl:
                if entry.user_id == uid:
                    return entry.bits
            raise ValueError(f"no ACL entry for {uid!r}")
        return triple(self.mode, perm_class)

    def bits_for(self, user_id: str, user_groups: set[str]) -> int:
        return self.bits_for_class(self.class_of(user_id, user_groups))


class ReferenceEvaluator:
    """Plain *nix semantics over a tree of :class:`ObjectPerms`.

    ``lookup_perms(path)`` must return the :class:`ObjectPerms` of every
    object; the evaluator then answers the questions the paper's CAPs
    encode (section III): can this user list / traverse / read / write /
    create-in / delete-from each object?

    Path-level operations require EXEC on every ancestor directory
    (traversal), exactly as in UNIX.
    """

    def __init__(self, lookup_perms, user_groups_of):
        self._perms = lookup_perms
        self._groups = user_groups_of

    def _bits(self, path_perms: ObjectPerms, user_id: str) -> int:
        return path_perms.bits_for(user_id, self._groups(user_id))

    def can_traverse_to(self, ancestors: list[ObjectPerms],
                        user_id: str) -> bool:
        """EXEC on every ancestor directory."""
        return all(self._bits(p, user_id) & EXEC for p in ancestors)

    def can_list(self, perms: ObjectPerms, user_id: str) -> bool:
        """``ls`` on a directory needs READ on it."""
        return perms.ftype == DIRECTORY and bool(
            self._bits(perms, user_id) & READ)

    def can_enter(self, perms: ObjectPerms, user_id: str) -> bool:
        """``cd``/traversal needs EXEC on the directory."""
        return perms.ftype == DIRECTORY and bool(
            self._bits(perms, user_id) & EXEC)

    def can_modify_dir(self, perms: ObjectPerms, user_id: str) -> bool:
        """Creating/deleting entries needs WRITE *and* EXEC on the dir."""
        bits = self._bits(perms, user_id)
        return (perms.ftype == DIRECTORY
                and bool(bits & WRITE) and bool(bits & EXEC))

    def can_read_file(self, perms: ObjectPerms, user_id: str) -> bool:
        return perms.ftype == FILE and bool(self._bits(perms, user_id) & READ)

    def can_write_file(self, perms: ObjectPerms, user_id: str) -> bool:
        return perms.ftype == FILE and bool(
            self._bits(perms, user_id) & WRITE)

    def can_execute_file(self, perms: ObjectPerms, user_id: str) -> bool:
        return perms.ftype == FILE and bool(self._bits(perms, user_id) & EXEC)
