"""Client-side freshness monitoring (the paper's integrity future work).

Section VIII: "First, we plan to implement integrity mechanisms for
SHAROES, leveraging some of the related work [SUNDR]."  Signatures
already stop the SSP from *fabricating* state, but nothing stops it from
serving an older, validly-signed version (a rollback).  Full
fork-consistency is SUNDR's contribution; the practical client-side slice
implemented here is **version monotonicity**:

* every metadata replica carries a version counter (bumped on each
  owner update);
* the monitor remembers, per inode, the highest version this client has
  ever verified, plus a digest of that replica;
* a fetch that returns a *lower* version than previously seen -- or the
  same version with different bytes (equivocation) -- raises
  :class:`StaleObjectError`.

This detects rollback of any object the client has visited before.  It
cannot detect a rollback on first contact or cross-client forks -- that
is exactly the gap SUNDR's vector clocks close, and why the paper calls
the two systems complementary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import hashes
from ..errors import IntegrityError


class StaleObjectError(IntegrityError):
    """The SSP served an object older than one this client verified."""


@dataclass(frozen=True)
class _Observation:
    version: int
    digest: bytes


class FreshnessMonitor:
    """Per-client memory of the newest verified version of each object.

    The monitor is deliberately local state (not stored at the SSP --
    the SSP is the adversary here).  A long-lived client accumulates
    coverage; a fresh client starts blind, mirroring SUNDR's observation
    that freshness is a property of a *view*, not of the data.
    """

    def __init__(self) -> None:
        self._seen: dict[int, _Observation] = {}

    def observe_metadata(self, inode: int, version: int,
                         payload: bytes) -> None:
        """Record (and check) one verified metadata replica.

        Raises :class:`StaleObjectError` if the SSP served a version
        older than previously verified, or different bytes under an
        already-seen version (equivocation between replicas is fine --
        each selector has its own bytes -- so the digest covers the
        attributes, not the whole replica).
        """
        digest = hashes.digest(payload)
        previous = self._seen.get(inode)
        if previous is not None:
            if version < previous.version:
                raise StaleObjectError(
                    f"inode {inode}: SSP served version {version} after "
                    f"version {previous.version} was verified (rollback)")
            if version == previous.version and digest != previous.digest:
                raise StaleObjectError(
                    f"inode {inode}: two different contents claim "
                    f"version {version} (equivocation)")
        if previous is None or version >= previous.version:
            self._seen[inode] = _Observation(version=version,
                                             digest=digest)

    def forget(self, inode: int) -> None:
        """Drop tracking (after unlink: inode numbers are not reused,
        but a deliberate reset hook keeps the monitor bounded)."""
        self._seen.pop(inode, None)

    def high_watermark(self, inode: int) -> int | None:
        obs = self._seen.get(inode)
        return obs.version if obs is not None else None

    def tracked_count(self) -> int:
        return len(self._seen)
