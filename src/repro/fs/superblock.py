"""Filesystem superblock (paper section III-C).

The superblock bootstraps in-band key distribution: it carries the inode
number of the namespace root plus the MEK/MVK that decrypt and verify the
root's metadata replica.  One copy per authorized user is stored at the
SSP, encrypted with that user's public key, so mounting costs exactly one
public-key operation and needs no out-of-band channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import rsa
from ..crypto.provider import CryptoProvider
from ..serialize import Reader, Writer


@dataclass(frozen=True)
class Superblock:
    """Decrypted superblock contents for one user."""

    root_inode: int
    root_selector: str
    root_mek: bytes
    root_mvk: bytes  # serialized VerificationKey
    scheme_name: str
    block_size: int

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_int(self.root_inode)
        writer.put_str(self.root_selector)
        writer.put_bytes(self.root_mek)
        writer.put_bytes(self.root_mvk)
        writer.put_str(self.scheme_name)
        writer.put_int(self.block_size)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Superblock":
        reader = Reader(raw)
        root_inode = reader.get_int()
        root_selector = reader.get_str()
        root_mek = reader.get_bytes()
        root_mvk = reader.get_bytes()
        scheme_name = reader.get_str()
        block_size = reader.get_int()
        reader.expect_end()
        return cls(root_inode=root_inode, root_selector=root_selector,
                   root_mek=root_mek, root_mvk=root_mvk,
                   scheme_name=scheme_name, block_size=block_size)

    def wrap(self, provider: CryptoProvider,
             user_public: rsa.PublicKey) -> bytes:
        """Encrypt for one user (``E_pub(superblock)``, stored at the SSP)."""
        return provider.pk_encrypt(user_public, self.to_bytes())

    @classmethod
    def unwrap(cls, provider: CryptoProvider, user_private: rsa.PrivateKey,
               blob: bytes) -> "Superblock":
        """The one-time public-key operation performed at mount."""
        return cls.from_bytes(provider.pk_decrypt(user_private, blob))
