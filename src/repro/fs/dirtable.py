"""Directory tables (paper Figure 3) and their per-CAP views.

The classic ext2 directory table maps names to inode numbers.  SHAROES
adds two columns -- the child's MEK and MVK -- so the table not only says
*where* a child's metadata lives but hands over the keys to decrypt and
verify it.  In this reproduction a row also names the child's *selector*
(which metadata replica to fetch) and may instead be a **split marker**
(resolve through a public-key lockbox, paper section III-D) or a **zero
marker** (this permission chain has no access to the child).

Three serialized view styles realize the directory CAPs:

* ``full``   -- all columns (read-exec and rwx CAPs);
* ``names``  -- the name column only (read-only CAP: ``ls`` works,
  traversal does not);
* ``hidden`` -- the name column removed and each row's (inode, selector,
  MEK, MVK) encrypted under a key derived from the child's *name*
  (exec-only CAP: you can ``cd`` to a child you can name, but not list).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import hashes
from ..crypto.provider import CryptoProvider
from ..errors import CryptoError, FileNotFound, PermissionDenied
from ..serialize import Reader, Writer
from ..caps.model import VIEW_FULL, VIEW_HIDDEN, VIEW_NAMES

# Row kinds.
DIRECT = "d"
SPLIT = "s"
ZERO = "z"


@dataclass(frozen=True)
class DirPointer:
    """Keys needed to fetch + open a child's metadata replica."""

    selector: str
    mek: bytes
    mvk: bytes  # serialized VerificationKey


@dataclass
class DirEntry:
    """One row of one view: a named child and how (if) to reach it."""

    name: str
    inode: int
    kind: str  # DIRECT | SPLIT | ZERO
    pointer: DirPointer | None = None

    def to_writer(self, writer: Writer) -> None:
        writer.put_str(self.name)
        writer.put_int(self.inode)
        writer.put_str(self.kind)
        if self.kind == DIRECT:
            assert self.pointer is not None
            writer.put_str(self.pointer.selector)
            writer.put_bytes(self.pointer.mek)
            writer.put_bytes(self.pointer.mvk)

    @classmethod
    def from_reader(cls, reader: Reader) -> "DirEntry":
        name = reader.get_str()
        inode = reader.get_int()
        kind = reader.get_str()
        pointer = None
        if kind == DIRECT:
            pointer = DirPointer(selector=reader.get_str(),
                                 mek=reader.get_bytes(),
                                 mvk=reader.get_bytes())
        return cls(name=name, inode=inode, kind=kind, pointer=pointer)

    def hidden_payload(self) -> bytes:
        """Row content for the exec-only view: everything but the name."""
        writer = Writer()
        writer.put_int(self.inode)
        writer.put_str(self.kind)
        if self.kind == DIRECT:
            assert self.pointer is not None
            writer.put_str(self.pointer.selector)
            writer.put_bytes(self.pointer.mek)
            writer.put_bytes(self.pointer.mvk)
        return writer.getvalue()

    @classmethod
    def from_hidden_payload(cls, name: str, raw: bytes) -> "DirEntry":
        reader = Reader(raw)
        inode = reader.get_int()
        kind = reader.get_str()
        pointer = None
        if kind == DIRECT:
            pointer = DirPointer(selector=reader.get_str(),
                                 mek=reader.get_bytes(),
                                 mvk=reader.get_bytes())
        reader.expect_end()
        return cls(name=name, inode=inode, kind=kind, pointer=pointer)


def _locator(row_key: bytes) -> bytes:
    """Blind index for a hidden row: find-by-name without revealing names."""
    return hashes.hmac(row_key, b"sharoes-row-locator")[:16]


class TableView:
    """One serialized view of a directory table.

    The in-memory representation depends on the style:

    * full:   ``entries`` dict (name -> DirEntry)
    * names:  ``names`` list
    * hidden: ``cells`` dict (locator -> encrypted row)
    """

    def __init__(self, style: str):
        if style not in (VIEW_FULL, VIEW_NAMES, VIEW_HIDDEN):
            raise ValueError(f"unknown table view style {style!r}")
        self.style = style
        self.entries: dict[str, DirEntry] = {}
        self.names: list[str] = []
        self.cells: dict[bytes, bytes] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, style: str, entries: list[DirEntry],
              provider: CryptoProvider | None = None,
              table_dek: bytes | None = None) -> "TableView":
        """Build a view from per-this-view rows.

        ``provider`` and ``table_dek`` are required for the hidden style
        (rows are encrypted under name-derived keys, charged as crypto).
        """
        view = cls(style)
        if style == VIEW_FULL:
            view.entries = {e.name: e for e in entries}
        elif style == VIEW_NAMES:
            view.names = sorted(e.name for e in entries)
        else:
            if provider is None or table_dek is None:
                raise CryptoError("hidden view needs provider and table DEK")
            for entry in entries:
                view._insert_hidden(entry, provider, table_dek)
        return view

    def _insert_hidden(self, entry: DirEntry, provider: CryptoProvider,
                       table_dek: bytes) -> None:
        row_key = provider.derive_row_key(table_dek, entry.name)
        cell = provider.sym_encrypt(row_key, entry.hidden_payload())
        self.cells[_locator(row_key)] = cell

    # -- queries ------------------------------------------------------------------

    def list_names(self) -> list[str]:
        """The ``ls`` operation on this view."""
        if self.style == VIEW_FULL:
            return sorted(self.entries)
        if self.style == VIEW_NAMES:
            return list(self.names)
        raise PermissionDenied(
            "exec-only directory: listing is not permitted "
            "(rows are name-keyed)")

    def lookup(self, name: str, provider: CryptoProvider | None = None,
               table_dek: bytes | None = None) -> DirEntry:
        """Traversal: find the row for ``name``.

        * full view: direct dictionary lookup;
        * hidden view: derive the row key from the name, locate and
          decrypt the row -- exactly the paper's exec-only semantics;
        * names view: denied (read permission grants listing only).
        """
        if self.style == VIEW_FULL:
            try:
                return self.entries[name]
            except KeyError:
                raise FileNotFound(name) from None
        if self.style == VIEW_HIDDEN:
            if provider is None or table_dek is None:
                raise CryptoError("hidden lookup needs provider and DEK")
            row_key = provider.derive_row_key(table_dek, name)
            cell = self.cells.get(_locator(row_key))
            if cell is None:
                raise FileNotFound(name)
            payload = provider.sym_decrypt(row_key, cell)
            return DirEntry.from_hidden_payload(name, payload)
        raise PermissionDenied(
            "read-only directory: traversal requires exec permission")

    def __contains__(self, name: str) -> bool:
        if self.style == VIEW_FULL:
            return name in self.entries
        if self.style == VIEW_NAMES:
            return name in self.names
        raise PermissionDenied("exec-only view cannot test membership")

    def entry_count(self) -> int:
        if self.style == VIEW_FULL:
            return len(self.entries)
        if self.style == VIEW_NAMES:
            return len(self.names)
        return len(self.cells)

    # -- mutation (writers) ------------------------------------------------------------

    def add(self, entry: DirEntry, provider: CryptoProvider | None = None,
            table_dek: bytes | None = None) -> None:
        if self.style == VIEW_FULL:
            self.entries[entry.name] = entry
        elif self.style == VIEW_NAMES:
            if entry.name not in self.names:
                self.names.append(entry.name)
                self.names.sort()
        else:
            if provider is None or table_dek is None:
                raise CryptoError("hidden add needs provider and DEK")
            self._insert_hidden(entry, provider, table_dek)

    def remove(self, name: str, provider: CryptoProvider | None = None,
               table_dek: bytes | None = None) -> None:
        if self.style == VIEW_FULL:
            self.entries.pop(name, None)
        elif self.style == VIEW_NAMES:
            if name in self.names:
                self.names.remove(name)
        else:
            if provider is None or table_dek is None:
                raise CryptoError("hidden remove needs provider and DEK")
            row_key = provider.derive_row_key(table_dek, name)
            self.cells.pop(_locator(row_key), None)

    # -- serialization -------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_str(self.style)
        if self.style == VIEW_FULL:
            writer.put_int(len(self.entries))
            for name in sorted(self.entries):
                self.entries[name].to_writer(writer)
        elif self.style == VIEW_NAMES:
            writer.put_int(len(self.names))
            for name in sorted(self.names):
                writer.put_str(name)
        else:
            writer.put_int(len(self.cells))
            for locator in sorted(self.cells):
                writer.put_bytes(locator)
                writer.put_bytes(self.cells[locator])
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TableView":
        reader = Reader(raw)
        style = reader.get_str()
        view = cls(style)
        count = reader.get_int()
        if style == VIEW_FULL:
            for _ in range(count):
                entry = DirEntry.from_reader(reader)
                view.entries[entry.name] = entry
        elif style == VIEW_NAMES:
            view.names = [reader.get_str() for _ in range(count)]
        else:
            for _ in range(count):
                locator = reader.get_bytes()
                view.cells[locator] = reader.get_bytes()
        reader.expect_end()
        return view
