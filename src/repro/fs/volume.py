"""SHAROES volume: enterprise-side deployment state for one filesystem.

A volume ties together the SSP server, the principal registry, the
replication scheme and the inode allocator, and knows how to *format* the
filesystem (create the namespace root and the per-user superblocks).  The
migration tool builds onto a formatted volume; clients mount it.

The volume object itself holds no secret key material -- everything it
writes is derived on the fly and persisted only in encrypted form at the
SSP.  It is the in-process stand-in for "the enterprise's provisioning
workstation".
"""

from __future__ import annotations

from ..caps.model import VIEW_FULL, VIEW_NONE
from ..caps.record import ObjectRecord
from ..caps.schemes import ReplicationScheme, make_scheme
from ..crypto.keys import OBJECT_SIGNATURE_PRIME_BITS
from ..crypto.provider import CryptoProvider
from ..errors import SharoesError
from ..principals.registry import PrincipalRegistry
from ..storage.blobs import data_blob, meta_blob, superblock_blob
from ..storage.server import StorageServer
from .dirtable import TableView
from .inode import InodeAllocator
from .metadata import MetadataAttrs
from .permissions import DIRECTORY
from .sealed import bind_context, seal_and_sign
from .superblock import Superblock

DEFAULT_BLOCK_SIZE = 64 * 1024


def table_blob_id(inode: int, selector: str):
    """Blob id of one directory-table view."""
    return data_blob(inode, "t:" + selector)


def block_blob_id(inode: int, index: int):
    """Blob id of one file data block."""
    return data_blob(inode, f"b{index}")


class SharoesVolume:
    """One SHAROES filesystem deployment."""

    def __init__(self, server: StorageServer, registry: PrincipalRegistry,
                 scheme: str | ReplicationScheme = "scheme2",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 signature_prime_bits: int = OBJECT_SIGNATURE_PRIME_BITS,
                 engine: str = "stream", retry_policy=None, clock=None):
        self.server = server
        self.registry = registry
        #: shared :class:`~repro.sim.clock.SimClock` for multi-client
        #: lease expiry (None = each leasing client without a cost model
        #: runs its own clock, which is fine single-client).
        self.clock = clock
        self.scheme = (scheme if isinstance(scheme, ReplicationScheme)
                       else make_scheme(scheme, registry))
        self.block_size = block_size
        self.signature_prime_bits = signature_prime_bits
        #: symmetric engine every client of this volume must use --
        #: sealed blobs from different engines do not interoperate, so
        #: the choice ("stream" or "aes") is a volume-format property.
        self.engine = engine
        #: default :class:`~repro.storage.resilient.RetryPolicy` clients
        #: of this volume mount with (None = direct, no retry layer).
        #: Volume-internal writes (format/write_object) go straight to
        #: ``self.server``; the transport wraps only *client* traffic.
        self.retry_policy = retry_policy
        self.allocator = InodeAllocator()
        self.root_inode: int | None = None
        self._root_record: ObjectRecord | None = None

    @property
    def formatted(self) -> bool:
        return self.root_inode is not None

    def format(self, root_owner: str, root_group: str,
               root_mode: int = 0o755,
               provider: CryptoProvider | None = None) -> ObjectRecord:
        """Create the namespace root and all user superblocks."""
        if self.formatted:
            raise SharoesError("volume is already formatted")
        provider = provider or CryptoProvider(self.engine)
        inode = self.allocator.allocate()
        attrs = MetadataAttrs(inode=inode, ftype=DIRECTORY,
                              owner=root_owner, group=root_group,
                              mode=root_mode)
        selectors = self.scheme.selectors(attrs)
        record = ObjectRecord.create(attrs, selectors,
                                     self.signature_prime_bits)
        self.write_object(provider, record)
        self.root_inode = inode
        self._root_record = record
        self.write_superblocks(provider, record)
        return record

    def write_object(self, provider: CryptoProvider,
                     record: ObjectRecord,
                     table_entries=None) -> None:
        """Write all metadata replicas (and table views for a directory)."""
        attrs = record.attrs
        owner_selector = self.scheme.owner_selector(attrs)
        for selector in self.scheme.selectors(attrs):
            cap = self.scheme.cap_for_selector(attrs, selector)
            blob = record.metadata_blob(provider, selector, cap,
                                        selector == owner_selector)
            self.server.put(meta_blob(attrs.inode, selector), blob)
        if attrs.ftype == DIRECTORY:
            self.write_tables(provider, record, table_entries or {})

    def table_style(self, attrs: MetadataAttrs, selector: str) -> str:
        """View style for one table replica.

        The owner's table view is always the full management copy: the
        owner needs canonical rows to rebuild every view on chmod/chown,
        and honest-client checks still apply the owner's actual CAP.
        Zero-CAP selectors have no table view at all (VIEW_NONE) -- their
        metadata replica exists for stat, but the directory's data block
        is unreachable.
        """
        if selector == self.scheme.owner_selector(attrs):
            return VIEW_FULL
        return self.scheme.cap_for_selector(attrs, selector).table_view

    def write_tables(self, provider: CryptoProvider, record: ObjectRecord,
                     entries_by_selector: dict[str, list]) -> None:
        """Seal + sign + store every table view of a directory."""
        attrs = record.attrs
        for selector in self.scheme.selectors(attrs):
            style = self.table_style(attrs, selector)
            if style == VIEW_NONE:
                continue
            dek = record.table_deks[selector]
            view = TableView.build(
                style, entries_by_selector.get(selector, []),
                provider=provider, table_dek=dek)
            context = bind_context("table", attrs.inode, selector)
            blob = seal_and_sign(provider, dek, record.dsk, context,
                                 view.to_bytes())
            self.server.put(table_blob_id(attrs.inode, selector), blob)

    def write_superblocks(self, provider: CryptoProvider,
                          root_record: ObjectRecord) -> int:
        """(Re)issue the per-user encrypted superblocks.

        A user whose selector on the root is not materialized (zero CAP)
        gets no superblock and therefore cannot mount -- the in-band
        analogue of not being in /etc/passwd.
        """
        attrs = root_record.attrs
        materialized = set(self.scheme.selectors(attrs))
        count = 0
        for user in self.registry.users():
            selector = self.scheme.selector_for_user(attrs, user.user_id)
            if selector not in materialized:
                continue
            superblock = Superblock(
                root_inode=attrs.inode,
                root_selector=selector,
                root_mek=root_record.selector_meks[selector],
                root_mvk=root_record.mvk.to_bytes(),
                scheme_name=self.scheme.name,
                block_size=self.block_size,
            )
            blob = superblock.wrap(
                provider, self.registry.directory.user_key(user.user_id))
            self.server.put(superblock_blob(user.user_id), blob)
            count += 1
        return count

    def provision_user(self, user_id: str,
                       provider: CryptoProvider | None = None) -> None:
        """Issue a superblock for a (newly added) user.

        Under Scheme-2 this is all a new user needs: replicas are shared
        per permission class.  Under Scheme-1 every object would need a
        new replica built by its owner; that full-tree walk is the
        scheme's documented enrolment cost and is intentionally not
        automated here (owners run ``rekey``/migration tooling instead).
        """
        if not self.formatted or self._root_record is None:
            raise SharoesError("volume must be formatted first")
        if self.scheme.name == "scheme1":
            raise SharoesError(
                "Scheme-1 enrolment requires rebuilding every owner's "
                "replica tree; register users before migration instead "
                "(this cost asymmetry is the point of Scheme-2)")
        provider = provider or CryptoProvider()
        self.write_superblocks(provider, self._root_record)
