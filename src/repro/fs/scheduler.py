"""Pipelined request scheduling for one mounted client (PR 10).

The sequential client pays one full WAN round trip per wire frame, even
when consecutive frames are independent -- ``BENCH_9`` shows postmark
spending ~77% of its wall-clock in exactly those back-to-back RTTs.  A
real asynchronous client keeps a *window* of K requests in flight: their
latencies overlap while their payload bytes still serialize on the one
shared link (see :meth:`repro.sim.network.NetworkLink.flight_time` for
the honest math).

:class:`RequestScheduler` brings that window to the simulated client:

* **write-behind staging** -- independent mutations (plain puts and
  deletes; never fenced, CAS, journal or lease traffic) queue up to
  ``window`` sub-ops and ship together as one *wave*, charged
  ``ceil(N / window)`` RTTs plus full serialized transfer.  A
  read-your-writes **overlay** answers reads of staged blobs locally,
  so ordering is preserved: a mutation is never reordered past a read
  that depends on it, and queue order is FIFO per blob and per inode.
* **fetch flights** -- independent reads (the block tail of a multi-
  block file) ship in waves of ``window`` instead of one RTT each,
  with in-flight dedup (duplicate ids ride one fetch and every waiter
  gets the same bytes) and generation-based cancellation (a fetch that
  raced an invalidation is dropped, never served into a cache).

The scheduler deliberately stays below the client's crypto layer: it
sees sealed blobs only, so enabling it cannot change what bytes are
written -- just when they cross the wire.  The concurrent-vs-sequential
differential suite (tests/test_concurrency_differential.py) proves the
final SSP state byte-identical.

Ordering and flush rules (see docs/CONCURRENCY.md):

* staged blobs are flushed, in order, as soon as the queue reaches
  ``window`` sub-ops, or at any *barrier*: an explicit
  ``flush_staged()``, ``unmount()``, ``revalidate()`` (close-to-open
  visibility), consistency-log publishes, and before any operation that
  must order against the SSP (fenced/CAS writes, oversized groups);
* errors keep the single-op exception taxonomy, surfaced at flush time
  with the applied/failed/remaining contract of ``PartialWriteError``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import (BlobNotFound, PartialWriteError, StaleEpochError,
                      StorageError, TransientPartialWriteError)
from ..storage.blobs import BlobId
from ..storage.server import BatchOp, BatchReply

_REQUEST_HEADER_BYTES = 64
_RESPONSE_HEADER_BYTES = 16


class _NullScope:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


class RequestScheduler:
    """A window of K overlapped SSP requests for one client.

    Parameters
    ----------
    server:
        The transport the owning client talks to (possibly a
        ``ResilientTransport`` -- waves ride its ``batch`` partial-retry
        path, so flaky backends reconcile exactly like sequential runs).
    window:
        Requests kept in flight concurrently (the ``ClientConfig``
        ``concurrency`` knob); at least 2.
    cost / tracer:
        Optional cost model and span tracer; waves charge
        ``cost.charge_flight`` and open ``network`` spans.
    write_behind:
        Allow mutation staging.  The owning client disables it when the
        intent journal is on -- journal append/apply/commit ordering is
        a durability contract the write-behind queue must not reorder --
        while fetch flights stay available.
    count_request / observe_batch:
        Callbacks into the owning client's request counter and batch-
        size histogram, so wire-frame accounting stays in one place.
    """

    def __init__(self, server, window: int, cost=None, tracer=None,
                 write_behind: bool = True,
                 count_request: Callable[[], None] | None = None,
                 observe_batch: Callable[[int], None] | None = None):
        if window < 2:
            raise ValueError("scheduler window must be >= 2")
        self.server = server
        self.window = window
        self.cost = cost
        self.tracer = tracer
        self.write_behind = write_behind
        self._count_request = count_request or (lambda: None)
        self._observe_batch = observe_batch or (lambda n: None)
        #: staged mutations in arrival order (put/delete sub-ops only).
        self._staged: list[BatchOp] = []
        #: read-your-writes overlay: blob id -> newest staged payload
        #: (None = staged delete).  Covers exactly the blobs in the
        #: queue; cleared when the queue drains.
        self._overlay: dict[BlobId, bytes | None] = {}
        #: bumped by the owning client's invalidations; a fetch flight
        #: that observes a bump mid-flight is stale and drops its
        #: results instead of serving them into any cache.
        self.generation = 0
        # counters (exported as the ``client.scheduler`` metrics source)
        self.staged_ops = 0
        self.overlay_reads = 0
        self.flushes = 0
        self.autoflushes = 0
        self.flush_waves = 0
        self.flushed_ops = 0
        self.fetch_flights = 0
        self.fetch_waves = 0
        self.fetched_ops = 0
        self.dedup_hits = 0
        self.stale_drops = 0
        self.max_queue = 0

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Pull-based metrics source (``client.scheduler.*``)."""
        return {
            "window": float(self.window),
            "queue_depth": float(len(self._staged)),
            "max_queue": float(self.max_queue),
            "staged_ops": float(self.staged_ops),
            "overlay_reads": float(self.overlay_reads),
            "flushes": float(self.flushes),
            "autoflushes": float(self.autoflushes),
            "flush_waves": float(self.flush_waves),
            "flushed_ops": float(self.flushed_ops),
            "fetch_flights": float(self.fetch_flights),
            "fetch_waves": float(self.fetch_waves),
            "fetched_ops": float(self.fetched_ops),
            "dedup_hits": float(self.dedup_hits),
            "stale_drops": float(self.stale_drops),
        }

    @property
    def queue_depth(self) -> int:
        return len(self._staged)

    # -- read-your-writes overlay -------------------------------------------

    def staged_read(self, blob_id: BlobId) -> tuple[bool, bytes | None]:
        """(covered, payload) for a blob with staged state.

        ``covered=True`` means the queue holds this blob's newest state:
        the payload of the latest staged put, or ``None`` for a staged
        delete.  Serving it locally is what keeps mutations ordered
        before their dependent reads without forcing a flush.
        """
        if blob_id not in self._overlay:
            return False, None
        self.overlay_reads += 1
        return True, self._overlay[blob_id]

    def staged_exists(self, blob_id: BlobId) -> bool | None:
        """Tri-state existence: True/False if staged state decides it."""
        if blob_id not in self._overlay:
            return None
        self.overlay_reads += 1
        return self._overlay[blob_id] is not None

    def covers(self, blob_id: BlobId) -> bool:
        """Queue holds staged state for this blob (no counter bump) --
        used by speculative paths to skip ids whose server copy would
        be stale the moment the queue flushes."""
        return blob_id in self._overlay

    def note_invalidation(self) -> None:
        """The client invalidated cached state (lease takeover, fresh
        lease, revalidation miss): any fetch currently in flight is
        stale and must not land in a cache."""
        self.generation += 1

    # -- write-behind staging ------------------------------------------------

    def stage_put(self, blob_id: BlobId, payload: bytes) -> None:
        self.stage_put_many([(blob_id, payload)])

    def stage_put_many(self,
                       blobs: Sequence[tuple[BlobId, bytes]]) -> None:
        """Queue uploads; auto-flush once the window fills.

        The whole group is staged before the flush check so its sub-ops
        stay contiguous in queue order (a flush may still split a group
        across waves -- waves apply in order, so per-blob ordering
        holds regardless).
        """
        if not self.write_behind:
            raise StorageError("scheduler write-behind is disabled")
        for blob_id, payload in blobs:
            self._staged.append(BatchOp.put(blob_id, payload))
            self._overlay[blob_id] = payload
            self.staged_ops += 1
        self.max_queue = max(self.max_queue, len(self._staged))
        self._maybe_autoflush()

    def stage_delete(self, blob_id: BlobId) -> None:
        self.stage_delete_many([blob_id])

    def stage_delete_many(self, blob_ids: Sequence[BlobId]) -> None:
        if not self.write_behind:
            raise StorageError("scheduler write-behind is disabled")
        for blob_id in blob_ids:
            self._staged.append(BatchOp.delete(blob_id))
            self._overlay[blob_id] = None
            self.staged_ops += 1
        self.max_queue = max(self.max_queue, len(self._staged))
        self._maybe_autoflush()

    def _maybe_autoflush(self) -> None:
        if len(self._staged) >= self.window:
            self.autoflushes += 1
            self.flush()

    # -- shipping ------------------------------------------------------------

    def _span(self, op: str, **attrs):
        if self.tracer is None:
            return _NULL_SCOPE
        return self.tracer.span("network", op=op, **attrs)

    @staticmethod
    def _transfer(op: BatchOp, reply: BatchReply) -> tuple[int, int]:
        """(up, down) wire bytes of one pipelined request."""
        if op.kind == "get":
            down = len(reply.payload or b"") if reply.ok else 0
            return (_REQUEST_HEADER_BYTES,
                    down + _RESPONSE_HEADER_BYTES)
        return (op.sent_bytes() + _REQUEST_HEADER_BYTES,
                _RESPONSE_HEADER_BYTES)

    def _charge_wave(self, ops: Sequence[BatchOp],
                     replies: Sequence[BatchReply]) -> None:
        """Bill one wave: attempted requests overlap their RTTs within
        the window; unattempted sub-ops never left the client."""
        if self.cost is None:
            return
        transfers = [self._transfer(op, reply)
                     for op, reply in zip(ops, replies)
                     if reply.status != "unattempted"]
        self.cost.charge_flight(transfers, parallel=self.window)

    def flush(self) -> int:
        """Drain the staged queue in waves of ``window`` sub-ops.

        Each wave is one wire exchange (window-many pipelined requests
        whose RTTs overlap); waves apply strictly in order, so the SSP
        observes the exact sequential mutation order.  Returns the
        number of sub-ops shipped.

        On a sub-op failure the queue is cleared and the single-op
        exception taxonomy is raised: ``fenced`` -> StaleEpochError
        (cannot happen for staged ops -- fenced writes bypass staging),
        a failed put -> ``PartialWriteError`` (transient cause keeps its
        retryable type) carrying applied/failed/remaining blob ids, any
        other failure via ``BatchReply.raise_for_status``.
        """
        ops, self._staged = self._staged, []
        self._overlay = {}
        if not ops:
            return 0
        self.flushes += 1
        applied: list[BlobId] = []
        with self._span("flush", count=len(ops), window=self.window):
            for base in range(0, len(ops), self.window):
                wave = ops[base:base + self.window]
                self.flush_waves += 1
                self._count_request()
                self._observe_batch(len(wave))
                replies = self.server.batch(wave)
                self._charge_wave(wave, replies)
                for index, (op, reply) in enumerate(zip(wave, replies)):
                    if reply.ok:
                        applied.append(op.blob_id)
                        self.flushed_ops += 1
                        continue
                    self._raise_wave_failure(ops, base + index, op,
                                             reply, applied)
        return len(ops)

    def _raise_wave_failure(self, ops: Sequence[BatchOp], index: int,
                            op: BatchOp, reply: BatchReply,
                            applied: list[BlobId]) -> None:
        remaining = [later.blob_id for later in ops[index + 1:]]
        if op.kind == "put" and reply.status == "error":
            cls = (TransientPartialWriteError if reply.transient
                   else PartialWriteError)
            raise cls(
                f"write-behind flush failed at {op.blob_id} "
                f"({len(applied)}/{len(ops)} sub-ops applied): "
                f"{reply.message}",
                applied=applied, failed=op.blob_id, remaining=remaining)
        # Deletes and anything else surface exactly like the single op
        # (missing -> BlobNotFound, error -> StorageError taxonomy).
        reply.raise_for_status()
        raise StorageError(  # pragma: no cover - defensive
            f"unexpected sub-reply {reply.status!r} for {op.kind}")

    # -- fetch flights -------------------------------------------------------

    def fetch_many(self, blob_ids: Iterable[BlobId]
                   ) -> dict[BlobId, bytes | None]:
        """Fetch independent blobs in waves of ``window`` requests.

        Returns ``{blob_id: payload}`` with ``None`` for absent blobs.
        Duplicate ids dedup onto a single in-flight fetch (every caller
        position still resolves -- one fetch's bytes answer all
        waiters); blobs with staged state are answered from the overlay
        without touching the wire.

        If an invalidation lands while the flight is in progress (the
        ``generation`` bump from :meth:`note_invalidation`), the
        results fetched so far are **dropped**, not returned: a stale
        speculative payload must never reach the caller's caches.  A
        storage error likewise voids the remainder silently -- callers
        treat a missing entry as "fetch it on demand".
        """
        results: dict[BlobId, bytes | None] = {}
        wanted: list[BlobId] = []
        seen: set[BlobId] = set()
        for blob_id in blob_ids:
            if blob_id in seen:
                self.dedup_hits += 1
                continue
            seen.add(blob_id)
            covered, payload = self.staged_read(blob_id)
            if covered:
                results[blob_id] = payload
                continue
            wanted.append(blob_id)
        if not wanted:
            return results
        generation = self.generation
        self.fetch_flights += 1
        fetched: dict[BlobId, bytes | None] = {}
        with self._span("fetch_flight", count=len(wanted),
                        window=self.window):
            for base in range(0, len(wanted), self.window):
                wave = wanted[base:base + self.window]
                wave_ops = [BatchOp.get(blob_id) for blob_id in wave]
                self.fetch_waves += 1
                self._count_request()
                self._observe_batch(len(wave))
                try:
                    replies = self.server.batch(wave_ops)
                except StorageError:
                    if self.cost is not None:
                        self.cost.charge_flight(
                            [(_REQUEST_HEADER_BYTES,
                              _RESPONSE_HEADER_BYTES)] * len(wave),
                            parallel=self.window)
                    break
                self._charge_wave(wave_ops, replies)
                for blob_id, reply in zip(wave, replies):
                    if reply.ok and reply.payload is not None:
                        fetched[blob_id] = reply.payload
                        self.fetched_ops += 1
                    else:
                        fetched[blob_id] = None
        if self.generation != generation:
            # The flight raced an invalidation: everything it carried
            # is suspect.  Serve nothing; demand paths re-fetch fresh.
            self.stale_drops += len(fetched)
            return results
        results.update(fetched)
        return results
