"""Per-inode signed leases with fencing epochs (multi-client safety).

SHAROES clients do not trust the SSP to arbitrate anything, yet many
honest enterprise clients mount the same volume.  Without coordination,
two clients rewriting the same directory table interleave their
multi-blob commits and silently lose updates.  This module supplies the
coordination primitive that fixes it while keeping the SSP untrusted:

* **Lease blobs** (``lease/<inode>``): a signed :class:`LeaseRecord`
  naming the holder and a sim-clock expiry, prefixed by a *plaintext*
  8-byte big-endian **fencing epoch**.  The prefix is the one field the
  SSP is allowed to act on: it needs no keys to compare two integers.
* **Monotone epochs**: every lease write -- acquire, renewal, release,
  takeover -- bumps the epoch through a ``put_if`` compare-and-swap, so
  exactly one writer wins each transition and the epoch chain never
  regresses.  A second :class:`~repro.fs.freshness.FreshnessMonitor`
  watches the chain, so an SSP serving a rolled-back lease (older
  epoch, valid signature) raises ``StaleObjectError`` instead of ever
  granting a stale lease.
* **Fenced writes**: the client tags every blob write of a mutation
  with the epoch of the lease it holds; the SSP mechanically rejects
  writes below the current epoch (:class:`~repro.errors.
  StaleEpochError`).  A zombie -- a paused client whose lease expired
  and was taken over -- can therefore never clobber its successor, no
  matter when it wakes up.
* **Roll-forward takeover**: before bumping the epoch past a dead
  client, the new holder verifies and replays the dead client's pending
  intent journal (the same code path as ``fsck --repair``, via
  :func:`repro.fs.journal.roll_forward`), so committed-but-unapplied
  work is never lost.  Takeover needs the enterprise key escrow (the
  registry's private keys) -- the same trust fsck already requires.

What the untrusted SSP can and cannot do to a lease:

* it **cannot forge** a lease (records are RSA-signed by the holder);
* it **cannot roll back** the chain against a client that has seen a
  newer epoch (freshness monitor);
* it **can** drop or hide lease blobs -- that denies service (as can
  dropping any blob) but never grants two writers the same epoch, and
  fenced writes keep mutations atomic regardless.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import rsa
from ..errors import (BlobNotFound, CasConflictError, IntegrityError,
                      LeaseHeldError, LeaseLostError)
from ..serialize import Reader, SerializationError, Writer
from ..storage.blobs import BlobId, lease_blob
from ..storage.server import EPOCH_PREFIX_BYTES, BatchOp
from .freshness import FreshnessMonitor
from .journal import roll_forward

#: CAS re-inspection rounds before acquire() reports the lease as held.
#: These are *protocol* retries (losing a race and looking again), not
#: transport retries; each round re-reads the current record.
_ACQUIRE_ROUNDS = 4

_SIGN_DOMAIN = b"sharoes/lease/"


@dataclass(frozen=True)
class LeaseRecord:
    """One link in an inode's lease chain.

    Timestamps are integer simulated microseconds (floats do not
    round-trip through the serializer).  ``released`` marks a
    voluntarily surrendered lease: any client may take it over
    immediately, no expiry wait, no journal to roll forward beyond the
    holder's own (which the holder already drained before releasing).
    """

    inode: int
    epoch: int
    holder: str
    acquired_us: int
    expires_us: int
    released: bool = False
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        writer = Writer()
        writer.put_bytes(_SIGN_DOMAIN)
        writer.put_int(self.inode)
        writer.put_int(self.epoch)
        writer.put_str(self.holder)
        writer.put_int(self.acquired_us)
        writer.put_int(self.expires_us)
        writer.put_bool(self.released)
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        """Epoch prefix (plaintext, for the SSP) + signed record."""
        writer = Writer()
        writer.put_bytes(self.signed_payload())
        writer.put_bytes(self.signature)
        return (self.epoch.to_bytes(EPOCH_PREFIX_BYTES, "big")
                + writer.getvalue())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "LeaseRecord":
        if len(raw) < EPOCH_PREFIX_BYTES:
            raise IntegrityError("lease blob shorter than epoch prefix")
        prefix = int.from_bytes(raw[:EPOCH_PREFIX_BYTES], "big")
        try:
            outer = Reader(raw[EPOCH_PREFIX_BYTES:])
            payload = outer.get_bytes()
            signature = outer.get_bytes()
            outer.expect_end()
            reader = Reader(payload)
            if reader.get_bytes() != _SIGN_DOMAIN:
                raise IntegrityError("lease blob lacks domain tag")
            record = cls(inode=reader.get_int(), epoch=reader.get_int(),
                         holder=reader.get_str(),
                         acquired_us=reader.get_int(),
                         expires_us=reader.get_int(),
                         released=reader.get_bool(),
                         signature=signature)
            reader.expect_end()
        except SerializationError as exc:
            raise IntegrityError(f"malformed lease blob: {exc}") from exc
        if record.epoch != prefix:
            # The plaintext prefix is SSP-enforced, the signed epoch is
            # client-enforced; disagreement means the SSP tampered.
            raise IntegrityError(
                f"lease prefix epoch {prefix} contradicts signed epoch "
                f"{record.epoch}")
        return record

    def verify(self, directory) -> None:
        """Check the holder's signature against the PKI directory."""
        rsa.verify(directory.user_key(self.holder),
                   self.signed_payload(), self.signature)

    def expired(self, now_us: int) -> bool:
        return self.released or now_us >= self.expires_us


def break_record(prior: LeaseRecord, holder_user) -> LeaseRecord:
    """A signed *released* successor of ``prior`` (epoch + 1).

    Built with the holder's escrowed private key: after rolling a dead
    client's journal forward, the enterprise (``fsck --repair`` /
    ``--stranded``) marks the client's lease released so successors can
    take over immediately instead of waiting out the expiry -- while
    the epoch chain stays monotone and verifiable.
    """
    record = LeaseRecord(
        inode=prior.inode, epoch=prior.epoch + 1, holder=prior.holder,
        acquired_us=prior.acquired_us, expires_us=prior.expires_us,
        released=True)
    return LeaseRecord(
        inode=record.inode, epoch=record.epoch, holder=record.holder,
        acquired_us=record.acquired_us, expires_us=record.expires_us,
        released=True,
        signature=rsa.sign(holder_user.private_key,
                           record.signed_payload()))


class LeaseManager:
    """One client's view of the volume's lease space.

    Wired by :class:`~repro.fs.client.SharoesFilesystem` when
    ``ClientConfig(lease=True)``; usable standalone in tests.  The
    ``server`` handed in is whatever the client itself talks through
    (including a :class:`~repro.storage.resilient.ResilientTransport`),
    so lease traffic inherits the same retry/fault behaviour as data
    traffic.  ``escrow`` maps a user id to key material able to open
    that user's journal (the registry's :meth:`user` -- enterprise
    trust, exactly what fsck already holds); without it, takeover of a
    *dead* client's lease is refused rather than performed lossily.
    """

    def __init__(self, user, directory, server, clock,
                 duration_s: float = 30.0, provider=None, escrow=None,
                 tracer=None, metrics=None):
        self.user = user
        self.directory = directory
        self.server = server
        self.clock = clock
        self.duration_s = float(duration_s)
        self.provider = provider
        self.escrow = escrow
        self._tracer = tracer
        self._metrics = metrics
        #: inode -> (record we hold, its exact wire bytes for CAS)
        self._held: dict[int, tuple[LeaseRecord, bytes]] = {}
        #: rollback/equivocation watch over the epoch chain.
        self.freshness = FreshnessMonitor()

    # -- plumbing ------------------------------------------------------------

    def _count(self, name: str, help: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, help=help).inc()

    def _span(self, name: str, **tags):
        if self._tracer is not None:
            return self._tracer.span(name, **tags)
        from ..storage.resilient import _NULL_SCOPE
        return _NULL_SCOPE

    def _now_us(self) -> int:
        return int(self.clock.now * 1_000_000)

    def _observe(self, inode: int, raw: bytes,
                 record: LeaseRecord) -> None:
        record.verify(self.directory)
        self.freshness.observe_metadata(inode, record.epoch, raw)

    def _make(self, inode: int, epoch: int,
              released: bool = False) -> LeaseRecord:
        now = self._now_us()
        unsigned = LeaseRecord(
            inode=inode, epoch=epoch, holder=self.user.user_id,
            acquired_us=now,
            expires_us=now + int(self.duration_s * 1_000_000),
            released=released)
        return LeaseRecord(
            inode=unsigned.inode, epoch=unsigned.epoch,
            holder=unsigned.holder, acquired_us=unsigned.acquired_us,
            expires_us=unsigned.expires_us, released=unsigned.released,
            signature=rsa.sign(self.user.private_key,
                               unsigned.signed_payload()))

    # -- queries -------------------------------------------------------------

    def held_epoch(self, inode: int) -> int | None:
        """The fencing epoch of a lease this client currently holds."""
        held = self._held.get(inode)
        return held[0].epoch if held is not None else None

    def held_inodes(self) -> list[int]:
        return sorted(self._held)

    # -- the state machine ---------------------------------------------------

    def acquire(self, inode: int) -> LeaseRecord:
        """Hold (or keep holding) the lease on ``inode``.

        Outcomes: a fresh acquisition (absent/released/expired lease,
        CAS-won), a renewal of our own lease, a **takeover** (expired
        lease of a dead client: verify + roll their journal forward,
        then bump past their epoch), :class:`LeaseHeldError` (someone
        else holds it, unexpired), or :class:`LeaseLostError` (we
        thought we held it but a successor's epoch proves otherwise).
        """
        held = self._held.get(inode)
        if held is not None and not held[0].expired(self._now_us()):
            return held[0]

        blob_id = lease_blob(inode)
        raw: bytes | None = None
        fetched = False
        for _ in range(_ACQUIRE_ROUNDS):
            if not fetched:
                try:
                    raw = self.server.get(blob_id)
                except BlobNotFound:
                    raw = None
            fetched = False
            try:
                return self._advance(inode, blob_id, raw)
            except CasConflictError as exc:
                # Lost the race: somebody else advanced the chain.
                # Re-inspect what they wrote instead of re-fetching.
                self._count("lease.conflicts",
                            "CAS races lost while acquiring leases")
                raw = exc.current
                fetched = True
        record = LeaseRecord.from_bytes(raw) if raw else None
        raise LeaseHeldError(
            f"inode {inode}: lease contended beyond "
            f"{_ACQUIRE_ROUNDS} CAS rounds",
            holder=record.holder if record else "",
            expires_at_s=(record.expires_us / 1e6) if record else 0.0)

    def _advance(self, inode: int, blob_id: BlobId,
                 raw: bytes | None) -> LeaseRecord:
        """One CAS attempt at the next link of the lease chain."""
        held = self._held.get(inode)
        if raw is None:
            high = self.freshness.high_watermark(inode) or 0
            return self._swap(inode, blob_id, self._make(inode, high + 1),
                              expected=None, verb="lease.acquires",
                              help="fresh lease acquisitions")

        record = LeaseRecord.from_bytes(raw)
        self._observe(inode, raw, record)
        now_us = self._now_us()

        if record.holder == self.user.user_id:
            # Ours (this session's, or a previous incarnation's -- that
            # one's journal is replayed by our own mount): renew.
            return self._swap(inode, blob_id,
                              self._make(inode, record.epoch + 1),
                              expected=raw, verb="lease.renewals",
                              help="renewals of held leases")

        if held is not None:
            # We believed we held this lease; the chain moved past us.
            self._drop(inode)
            self._count("lease.lost",
                        "leases discovered lost at acquire time")
            raise LeaseLostError(
                f"inode {inode}: lease taken over by {record.holder} "
                f"at epoch {record.epoch} (we held epoch "
                f"{held[0].epoch})")

        if not record.expired(now_us):
            raise LeaseHeldError(
                f"inode {inode}: leased by {record.holder} until "
                f"t={record.expires_us / 1e6:g}s "
                f"(now {now_us / 1e6:g}s)",
                holder=record.holder,
                expires_at_s=record.expires_us / 1e6)

        # Expired or released lease of another client: take over.  A
        # *released* record needs no repair (the holder drained its own
        # journal before releasing); an *expired* one belongs to a
        # presumed-dead client whose pending intents must be rolled
        # forward first so no committed work is lost.
        with self._span("lease.takeover", inode=inode,
                        prior_holder=record.holder,
                        prior_epoch=record.epoch):
            if not record.released:
                self._roll_forward_holder(record.holder)
            taken = self._swap(inode, blob_id,
                               self._make(inode, record.epoch + 1),
                               expected=raw, verb="lease.takeovers",
                               help="takeovers of expired/released "
                                    "leases")
        return taken

    def _roll_forward_holder(self, holder: str) -> None:
        if self.escrow is None:
            raise LeaseHeldError(
                f"lease of {holder} expired but no key escrow is "
                f"available to roll its journal forward; refusing a "
                f"lossy takeover", holder=holder)
        replayed = roll_forward(self.server, self.provider,
                                self.escrow(holder))
        for _ in replayed:
            self._count("lease.takeover_replays",
                        "dead clients' intents replayed at takeover")

    def _swap(self, inode: int, blob_id: BlobId, record: LeaseRecord,
              expected: bytes | None, verb: str,
              help: str) -> LeaseRecord:
        raw = record.to_bytes()
        self.server.put_if(blob_id, raw, expected)
        self.freshness.observe_metadata(inode, record.epoch, raw)
        self._held[inode] = (record, raw)
        self._count(verb, help)
        return record

    def renew_all(self) -> tuple[list[int], list[int], int, int]:
        """Renew every held lease with one batched CAS round trip.

        Each renewal is the usual epoch+1 ``put_if`` against the exact
        bytes we last wrote, shipped together as one ``OP_BATCH`` frame
        of ``put_if`` sub-ops.  Per-lease conflicts are independent: a
        chain another client advanced past means *that* lease is lost
        (dropped locally, counted) while the rest renew normally.

        Returns ``(renewed_inodes, lost_inodes, up_bytes, down_bytes)``
        -- the byte totals are what crossed the wire (records up,
        conflicting successors' records down) so the caller can charge
        its cost model for the single round trip.
        """
        inodes = self.held_inodes()
        if not inodes:
            return [], [], 0, 0
        ops = []
        successors = []
        for inode in inodes:
            record, raw = self._held[inode]
            successor = self._make(inode, record.epoch + 1)
            ops.append(BatchOp.put_if(lease_blob(inode),
                                      successor.to_bytes(), expected=raw))
            successors.append(successor)
        with self._span("lease.renew_all", count=len(ops)):
            replies = self.server.batch(ops)
        renewed: list[int] = []
        lost: list[int] = []
        up = sum(op.sent_bytes() for op in ops)
        down = 0
        for inode, successor, op, reply in zip(inodes, successors, ops,
                                               replies):
            if reply.status == "ok":
                raw = op.payload or b""
                self.freshness.observe_metadata(inode, successor.epoch,
                                                raw)
                self._held[inode] = (successor, raw)
                self._count("lease.renewals", "renewals of held leases")
                renewed.append(inode)
            elif reply.status == "conflict":
                down += len(reply.payload or b"")
                self._drop(inode)
                self._count("lease.lost",
                            "leases discovered lost at renewal time")
                lost.append(inode)
            else:
                reply.raise_for_status()
        return renewed, lost, up, down

    # -- release -------------------------------------------------------------

    def _drop(self, inode: int) -> None:
        self._held.pop(inode, None)

    def release(self, inode: int) -> None:
        """Surrender a held lease by writing a *released* record.

        The chain stays monotone (release bumps the epoch, never
        deletes the blob), so freshness monitoring keeps working across
        release/re-acquire cycles.  Losing the release CAS is benign: a
        successor already took the lease over.
        """
        held = self._held.pop(inode, None)
        if held is None:
            return
        record, raw = held
        released = self._make(inode, record.epoch + 1, released=True)
        try:
            out = released.to_bytes()
            self.server.put_if(lease_blob(inode), out, expected=raw)
        except CasConflictError:
            return  # a successor advanced the chain first; fine
        self.freshness.observe_metadata(inode, released.epoch, out)
        self._count("lease.releases", "voluntary lease releases")

    def release_all(self) -> None:
        for inode in list(self._held):
            self.release(inode)

    def forget(self, inode: int) -> None:
        """Drop one lease's local state without touching the SSP.

        Used when the lease was *lost* (taken over): writing a release
        record would be both futile (our epoch is stale, the CAS loses)
        and wrong (the lease is not ours to release).
        """
        self._drop(inode)

    def forget_all(self) -> None:
        """Drop local lease state without touching the SSP (crash sim)."""
        self._held.clear()
