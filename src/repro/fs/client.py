"""The SHAROES filesystem client.

This is the component installed at every enterprise client (the paper's
FUSE filesystem): it mounts the SSP-hosted volume, navigates the
CAP-based metadata design, performs every cryptographic operation, and
exposes POSIX-style operations (getattr, readdir, mkdir, mknod, open,
read, write, close, chmod, chown, rename, unlink, rmdir...).

Design invariants (paper sections II-IV):

* keys never leave the enterprise in plaintext -- the client decrypts the
  per-user superblock with the user's private key once at mount, then all
  key distribution is in-band (parent tables carry children's MEK/MVK);
* metadata operations use symmetric crypto only;
* the SSP is never asked to enforce anything: "permission denied" here is
  either an honest-client mode check or, at bottom, the absence of a key;
* writes are cached locally and encrypted + uploaded on close;
* every operation charges the simulated cost model (network / crypto /
  other) so benchmarks reproduce the paper's 2008 testbed numbers.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..caps.model import VIEW_NONE, Cap, cap_for_bits
from ..caps.record import (ObjectRecord, lockbox_payload, open_metadata_blob,
                           parse_lockbox_payload)
from ..crypto import esign
from ..crypto.provider import CryptoProvider
from ..errors import (BlobNotFound, CryptoError, DirectoryNotEmpty,
                      FileExists, FileNotFound, FilesystemError,
                      IntegrityError, IsADirectory, LeaseHeldError,
                      LeaseLostError, NotADirectory, PartialWriteError,
                      PermissionDenied, SharoesError, StaleEpochError,
                      StorageError, TransientPartialWriteError,
                      TransientStorageError)
from ..fs import path as fspath
from ..obs.metrics import (MetricsRegistry, bind_cache_stats,
                           bind_cost_model, bind_crypto_counters,
                           bind_server_stats, bind_transport)
from ..obs.tracing import Tracer, traced
from ..principals.groups import UserAgent
from ..principals.users import User
from ..sim.costmodel import CostModel
from ..storage.blobs import (BlobId, group_key_blob, journal_blob,
                             lease_blob, lockbox_blob, meta_blob,
                             superblock_blob)
from ..storage.server import BatchOp
from . import journal
from .cache import LruCache
from .dirtable import (DIRECT, SPLIT, VIEW_FULL, ZERO, DirEntry,
                       DirPointer, TableView)
from .freshness import FreshnessMonitor
from .mdcache import (DIR_WRITE_CAPS, LIST_CAPS, TRAVERSE_CAPS,
                      VerifiedMetadataCache)
from .metadata import MetadataAttrs, MetadataView, Stat
from .permissions import DIRECTORY, FILE, SYMLINK, AclEntry
from .sealed import bind_context, open_verified, seal_and_sign
from .superblock import Superblock
from .volume import SharoesVolume, block_blob_id, table_blob_id

_REQUEST_HEADER_BYTES = 64
_RESPONSE_HEADER_BYTES = 16

#: explicit sub-op-count buckets for the ``client.batch.size`` histogram
#: (the default latency buckets top out below real batch sizes).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                       32.0, 48.0, 64.0, 128.0, 256.0, 1024.0)

#: hard cap on sub-ops per speculative readahead frame, mirroring the
#: wire protocol's MAX_BATCH_OPS so a huge directory cannot build an
#: unsendable frame.
_MAX_PREFETCH = 1024

# CAP permission sets live in mdcache so the pre-materialized listing
# verdicts are evaluated against the exact same sets the demand path
# checks -- a drifted copy would make the fast path lie.
_TRAVERSE_CAPS = TRAVERSE_CAPS
_LIST_CAPS = LIST_CAPS
_DIR_WRITE_CAPS = DIR_WRITE_CAPS


@dataclass
class ClientConfig:
    """Tunables for one mounted client."""

    #: unified decrypted-object cache budget in bytes (None = unbounded,
    #: 0 = disabled).  The Postmark benchmark sweeps this.
    cache_bytes: int | None = None
    #: cache metadata/table objects?  Disabled for close-to-open style
    #: consistency (each operation revalidates), as the Andrew benchmark
    #: requires.
    metadata_cache: bool = True
    #: cache decrypted file data blocks?
    data_cache: bool = True
    #: re-encrypt immediately on revocation (paper's prototype default)
    #: or lazily on next write (Plutus-style).
    immediate_revocation: bool = True
    #: rewrite metadata replicas on close so size/version stay fresh.
    #: Default False: the paper's Figure 8 prices close as exactly
    #: "1-dataencrypt, data send", leaving metadata sizes stale until the
    #: owner next touches the object (block 0 carries the authoritative
    #: block count, so reads are unaffected).
    update_metadata_on_close: bool = False
    #: track metadata version monotonicity to detect SSP rollbacks of
    #: previously-visited objects (the paper's SUNDR-inspired integrity
    #: future work; see fs/freshness.py).
    check_freshness: bool = True
    #: symmetric engine override ("stream" fast / "aes" real AES).
    #: None (default) inherits the volume's engine -- sealed blobs from
    #: different engines do not interoperate.
    engine: str | None = None
    #: wrap SSP traffic in a :class:`ResilientTransport` with this
    #: :class:`~repro.storage.resilient.RetryPolicy` (retries, backoff,
    #: circuit breaker, stale-read fallback -- see docs/ROBUSTNESS.md).
    #: None (default) inherits the volume's ``retry_policy``; if that is
    #: also None the client talks to the server directly.
    retry_policy: "RetryPolicy | None" = None
    #: crash-consistent mutations: seal every multi-blob mutation into a
    #: signed write-ahead intent at the SSP before any of its blobs are
    #: sent, commit (truncate) afterwards, and replay pending intents on
    #: mount -- see fs/journal.py and docs/ROBUSTNESS.md.  Default False
    #: preserves the paper's Figure 8 request/cost profile (journaling
    #: adds two puts per mutation).
    journal: bool = False
    #: multi-client safety: acquire per-inode signed leases before every
    #: read-modify-write and fence the mutation's SSP writes with the
    #: lease's epoch, so concurrent honest clients serialize and zombie
    #: writers are rejected mechanically -- see fs/lease.py and
    #: docs/ROBUSTNESS.md.  Requires ``journal=True`` (fenced commits
    #: ride the intent journal).  Default False keeps the single-client
    #: cost model byte-identical.
    lease: bool = False
    #: sim-clock lifetime of an acquired lease before peers may take it
    #: over (rolling the holder's journal forward first).
    lease_duration_s: float = 30.0
    #: ship multi-blob writes (and batched reads/renewals) as a single
    #: ``OP_BATCH`` wire frame instead of looping single ops.  On the
    #: success path this charges exactly what the single-frame
    #: accounting always claimed, so costs are unchanged; ``False``
    #: drops to one round trip per blob (the honest reference execution
    #: the differential harness compares against).
    batching: bool = True
    #: speculative read batching: during a path walk, fetch a cold
    #: component's metadata and directory table in one frame; after
    #: ``readdir``, prefetch the listed children's metadata blobs.
    #: Default True (since PR 7): readahead trades bytes for round
    #: trips, which departs from the paper's 2008 prototype -- pass
    #: ``readahead=False`` to reproduce the paper's per-op cost tables
    #: (Figures 8/13) exactly.  Requires ``batching`` and
    #: ``metadata_cache``.
    readahead: bool = True
    #: verified metadata cache + pre-materialized listings: keep
    #: decrypted, signature-verified metadata/table entries warm across
    #: close-to-open ``revalidate()`` boundaries, version-pinned against
    #: the freshness monitor and invalidated by lease-epoch advancement
    #: -- see fs/mdcache.py and docs/CACHING.md.  Default True (since
    #: PR 8, after soaking behind BENCH_7's andrew resolve gate and the
    #: coherence matrix): pass ``mdcache=False`` for the paper's strict
    #: re-fetch-per-open consistency model (the ablation path the
    #: paper-faithful workload pins use).  Requires ``metadata_cache``.
    mdcache: bool = True
    #: how many times a mutation waits out a :class:`LeaseHeldError`
    #: (another client's unexpired lease) before surfacing it.  0
    #: (default) preserves the historical fail-fast behaviour.  Waiting
    #: advances the sim clock, so a dead holder's lease can expire and
    #: be taken over mid-wait.
    lease_wait_attempts: int = 0
    #: first backoff before re-attempting a held lease; doubles per
    #: attempt up to ``lease_wait_max_s``.
    lease_wait_base_s: float = 0.05
    lease_wait_max_s: float = 2.0
    #: end-to-end wire tracing: attach trace_id/parent_span_id context
    #: to every SSP request and record server-side spans (decode/disk/
    #: verify on a synthetic timeline) that stitch under this client's
    #: trace tree -- see docs/OBSERVABILITY.md.  Zero simulated cost and
    #: byte-identical wire frames when False.
    wire_trace: bool = False
    #: sharded multi-SSP backend: ``shards > 0`` makes environment
    #: builders (``make_env``) replace the single StorageServer with a
    #: :class:`~repro.storage.shards.ShardedServer` of that many backend
    #: SSPs, each blob consistently hashed to ``replicas`` of them --
    #: see docs/ROBUSTNESS.md "Sharding & replication".  0 (default)
    #: keeps the paper's single-SSP testbed.  The client itself is
    #: oblivious (the sharded server presents the StorageServer
    #: interface); these knobs live here so benchmark configs carry the
    #: whole stack description.
    shards: int = 0
    #: replicas per blob when ``shards > 0`` (k-way replication; writes
    #: fan out to all k, reads are served by the first live replica and
    #: quorum-checked on disagreement).
    replicas: int = 2
    #: pipelined request window: ``concurrency >= 2`` attaches a
    #: :class:`~repro.fs.scheduler.RequestScheduler` that keeps up to
    #: this many independent requests in flight -- write-behind staging
    #: for plain puts/deletes and waved fetch flights for multi-block
    #: reads -- with latency overlapped but bandwidth still shared (see
    #: docs/CONCURRENCY.md).  0 (default) keeps the paper's strictly
    #: sequential client and its exact cost numbers.  Requires
    #: ``batching``; with ``journal=True`` write-behind is disabled
    #: (journal ordering is a durability contract) but fetch flights
    #: stay on.
    concurrency: int = 0


@dataclass
class ResolvedNode:
    """A path component resolved to its decrypted metadata replica."""

    inode: int
    selector: str
    mek: bytes
    mvk: esign.VerificationKey
    view: MetadataView

    @property
    def attrs(self) -> MetadataAttrs:
        return self.view.attrs

    @property
    def cap_id(self) -> str:
        return self.view.cap_id


@dataclass
class OpenFile:
    """A write-back file handle: writes buffer locally, flush on close.

    This mirrors the paper's prototype ("we cache all writes locally and
    only encrypt the file before sending it to the SSP as the result of a
    file close"), and its block layout means a partial update only
    re-encrypts and re-uploads the touched blocks.
    """

    fs: "SharoesFilesystem"
    path: str
    node: ResolvedNode
    readable: bool
    writable: bool
    _buffer: bytearray = field(default_factory=bytearray)
    _loaded: bool = False
    _dirty: bool = False
    _original_blocks: list[bytes] = field(default_factory=list)
    _closed: bool = False

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        content, blocks = self.fs._read_blocks(self.node)
        self._buffer = bytearray(content)
        self._original_blocks = blocks
        self._loaded = True

    def read(self, size: int | None = None, offset: int = 0) -> bytes:
        with self.fs.tracer.span("read", path=self.path):
            if self._closed:
                raise FilesystemError("read on closed handle")
            if not self.readable:
                raise PermissionDenied(
                    f"{self.path}: not opened for reading")
            self._ensure_loaded()
            end = len(self._buffer) if size is None else offset + size
            return bytes(self._buffer[offset:end])

    def write(self, data: bytes) -> int:
        """Append ``data`` at the end of the file."""
        self._ensure_loaded()
        return self.pwrite(data, len(self._buffer))

    def pwrite(self, data: bytes, offset: int) -> int:
        with self.fs.tracer.span("write", path=self.path):
            if self._closed:
                raise FilesystemError("write on closed handle")
            if not self.writable:
                raise PermissionDenied(
                    f"{self.path}: not opened for writing")
            self._ensure_loaded()
            if offset > len(self._buffer):
                self._buffer.extend(
                    b"\x00" * (offset - len(self._buffer)))
            self._buffer[offset:offset + len(data)] = data
            self._dirty = True
            return len(data)

    def truncate(self, size: int = 0) -> None:
        if not self.writable:
            raise PermissionDenied(f"{self.path}: not opened for writing")
        self._ensure_loaded()
        del self._buffer[size:]
        self._dirty = True

    def close(self) -> None:
        """Encrypt dirty blocks and upload (the paper's ``close`` cost)."""
        if self._closed:
            return
        self._closed = True
        with self.fs.tracer.span("close", path=self.path,
                                 dirty=self._dirty):
            if self._dirty:
                self.fs._flush_file(self.node, bytes(self._buffer),
                                    self._original_blocks)

    def __enter__(self) -> "OpenFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _mutating(op: str):
    """Scope a client method as one crash-consistent mutation.

    Composes with ``@traced``: the span covers the journal append/apply/
    commit cycle.  Reentrant -- nested mutating calls (``create_file``
    -> ``mknod`` -> ``_create``) join the outer op's batch.
    """
    def wrap(fn):
        @functools.wraps(fn)
        def inner(self, *args, **kwargs):
            with self._mutation(op):
                return fn(self, *args, **kwargs)
        return inner
    return wrap


class SharoesFilesystem:
    """A mounted SHAROES client for one user."""

    def __init__(self, volume: SharoesVolume, user: User,
                 cost_model: CostModel | None = None,
                 config: ClientConfig | None = None,
                 server=None):
        self.volume = volume
        self.config = config or ClientConfig()
        engine = self.config.engine or getattr(volume, "engine", "stream")
        self.provider = CryptoProvider(engine)
        self.cost = cost_model
        if cost_model is not None:
            self.provider.add_listener(cost_model.on_crypto_event)
        self.agent = UserAgent(user, self.provider)
        self.cache = LruCache(self.config.cache_bytes)
        self.freshness = FreshnessMonitor()
        #: verified metadata cache: coherence manager over ``cache`` for
        #: metadata views, tables and pre-materialized listings -- see
        #: fs/mdcache.py.  None when disabled (the default): close-to-
        #: open boundaries then drop metadata entries wholesale.
        self.mdcache = (VerifiedMetadataCache(self.cache, self.freshness)
                        if self.config.mdcache
                        and self.config.metadata_cache else None)
        #: optional fork-consistency log (see enable_consistency_log)
        self.consistency = None
        #: SSP requests issued by this client (batched puts count once).
        self.request_count = 0
        self._superblock: Superblock | None = None
        #: unified observability: one registry tree + a span tracer on
        #: the simulated clock.  The legacy stats structs (CacheStats,
        #: OpCounters, CostBreakdown, ServerStats) are adapted in as
        #: pull-based sources -- see docs/OBSERVABILITY.md.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock=cost_model.clock if cost_model is not None else None,
            registry=self.metrics)
        if cost_model is not None:
            cost_model.tracer = self.tracer
            bind_cost_model(self.metrics, cost_model)
        bind_cache_stats(self.metrics, self.cache)
        if self.mdcache is not None:
            self.metrics.register_source(
                "client.mdcache", self.mdcache.snapshot,
                help="verified metadata cache coherence counters")
        bind_crypto_counters(self.metrics, self.provider)
        bind_server_stats(self.metrics, volume.server)
        if hasattr(volume.server, "shard_snapshot"):
            self.metrics.register_source(
                "shard", volume.server.shard_snapshot,
                help="sharded backend: quorum reads, divergence, "
                     "repair debt and per-shard breaker state")
        self.metrics.gauge("client.requests",
                           help="SSP requests issued by this client",
                           fn=lambda: self.request_count)
        #: crash consistency: the active mutation's staged wire calls
        #: (None outside a mutation) and intents journaled at the SSP but
        #: not yet committed -- see fs/journal.py.
        self._batch: journal.MutationBatch | None = None
        self._pending: list[journal.IntentRecord] = []
        self._journal_seq = 0
        if self.config.journal:
            self.metrics.gauge(
                "journal.pending",
                help="intents journaled at the SSP but not yet committed",
                fn=lambda: len(self._pending))
        #: the server this client actually talks to.  ``server`` (if
        #: given) overrides ``volume.server`` -- benchmarks use it to
        #: inject per-client fault wrappers.  A retry policy (from the
        #: config, else the volume) wraps it in a ResilientTransport
        #: that retries transient faults with backoff on the simulated
        #: clock -- see docs/ROBUSTNESS.md.
        raw = server if server is not None else volume.server
        #: end-to-end wire tracing: give this client's span stream a
        #: trace id and interpose a TracedServer *below* the retrying
        #: transport, so every attempt (including failed ones) yields a
        #: server-side span parented under the issuing client span.
        self.traced_server = None
        if self.config.wire_trace:
            from ..obs.tracing import next_trace_id
            from ..obs.wiretrace import TracedServer
            self.tracer.trace_id = next_trace_id()
            self.traced_server = TracedServer(
                raw, clock=self.tracer.clock,
                service=getattr(raw, "name", "ssp"),
                context_fn=self._trace_context)
            raw = self.traced_server
        #: per-walk-depth resolve attribution (hits/misses/seconds per
        #: path component depth), exported as ``client.resolve.*``.
        self._walk_depth: dict[int, dict[str, float]] = {}
        self.metrics.register_source(
            "client.resolve", self._collect_walk_depth,
            help="per-depth path-walk cache attribution")
        policy = self.config.retry_policy
        if policy is None:
            policy = getattr(volume, "retry_policy", None)
        if policy is not None:
            from ..storage.resilient import ResilientTransport
            # The breaker cooldown must elapse on the same simulated
            # clock the rest of the system advances: prefer the cost
            # model's, else the volume-level clock shared across clients.
            self.server = ResilientTransport(
                raw, policy, cost=cost_model, tracer=self.tracer,
                clock=getattr(volume, "clock", None))
            bind_transport(self.metrics, self.server)
        else:
            self.server = raw
        #: pipelined request scheduler (``ClientConfig(concurrency=K)``):
        #: overlaps independent requests in a window of K -- see
        #: fs/scheduler.py and docs/CONCURRENCY.md.  Sits *above* the
        #: resilient transport so every wave rides the batch
        #: partial-retry path.  None (default) keeps the sequential
        #: client untouched.
        self.scheduler = None
        if self.config.concurrency >= 2 and self.config.batching:
            from .scheduler import RequestScheduler
            self.scheduler = RequestScheduler(
                self.server, self.config.concurrency,
                cost=cost_model, tracer=self.tracer,
                write_behind=not self.config.journal,
                count_request=self._count_wire_request,
                observe_batch=self._observe_batch)
            self.metrics.register_source(
                "client.scheduler", self.scheduler.snapshot,
                help="pipelined request scheduler: write-behind "
                     "staging, fetch flights, dedup and stale drops")
        #: multi-client safety: per-inode signed leases with fencing
        #: epochs (fs/lease.py).  ``_fences`` maps inode -> held epoch
        #: for the *current* mutation; the journaled intent carries it
        #: and the apply phase fences each write with it.
        self.lease = None
        self._fences: dict[int, int] = {}
        if self.config.lease:
            if not self.config.journal:
                raise SharoesError(
                    "ClientConfig(lease=True) requires journal=True: "
                    "fenced commits ride the intent journal")
            from ..sim.clock import SimClock
            from .lease import LeaseManager
            # A volume-level clock (shared across clients) is the lease
            # time authority; a private cost-model clock only serves the
            # single-client case.
            clock = getattr(volume, "clock", None)
            if clock is None and cost_model is not None:
                clock = cost_model.clock
            self.lease = LeaseManager(
                user, volume.registry.directory, self.server,
                clock if clock is not None else SimClock(),
                duration_s=self.config.lease_duration_s,
                provider=self.provider, escrow=volume.registry.user,
                tracer=self.tracer, metrics=self.metrics)

    def enable_consistency_log(self):
        """Attach a SUNDR-style fork-consistency log (paper section VI).

        Every verified metadata fetch feeds the log; call
        ``publish_statement()`` periodically and ``sync_statements()``
        to cross-check peers.  Returns the log.
        """
        from .consistency import ConsistencyLog
        self.consistency = ConsistencyLog(
            self.agent.user_id, self.agent.user.private_key,
            self.volume.registry.directory, self.provider)
        return self.consistency

    @traced("publish_statement", path_arg=None)
    def publish_statement(self):
        """Sign + upload this client's version statement (if enabled)."""
        if self.consistency is None:
            raise SharoesError("consistency log not enabled")
        self._charge_other()
        self.flush_staged()
        statement = self.consistency.publish(self.server)
        if self.cost is not None:
            self.cost.charge_request(
                len(statement.to_bytes()) + _REQUEST_HEADER_BYTES,
                _RESPONSE_HEADER_BYTES)
        return statement

    @traced("sync_statements", path_arg=None)
    def sync_statements(self, peer_ids: list[str] | None = None):
        """Fetch + fork-check peers' statements (if enabled).

        Raises :class:`repro.fs.consistency.ForkDetected` when the SSP
        has shown this client and a peer divergent histories.
        """
        if self.consistency is None:
            raise SharoesError("consistency log not enabled")
        self._charge_other()
        self.flush_staged()
        if peer_ids is None:
            peer_ids = [u.user_id
                        for u in self.volume.registry.users()]
        accepted = self.consistency.sync(self.server, peer_ids)
        if self.cost is not None:
            for statement in accepted:
                self.cost.charge_request(
                    _REQUEST_HEADER_BYTES,
                    len(statement.to_bytes()) + _RESPONSE_HEADER_BYTES)
        return accepted

    # ------------------------------------------------------------------ wire

    def _charge_other(self) -> None:
        if self.cost is not None:
            self.cost.charge_other()

    def _count_wire_request(self) -> None:
        self.request_count += 1

    def _write_behind_on(self) -> bool:
        return self.scheduler is not None and self.scheduler.write_behind

    def flush_staged(self) -> int:
        """Barrier: ship every staged write-behind mutation now.

        Called at every point where staged state must be visible beyond
        this client -- close-to-open ``revalidate()``, ``unmount()``,
        consistency-log publishes -- and before any mutation that must
        order directly against the SSP (fenced writes, oversized
        groups).  A no-op without a scheduler.  Returns the number of
        sub-ops shipped.
        """
        if self.scheduler is None:
            return 0
        return self.scheduler.flush()

    def _get(self, blob_id: BlobId) -> bytes:
        if self._batch is not None:
            # Read-your-writes: an op that re-reads a blob it just staged
            # (symlink resolving its fresh entry, writeback re-reading
            # block 0) must observe its own deferred state.
            covered, payload = self._batch.read(blob_id)
            if covered:
                if payload is None:
                    raise BlobNotFound(str(blob_id))
                return payload
        if self.scheduler is not None:
            # Read-your-writes against the write-behind queue: the
            # staged state is newer than both the SSP copy and any
            # speculative raw slot, and serving it here is what keeps a
            # mutation ordered before its dependent reads.
            covered, payload = self.scheduler.staged_read(blob_id)
            if covered:
                if payload is None:
                    raise BlobNotFound(str(blob_id))
                return payload
        raw = self.cache.get(("raw", blob_id))
        if raw is not None:
            # Speculatively fetched by an earlier OP_BATCH readahead
            # frame (already paid for there).  Single-shot: the buffered
            # bytes are only as fresh as that fetch, so consume them
            # once and let any re-read go back to the SSP.
            self.cache.invalidate(("raw", blob_id))
            self.metrics.counter(
                "client.readahead.hits",
                help="gets served from the speculative read buffer").inc()
            with self.tracer.span("cache", hit=True, kind="raw"):
                return raw
        self.request_count += 1
        with self.tracer.span("network", op="get", kind=blob_id.kind):
            try:
                payload = self.server.get(blob_id)
            except BlobNotFound:
                if self.cost is not None:
                    self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                             _RESPONSE_HEADER_BYTES)
                raise
            if self.cost is not None:
                self.cost.charge_request(
                    _REQUEST_HEADER_BYTES,
                    len(payload) + _RESPONSE_HEADER_BYTES)
            return payload

    def _exists(self, blob_id: BlobId) -> bool:
        """Existence probe, consistent with the active batch overlay."""
        if self._batch is not None:
            known = self._batch.exists(blob_id)
            if known is not None:
                return known
        if self.scheduler is not None:
            known = self.scheduler.staged_exists(blob_id)
            if known is not None:
                return known
        return self.server.exists(blob_id)

    def _fence_for(self, blob_id: BlobId,
                   fences: "dict[int, int] | None") -> int | None:
        """Fencing epoch to apply to this blob's write, if any."""
        if not fences:
            return None
        return fences.get(blob_id.inode)

    def _put(self, blob_id: BlobId, payload: bytes,
             fences: "dict[int, int] | None" = None) -> None:
        self.cache.invalidate(("raw", blob_id))
        if self._batch is not None:
            self._batch.stage(journal.PUT, [(blob_id, payload)])
            return
        if (self._write_behind_on()
                and self._fence_for(blob_id, fences) is None):
            self.scheduler.stage_put(blob_id, payload)
            return
        # A direct (fenced) write must order after everything staged.
        self.flush_staged()
        self.request_count += 1
        with self.tracer.span("network", op="put", kind=blob_id.kind):
            if self.cost is not None:
                self.cost.charge_request(
                    len(payload) + _REQUEST_HEADER_BYTES,
                    _RESPONSE_HEADER_BYTES)
            epoch = self._fence_for(blob_id, fences)
            if epoch is None:
                self.server.put(blob_id, payload)
            else:
                self.server.put_fenced(blob_id, payload,
                                       lease_blob(blob_id.inode), epoch)

    def _put_many(self, blobs: list[tuple[BlobId, bytes]],
                  fences: "dict[int, int] | None" = None) -> None:
        """Upload several blobs in one request (one round trip).

        Matches the paper's Figure 8 cost table: a create performs one
        "metadata send" and one "parent-dir send" even when multiple CAP
        replicas are involved -- the per-CAP multiplier applies to the
        crypto column, not the network column.  With ``batching`` on
        (default) the blobs really do ride one ``OP_BATCH`` frame; with
        it off each blob is its own round trip and pays its own headers
        -- the honest reference execution the differential harness
        compares against.
        """
        if not blobs:
            return
        for blob_id, _ in blobs:
            self.cache.invalidate(("raw", blob_id))
        if self._batch is not None:
            self._batch.stage(journal.PUT_MANY, list(blobs))
            return
        if (self._write_behind_on()
                and len(blobs) <= self.scheduler.window
                and all(self._fence_for(bid, fences) is None
                        for bid, _ in blobs)):
            # Small independent groups ride the write-behind queue and
            # merge with neighbouring ops into shared RTT waves.  A
            # group larger than the window would *lose* by staging (its
            # single OP_BATCH frame costs one RTT; waves cost several),
            # so it flushes the queue and ships the classic way.
            self.scheduler.stage_put_many(blobs)
            return
        self.flush_staged()
        if not self.config.batching:
            for blob_id, payload in blobs:
                self._put(blob_id, payload, fences=fences)
            return
        ops = []
        for blob_id, payload in blobs:
            epoch = self._fence_for(blob_id, fences)
            if epoch is None:
                ops.append(BatchOp.put(blob_id, payload))
            else:
                ops.append(BatchOp.put_fenced(
                    blob_id, payload, lease_blob(blob_id.inode), epoch))
        self.request_count += 1
        with self.tracer.span("network", op="put_many", count=len(blobs)):
            self._observe_batch(len(ops))
            replies = self.server.batch(ops)
            if self.cost is not None:
                # Charge only what crossed the wire: on a partial
                # failure the unattempted tail never left the client
                # (the pre-batch code charged the whole batch upfront
                # even when most of it was never sent).
                attempted = sum(
                    op.sent_bytes() for op, reply in zip(ops, replies)
                    if reply.status != "unattempted")
                self.cost.charge_request(attempted + _REQUEST_HEADER_BYTES,
                                         _RESPONSE_HEADER_BYTES)
            for index, reply in enumerate(replies):
                if reply.status == "ok":
                    continue
                blob_id = blobs[index][0]
                if reply.status == "fenced":
                    # A fenced-out write is not a half-applied batch to
                    # retry: the lease moved on.  Surface it untouched so
                    # the mutation pipeline converts it to LeaseLostError.
                    raise StaleEpochError(
                        f"batched upload fenced out at {blob_id}",
                        current_epoch=reply.epoch or 0)
                # Surface the exact shape of the half-applied batch
                # instead of a bare StorageError; transient causes
                # keep their retry-eligible type.
                self.metrics.counter(
                    "transport.partial_writes",
                    help="batched uploads that failed part-way").inc()
                cls = (TransientPartialWriteError if reply.transient
                       else PartialWriteError)
                raise cls(
                    f"batched upload failed at {blob_id} "
                    f"({index}/{len(blobs)} blobs applied): "
                    f"{reply.message}",
                    applied=[bid for bid, _ in blobs[:index]],
                    failed=blob_id,
                    remaining=[bid for bid, _ in blobs[index + 1:]],
                )

    def _delete(self, blob_id: BlobId,
                fences: "dict[int, int] | None" = None) -> None:
        self.cache.invalidate(("raw", blob_id))
        if self._batch is not None:
            self._batch.stage(journal.DELETE, [(blob_id, None)])
            return
        if (self._write_behind_on()
                and self._fence_for(blob_id, fences) is None):
            self.scheduler.stage_delete(blob_id)
            return
        self.flush_staged()
        self.request_count += 1
        with self.tracer.span("network", op="delete", kind=blob_id.kind):
            if self.cost is not None:
                self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                         _RESPONSE_HEADER_BYTES)
            epoch = self._fence_for(blob_id, fences)
            if epoch is None:
                self.server.delete(blob_id)
            else:
                self.server.delete_fenced(blob_id,
                                          lease_blob(blob_id.inode), epoch)

    def _delete_many(self, blob_ids: list[BlobId],
                     fences: "dict[int, int] | None" = None) -> None:
        """Batch deletion: one request regardless of blob count."""
        if not blob_ids:
            return
        for blob_id in blob_ids:
            self.cache.invalidate(("raw", blob_id))
        if self._batch is not None:
            self._batch.stage(journal.DELETE_MANY,
                              [(bid, None) for bid in blob_ids])
            return
        if (self._write_behind_on()
                and len(blob_ids) <= self.scheduler.window
                and all(self._fence_for(bid, fences) is None
                        for bid in blob_ids)):
            self.scheduler.stage_delete_many(blob_ids)
            return
        self.flush_staged()
        if not self.config.batching:
            for blob_id in blob_ids:
                self._delete(blob_id, fences=fences)
            return
        ops = []
        for blob_id in blob_ids:
            epoch = self._fence_for(blob_id, fences)
            if epoch is None:
                ops.append(BatchOp.delete(blob_id))
            else:
                ops.append(BatchOp.delete_fenced(
                    blob_id, lease_blob(blob_id.inode), epoch))
        self.request_count += 1
        with self.tracer.span("network", op="delete_many",
                              count=len(blob_ids)):
            self._observe_batch(len(ops))
            replies = self.server.batch(ops)
            if self.cost is not None:
                # One request header for the batch, like _put_many --
                # blob ids ride in the payload of a single round trip.
                self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                         _RESPONSE_HEADER_BYTES)
            for reply in replies:
                # Deletes never wrapped errors in PartialWriteError;
                # re-raise each sub-op failure as the single-op
                # exception (fenced -> StaleEpochError, and so on).
                reply.raise_for_status()

    # ------------------------------------------------------------------ batch

    def _observe_batch(self, count: int) -> None:
        self.metrics.histogram(
            "client.batch.size",
            help="sub-ops per OP_BATCH frame",
            buckets=_BATCH_SIZE_BUCKETS).observe(float(count))

    def _readahead_on(self) -> bool:
        return (self.config.readahead and self.config.batching
                and self.config.metadata_cache)

    def _prefetch(self, blob_ids: list[BlobId]) -> None:
        """Speculatively fetch blobs in one ``OP_BATCH`` round trip.

        Fetched bytes land in the cache under ``("raw", blob_id)`` keys
        and are consumed (once) by the next :meth:`_get` of that blob.
        A cold or already-deleted candidate answers as a per-sub-op
        miss, which costs nothing beyond its id on the wire; a storage
        error voids the whole speculation silently -- the demand path
        re-fetches with its own non-speculative error semantics.
        """
        wanted = []
        for blob_id in blob_ids:
            if self.cache.get(("raw", blob_id)) is not None:
                continue
            if self._batch is not None and self._batch.read(blob_id)[0]:
                continue
            if self.scheduler is not None and self.scheduler.covers(
                    blob_id):
                # Staged state is newer than the SSP copy: fetching the
                # server bytes now would plant a stale raw slot that
                # outlives the flush.  The overlay serves these reads.
                continue
            wanted.append(blob_id)
        if len(wanted) < 2:
            return  # nothing to amortize: let the demand path pay 1 RTT
        wanted = wanted[:_MAX_PREFETCH]
        self.request_count += 1
        with self.tracer.span("network", op="get_many",
                              count=len(wanted)):
            self._observe_batch(len(wanted))
            try:
                replies = self.server.batch(
                    [BatchOp.get(blob_id) for blob_id in wanted])
            except StorageError:
                if self.cost is not None:
                    self.cost.charge_request(_REQUEST_HEADER_BYTES,
                                             _RESPONSE_HEADER_BYTES)
                return
            down = 0
            for blob_id, reply in zip(wanted, replies):
                if reply.status == "ok" and reply.payload is not None:
                    down += len(reply.payload)
                    self.cache.put(("raw", blob_id), reply.payload,
                                   len(reply.payload))
                    self.metrics.counter(
                        "client.readahead.prefetched",
                        help="blobs fetched speculatively").inc()
            if self.cost is not None:
                self.cost.charge_request(
                    _REQUEST_HEADER_BYTES,
                    down + _RESPONSE_HEADER_BYTES)

    def _prefetch_walk(self, inode: int, selector: str) -> None:
        """Path-walk readahead for a not-yet-terminal component.

        A directory's metadata blob and its table blob share a selector,
        and a mid-walk component needs both (the view to check type and
        caps, the table to look up the next name).  Fetch the pair in
        one frame; if the component turns out to be a file (no table
        blob) the table sub-op is just a miss.
        """
        if self.cache.get(("meta", inode, selector)) is not None:
            return
        if self.cache.get(("table", inode, selector)) is not None:
            return
        self._prefetch([meta_blob(inode, selector),
                        table_blob_id(inode, selector)])

    def _prefetch_children(self, table: TableView) -> None:
        """Directory-scan readahead: batch the children's metadata.

        After listing, callers almost always stat every child (``ls
        -l``, recursive walks).  A FULL view already names each DIRECT
        child's metadata blob; fetch the uncached ones in one frame so
        the per-child getattr round trips collapse.  SPLIT/ZERO entries
        are skipped -- their replica selector hides behind a lockbox.
        """
        if table.style != VIEW_FULL:
            return
        wanted = []
        for entry in table.entries.values():
            if entry.kind != DIRECT or entry.pointer is None:
                continue
            key = ("meta", entry.inode, entry.pointer.selector)
            if self.cache.get(key) is not None:
                continue
            wanted.append(meta_blob(entry.inode, entry.pointer.selector))
        self._prefetch(wanted)

    # ------------------------------------------------------------------ journal

    @contextmanager
    def _mutation(self, op: str):
        """Scope one crash-consistent mutation (see fs/journal.py).

        With journaling off (default) or inside an enclosing mutation
        this is a no-op.  Otherwise every put/delete the body issues is
        deferred into a :class:`~repro.fs.journal.MutationBatch`; on
        clean exit the batch is sealed into a signed intent, journaled at
        the SSP, applied, and committed.  If the body raises before
        staging completes, nothing was sent: the op rolls back by
        construction.  If applying fails part-way, the intent stays
        pending and is replayed (idempotently) before the next mutation
        or at the next mount.
        """
        if not self.config.journal or self._batch is not None:
            yield
            return
        self._replay_pending()
        batch = journal.MutationBatch(op)
        self._batch = batch
        self._fences = {}
        try:
            yield
        except BaseException:
            self._batch = None
            self._release_fences()
            raise
        self._batch = None
        if not batch.calls:
            self._release_fences()
            return
        record = batch.record(self._next_seq(),
                              fences=tuple(sorted(self._fences.items())))
        self._pending.append(record)
        try:
            self._journal_write("append")
        except BaseException:
            # The intent never became durable, and no blob of the op was
            # sent: the mutation rolled back whole.
            self._pending.remove(record)
            self._release_fences()
            raise
        self.metrics.counter(
            "journal.appends", help="intents journaled").inc()
        try:
            # Preflight the fences before the first apply write: if a
            # successor already took a lease over while we were paused,
            # every write of this mutation is doomed -- better to learn
            # that from one lease read than to strand a partial apply
            # (the SSP would accept the uncontended inodes' blobs and
            # only reject the contended one).  The preflight-to-write
            # race that remains is exactly the post-append case a
            # successor resolves by rolling our intent forward.
            if record.fences and journal.fences_stale(self.server,
                                                      record):
                raise StaleEpochError(
                    "lease chain advanced past this mutation's fences")
            self._apply_record(record)
        except StaleEpochError as exc:
            # A successor took our lease over mid-flight.  It rolled our
            # journaled intent forward before bumping the epoch, so the
            # op is *applied* -- by them, not us.  Drop the pending
            # record (the successor already truncated our journal at the
            # SSP), forget the stale leases, and surface the loss.
            self._pending.remove(record)
            try:
                # Best-effort scrub: if our append raced *after* the
                # successor's truncation, the SSP journal still shows
                # the superseded intent; rewrite it empty so nothing
                # dangles.  On failure the stale-fence checks (fenced
                # replay here, fences_stale in roll_forward) still
                # keep it from ever being applied.
                self._journal_write("commit")
            except StorageError:
                pass
            # The successor rolled our intent forward and may have kept
            # writing under its lease: every inode this mutation fenced
            # is now suspect, so cached views of it must not be served.
            for inode in list(self._fences):
                self._invalidate(inode)
            self._forget_fences()
            self.metrics.counter(
                "lease.lost",
                help="mutations fenced out by a lease takeover").inc()
            raise LeaseLostError(
                f"{record.op}: lease taken over mid-mutation "
                f"({exc})") from exc
        self._pending.remove(record)
        try:
            self._journal_write("commit")
        except BaseException:
            self._pending.append(record)
            raise
        self.metrics.counter(
            "journal.commits", help="intents committed").inc()
        if self.consistency is not None:
            self.consistency.observe_journal(record.seq)
        self._release_fences()

    def _lease_for_write(self, inode: int) -> None:
        """Acquire (or renew) the write lease covering ``inode``.

        Called at the top of every read-modify-write so the lease is
        held *before* the stale read can happen.  A fresh acquisition
        invalidates the local cache for the inode: another client may
        have written it since we last looked.  A renewal implies no
        intervening writer (the epoch chain only moved through us), so
        the cache stays warm.
        """
        if self.lease is None or self._batch is None:
            return
        if inode in self._fences:
            return
        fresh = self.lease.held_epoch(inode) is None
        attempts = max(0, self.config.lease_wait_attempts)
        delay = max(0.0, self.config.lease_wait_base_s)
        for attempt in range(attempts + 1):
            try:
                record = self.lease.acquire(inode)
                break
            except LeaseHeldError:
                if attempt >= attempts:
                    raise
                # Wait the holder out.  The backoff advances the sim
                # clock, so a crashed holder's lease expires during the
                # wait and the next acquire() takes it over (rolling the
                # holder's journal forward first).
                self.metrics.counter(
                    "lease.waits",
                    help="backoffs spent waiting out held leases").inc()
                self._wait_for_lease(delay)
                delay = min(delay * 2,
                            max(delay, self.config.lease_wait_max_s))
        self._fences[inode] = record.epoch
        if fresh:
            self._invalidate(inode)

    def _wait_for_lease(self, seconds: float) -> None:
        """Advance the lease clock through one backoff window.

        Lease expiry is judged against the volume clock; when the cost
        model shares that clock the wait is charged (OTHER) so backoff
        shows up in breakdowns, otherwise the clock is advanced
        directly.
        """
        if seconds <= 0 or self.lease is None:
            return
        if self.cost is not None and self.cost.clock is self.lease.clock:
            self.cost.charge_wait(seconds)
        else:
            self.lease.clock.advance(seconds)

    def _release_fences(self) -> None:
        """Release the mutation's leases (best effort, clean path)."""
        fences, self._fences = self._fences, {}
        if self.lease is None:
            return
        for inode in fences:
            try:
                self.lease.release(inode)
            except StorageError:
                # An unreleased lease only costs peers a takeover after
                # expiry; never fail a committed mutation over it.
                pass

    def _forget_fences(self) -> None:
        """Drop lease state without touching the SSP (lease was lost)."""
        fences, self._fences = self._fences, {}
        if self.lease is None:
            return
        for inode in fences:
            self.lease.forget(inode)

    def _next_seq(self) -> int:
        self._journal_seq += 1
        return self._journal_seq

    def _journal_write(self, phase: str) -> None:
        """Seal + upload the current pending-intent list."""
        blob = journal.seal_journal(self.provider, self.agent.user,
                                    self._pending)
        with self.tracer.span("journal", phase=phase,
                              pending=len(self._pending)):
            self._put(journal_blob(self.agent.user_id), blob)

    def _apply_record(self, record: journal.IntentRecord) -> None:
        """Replay an intent's staged calls for real.

        Preserves the original request grouping (a ``put_many`` stays one
        round trip) so the simulated cost matches the unjournaled op.
        Idempotent: every staged action is an overwrite-put or an
        idempotent delete, so replaying a partially-applied intent
        converges on fully-applied.  The record's fences (if any) ride
        along: a replay by a zombie whose lease was taken over is
        rejected by the SSP with :class:`StaleEpochError`.
        """
        fences = dict(record.fences) or None
        for call in record.calls:
            if call.kind == journal.PUT:
                ((blob_id, payload),) = call.blobs
                self._put(blob_id, payload, fences=fences)
            elif call.kind == journal.PUT_MANY:
                self._put_many(list(call.blobs), fences=fences)
            elif call.kind == journal.DELETE:
                ((blob_id, _),) = call.blobs
                self._delete(blob_id, fences=fences)
            else:
                self._delete_many(list(call.blob_ids()), fences=fences)

    def _replay_pending(self) -> None:
        """Re-apply intents whose first apply failed part-way.

        Replays stay *fenced*: if a successor took over our lease since
        the intent was journaled, it already rolled the intent forward,
        so a :class:`StaleEpochError` here means the work is done (by
        them) and our stale copy must be dropped, not retried -- an
        unfenced replay would overwrite the successor's newer writes.
        """
        while self._pending:
            record = self._pending[0]
            try:
                with self.tracer.span("journal", phase="replay",
                                      op=record.op):
                    self._apply_record(record)
            except StaleEpochError:
                self._pending.pop(0)
                self.metrics.counter(
                    "journal.fenced_replays",
                    help="pending intents dropped: already rolled "
                         "forward by a lease successor").inc()
                continue
            self._pending.pop(0)
            try:
                self._journal_write("commit")
            except BaseException:
                self._pending.insert(0, record)
                raise
            self.metrics.counter(
                "journal.replays",
                help="pending intents re-applied in-session").inc()

    def _recover_journal(self) -> journal.RecoveryOutcome:
        """Mount-time recovery: replay whatever a dead client left.

        The journal blob is verified (user-signed, MEK-encrypted) before
        anything is replayed -- a tampered or SSP-forged record raises
        :class:`IntegrityError` here and is never applied.
        """
        outcome = journal.RecoveryOutcome()
        if self._batch is not None:  # nested mount inside a mutation
            return outcome
        try:
            blob = self._get(journal_blob(self.agent.user_id))
        except BlobNotFound:
            return outcome
        records = journal.open_journal(self.provider, self.agent.user,
                                       blob)
        if not records:
            return outcome
        if (self.consistency is not None
                and max(r.seq for r in records)
                <= self.consistency.journal_seq):
            # The VSL says we already committed past every intent the
            # SSP is serving: this journal was truncated and the SSP is
            # re-serving the stale pre-commit copy.  Replaying it would
            # silently roll the volume back.
            from .consistency import ForkDetected
            raise ForkDetected(
                f"{self.agent.user_id}: SSP served a stale committed "
                f"journal (intents <= {self.consistency.journal_seq}, "
                f"already committed per my version statement)")
        self._journal_seq = max(self._journal_seq,
                                max(r.seq for r in records))
        for record in records:
            try:
                with self.tracer.span("journal", phase="recover",
                                      op=record.op):
                    self._apply_record(record)
            except StaleEpochError:
                # A lease successor already rolled this intent forward
                # (fenced replay; see _replay_pending).
                outcome.aborted.append(record)
                self.metrics.counter(
                    "journal.fenced_replays",
                    help="pending intents dropped: already rolled "
                         "forward by a lease successor").inc()
                continue
            outcome.replayed.append(record)
            self.metrics.counter(
                "journal.recovered",
                help="intents replayed by mount-time recovery").inc()
        self._pending = []
        self._journal_write("commit")
        if self.consistency is not None and outcome.replayed:
            self.consistency.observe_journal(
                max(r.seq for r in outcome.replayed))
        return outcome

    # ------------------------------------------------------------------ mount

    @traced("mount", path_arg=None)
    def mount(self) -> None:
        """Fetch + decrypt this user's superblock and group keys.

        The single public-key decryption here is the only one on the
        normal access path (paper section III-C).
        """
        self._charge_other()
        blob = self._get(superblock_blob(self.agent.user_id))
        self._superblock = Superblock.unwrap(
            self.provider, self.agent.user.private_key, blob)
        for group_id in sorted(self.agent.user.groups):
            try:
                wrapped = self._get(
                    group_key_blob(group_id, self.agent.user_id))
            except BlobNotFound:
                continue
            self.agent.install_group_key(group_id, wrapped)
        if self.consistency is not None:
            # Resume our own statement chain *before* journal recovery:
            # the adopted journal_seq watermark is what lets recovery
            # reject a stale re-served committed journal as a rollback.
            # New intents must also number past the watermark, or this
            # session's own commits would look like stale re-serves.
            self.consistency.resume_from(self.server)
            self._journal_seq = max(self._journal_seq,
                                    self.consistency.journal_seq)
        if self.config.journal:
            self._recover_journal()

    @property
    def mounted(self) -> bool:
        return self._superblock is not None

    def _require_mounted(self) -> Superblock:
        if self._superblock is None:
            raise FilesystemError("filesystem is not mounted")
        return self._superblock

    def unmount(self) -> None:
        self.flush_staged()
        if self.lease is not None:
            try:
                self.lease.release_all()
            except StorageError:
                pass  # leases expire; peers take over after the window
        self._superblock = None
        self.cache.clear()
        self.agent.group_keys.clear()

    @traced("renew_leases")
    def renew_leases(self) -> list[int]:
        """Renew every held lease in one ``OP_BATCH`` round trip.

        Long-running clients keep their write leases alive by renewing
        before expiry; batching collapses the one-CAS-per-inode cost to
        a single frame.  A lease another client advanced past meanwhile
        is *lost*: it is dropped locally and the inode's cached state
        invalidated (the successor may have written it).  Returns the
        inodes whose leases were renewed.
        """
        if self.lease is None:
            return []
        count = len(self.lease.held_inodes())
        if count == 0:
            return []
        self.request_count += 1
        with self.tracer.span("network", op="renew_leases", count=count):
            self._observe_batch(count)
            renewed, lost, up, down = self.lease.renew_all()
            if self.cost is not None:
                self.cost.charge_request(up + _REQUEST_HEADER_BYTES,
                                         down + _RESPONSE_HEADER_BYTES)
        for inode in lost:
            self._fences.pop(inode, None)
            self._invalidate(inode)
        for inode in renewed:
            if inode in self._fences:
                epoch = self.lease.held_epoch(inode)
                if epoch is not None:
                    self._fences[inode] = epoch
        return renewed

    # ------------------------------------------------------------------ fetch

    def _was_degraded(self, blob_id: BlobId) -> bool:
        """Did the transport serve this blob from its stale fallback?

        A degraded last-known-good read still verifies (it is validly
        signed old bytes), but caching its decrypted view would let the
        outage outlive itself: the entry would keep serving the stale
        state long after the SSP healed.  Degraded payloads are used
        once and never cached -- see docs/CACHING.md.
        """
        stale_ids = getattr(self.server, "stale_blob_ids", None)
        if stale_ids is None or blob_id not in stale_ids:
            return False
        self.metrics.counter(
            "client.cache.degraded_skips",
            help="verified payloads not cached: served degraded").inc()
        if self.mdcache is not None:
            self.mdcache.degraded_skips += 1
        return True

    def _cached_view(self, inode: int, selector: str) -> MetadataView | None:
        if not self.config.metadata_cache:
            return None
        if self.mdcache is not None:
            return self.mdcache.get_view(inode, selector)
        return self.cache.get(("meta", inode, selector))

    def _cache_view(self, inode: int, selector: str, view: MetadataView,
                    size_bytes: int) -> None:
        if not self.config.metadata_cache:
            return
        if self.mdcache is not None:
            self.mdcache.put_view(inode, selector, view, size_bytes)
        else:
            self.cache.put(("meta", inode, selector), view, size_bytes)

    def _fetch_view(self, inode: int, selector: str, mek: bytes,
                    mvk: esign.VerificationKey) -> MetadataView:
        cached = self._cached_view(inode, selector)
        if cached is not None:
            with self.tracer.span("cache", hit=True, kind="meta"):
                return cached
        blob_id = meta_blob(inode, selector)
        try:
            blob = self._get(blob_id)
        except BlobNotFound:
            raise PermissionDenied(
                f"inode {inode}: no metadata replica for your permissions"
            ) from None
        with self.tracer.span("crypto", op="open_metadata"):
            view = open_metadata_blob(self.provider, inode, selector, mek,
                                      mvk, blob)
        if self.config.check_freshness:
            self.freshness.observe_metadata(
                inode, view.attrs.version, self._attrs_digest(view.attrs))
        if self.consistency is not None:
            self.consistency.observe(inode, view.attrs.version)
        if not self._was_degraded(blob_id):
            self._cache_view(inode, selector, view, len(blob))
        return view

    @staticmethod
    def _attrs_digest(attrs: MetadataAttrs) -> bytes:
        """Canonical attribute bytes: identical across CAP replicas of
        one object version, so equivocation between versions is caught
        without false positives between selectors."""
        from ..serialize import Writer
        writer = Writer()
        attrs.to_writer(writer)
        return writer.getvalue()

    def _cached_table(self, inode: int, selector: str) -> TableView | None:
        if not self.config.metadata_cache:
            return None
        if self.mdcache is not None:
            return self.mdcache.get_table(inode, selector)
        return self.cache.get(("table", inode, selector))

    def _cache_table(self, inode: int, selector: str, view: TableView,
                     size_bytes: int) -> None:
        if not self.config.metadata_cache:
            return
        if self.mdcache is not None:
            self.mdcache.put_table(inode, selector, view, size_bytes)
        else:
            self.cache.put(("table", inode, selector), view, size_bytes)

    def _fetch_table(self, node: ResolvedNode) -> TableView:
        if node.attrs.ftype != DIRECTORY:
            raise NotADirectory(f"inode {node.inode} is not a directory")
        cached = self._cached_table(node.inode, node.selector)
        if cached is not None:
            with self.tracer.span("cache", hit=True, kind="table"):
                return cached
        dek = node.view.require_dek()
        dvk = node.view.require_dvk()
        blob_id = table_blob_id(node.inode, node.selector)
        blob = self._get(blob_id)
        with self.tracer.span("crypto", op="open_table"):
            payload = open_verified(
                self.provider, dek, dvk,
                bind_context("table", node.inode, node.selector), blob)
        view = TableView.from_bytes(payload)
        if not self._was_degraded(blob_id):
            self._cache_table(node.inode, node.selector, view, len(blob))
        return view

    def _invalidate(self, inode: int) -> None:
        if self.scheduler is not None:
            # Cancel in-flight speculation: a fetch that raced this
            # invalidation must not land in any cache.
            self.scheduler.note_invalidation()
        if self.mdcache is not None:
            self.mdcache.invalidate_inode(inode)
            return
        self.cache.invalidate_prefix(("meta", inode))
        self.cache.invalidate_prefix(("table", inode))
        self.cache.invalidate_prefix(("listing", inode))
        self.cache.invalidate_prefix(("data", inode))
        # Raw readahead buffers are keyed by blob id, not inode, so they
        # cannot be invalidated per-inode; drop them all.  Invalidation
        # means "another client may have written here" -- stale
        # speculative bytes are exactly what must not survive that.
        self.cache.invalidate_prefix(("raw",))

    def revalidate(self) -> None:
        """Close-to-open consistency boundary.

        Without the verified metadata cache this is the paper-faithful
        conservative drop: forget every cached metadata view and
        directory table so the next open re-fetches and re-verifies.
        With ``ClientConfig(mdcache=True)`` the entries stay warm --
        they are version-pinned and every staleness event invalidates
        through :meth:`_invalidate` -- so the boundary costs nothing.
        """
        # Close-to-open means "my writes are visible to the next
        # opener": staged write-behind state must reach the SSP first.
        self.flush_staged()
        if self.mdcache is not None:
            self.mdcache.revalidate()
            return
        self.cache.invalidate_prefix(("meta",))
        self.cache.invalidate_prefix(("table",))
        self.cache.invalidate_prefix(("listing",))

    # ------------------------------------------------------------------ resolve

    def _root_node(self) -> ResolvedNode:
        sb = self._require_mounted()
        mvk = esign.VerificationKey.from_bytes(sb.root_mvk)
        view = self._fetch_view(sb.root_inode, sb.root_selector,
                                sb.root_mek, mvk)
        return ResolvedNode(inode=sb.root_inode, selector=sb.root_selector,
                            mek=sb.root_mek, mvk=mvk, view=view)

    def _resolve_lockbox(self, inode: int) -> tuple[str, bytes, bytes]:
        """Split-point resolution: try each of this agent's identities."""
        for principal_id in self.agent.principal_ids():
            try:
                blob = self._get(lockbox_blob(inode, principal_id))
            except BlobNotFound:
                continue
            payload = self.agent.unwrap(principal_id, blob)
            return parse_lockbox_payload(payload)
        raise PermissionDenied(
            f"inode {inode}: split point with no lockbox for "
            f"{self.agent.user_id}")

    def _follow_entry(self, entry: DirEntry,
                      lookahead: bool = False) -> ResolvedNode:
        if entry.kind == ZERO:
            raise PermissionDenied(
                f"{entry.name!r}: your permission chain has no access")
        if entry.kind == SPLIT:
            selector, mek, mvk_raw = self._resolve_lockbox(entry.inode)
        else:
            assert entry.pointer is not None
            selector = entry.pointer.selector
            mek = entry.pointer.mek
            mvk_raw = entry.pointer.mvk
            if lookahead and self._readahead_on():
                # The walk continues below this component: its metadata
                # *and* its table will both be needed, so fetch the pair
                # in one round trip.
                self._prefetch_walk(entry.inode, selector)
        mvk = esign.VerificationKey.from_bytes(mvk_raw)
        view = self._fetch_view(entry.inode, selector, mek, mvk)
        return ResolvedNode(inode=entry.inode, selector=selector, mek=mek,
                            mvk=mvk, view=view)

    def _lookup_child(self, dir_node: ResolvedNode, name: str,
                      lookahead: bool = False) -> ResolvedNode:
        if dir_node.cap_id not in _TRAVERSE_CAPS:
            raise PermissionDenied(
                f"inode {dir_node.inode}: traversal requires exec "
                f"permission (CAP {dir_node.cap_id})")
        table = self._fetch_table(dir_node)
        entry = table.lookup(name, provider=self.provider,
                             table_dek=dir_node.view.require_dek())
        return self._follow_entry(entry, lookahead=lookahead)

    _MAX_SYMLINK_DEPTH = 8

    def _trace_context(self):
        """Wire-trace context for the SSP request being issued right
        now: parent server spans under the innermost open span (the
        ``network`` span, or the transport's ``attempt`` span)."""
        current = self.tracer.current
        if current is None:
            return None
        from ..obs.wiretrace import TraceContext
        return TraceContext(self.tracer.trace_id or 0, current.span_id)

    def _note_walk(self, depth: int, span) -> None:
        """Classify one finished walk-component span as a cache hit or
        miss and fold it into the per-depth resolve attribution."""
        children = getattr(span, "children", None)
        if children is None:
            return  # tracing stubbed out (overhead harness)
        # A demand metadata/table fetch inside the component shows up as
        # a ``network`` get; speculative prefetches (get_many) and
        # raw-buffer consumption still count as hits.
        miss = any(node.name == "network"
                   and node.attrs.get("op") == "get"
                   for child in children for node in child.walk())
        span.attrs["cache"] = "miss" if miss else "hit"
        stats = self._walk_depth.setdefault(
            depth, {"walks": 0, "hits": 0, "misses": 0, "seconds": 0.0})
        stats["walks"] += 1
        stats["misses" if miss else "hits"] += 1
        stats["seconds"] += span.duration

    def _collect_walk_depth(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for depth in sorted(self._walk_depth):
            for key, value in self._walk_depth[depth].items():
                out[f"depth{depth}.{key}"] = value
        return out

    def walk_depth_stats(self) -> dict[str, dict[str, float]]:
        """Resolve attribution keyed by path depth (JSON-friendly)."""
        return {str(depth): dict(stats)
                for depth, stats in sorted(self._walk_depth.items())}

    def _resolve(self, path: str, follow_last: bool = True,
                 _depth: int = 0) -> ResolvedNode:
        with self.tracer.span("resolve", path=path):
            node = self._root_node()
            parts = fspath.split_path(path)
            for index, name in enumerate(parts):
                is_last = index == len(parts) - 1
                with self.tracer.span("walk", depth=index,
                                      component=name) as wspan:
                    node = self._lookup_child(node, name,
                                              lookahead=not is_last)
                self._note_walk(index, wspan)
                if node.attrs.ftype == SYMLINK and (follow_last or
                                                    not is_last):
                    if _depth >= self._MAX_SYMLINK_DEPTH:
                        raise FilesystemError(
                            f"{path}: too many levels of symbolic links")
                    target = self._read_symlink_target(node)
                    remainder = parts[index + 1:]
                    combined = (fspath.join(target, *remainder)
                                if remainder else fspath.normalize(target))
                    return self._resolve(combined,
                                         follow_last=follow_last,
                                         _depth=_depth + 1)
            return node

    def _read_symlink_target(self, node: ResolvedNode) -> str:
        content, _ = self._read_blocks(node)
        try:
            return content.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FilesystemError(
                f"inode {node.inode}: corrupt symlink target") from exc

    def _resolve_parent(self, path: str) -> tuple[ResolvedNode, str]:
        parent_path, name = fspath.parent_and_name(path)
        return self._resolve(parent_path), name

    # ------------------------------------------------------------------ reads

    @traced("getattr")
    def getattr(self, path: str) -> Stat:
        """stat(2): fetch + decrypt the metadata replica (paper Fig. 8).

        Follows symlinks, like stat(2); use :meth:`lstat` not to.
        """
        self._charge_other()
        return Stat.from_attrs(self._resolve(path).attrs)

    @traced("lstat")
    def lstat(self, path: str) -> Stat:
        """stat without following a final symlink (lstat(2))."""
        self._charge_other()
        return Stat.from_attrs(
            self._resolve(path, follow_last=False).attrs)

    @traced("symlink", path_arg=1)
    @_mutating("symlink")
    def symlink(self, target: str, path: str, mode: int = 0o644) -> Stat:
        """Create a symbolic link at ``path`` pointing at ``target``.

        Targets are absolute volume paths.  The target string is stored
        encrypted like file content, so the SSP cannot see link topology.
        """
        fspath.split_path(target)  # validates absolute form
        stat = self._create(path, mode, SYMLINK, None, ())
        node = self._resolve(path, follow_last=False)
        self._flush_file(node, target.encode("utf-8"), [])
        return stat

    @traced("readlink")
    def readlink(self, path: str) -> str:
        """Return a symlink's target (readlink(2))."""
        self._charge_other()
        node = self._resolve(path, follow_last=False)
        if node.attrs.ftype != SYMLINK:
            raise FilesystemError(f"{path} is not a symbolic link")
        return self._read_symlink_target(node)

    @traced("link", path_arg=1)
    @_mutating("link")
    def link(self, existing_path: str, new_path: str) -> Stat:
        """Create a hard link (owner only: the link count lives in
        metadata, which only the MSK holder can update, and the new
        parent's rows need the object's per-selector MEKs)."""
        self._charge_other()
        node = self._resolve(existing_path, follow_last=False)
        if node.attrs.ftype == DIRECTORY:
            raise IsADirectory(
                f"{existing_path}: directories cannot be hard-linked")
        record = ObjectRecord.from_owner_view(node.view, node.mvk)
        new_parent, name = self._resolve_parent(new_path)
        self._require_dir_write(new_parent, new_path)
        if name in self._fetch_table(new_parent):
            raise FileExists(new_path)
        record.attrs.nlink += 1
        record.attrs.version += 1
        self._write_metadata_replicas(record)

        split_seen = False

        def add_row(view: TableView, selector: str, dek: bytes) -> None:
            nonlocal split_seen
            entry = self._entry_for_selector(new_parent.attrs, record,
                                             selector, name)
            split_seen = split_seen or entry.kind == SPLIT
            view.add(entry, provider=self.provider, table_dek=dek)

        self._update_parent_tables(new_parent, add_row)
        if split_seen or record.attrs.acl:
            self._write_lockboxes(record)
        return Stat.from_attrs(record.attrs)

    @traced("readdir")
    def readdir(self, path: str) -> list[str]:
        """List a directory (requires the read CAP)."""
        self._charge_other()
        node = self._resolve(path)
        if node.attrs.ftype != DIRECTORY:
            raise NotADirectory(path)
        if self.mdcache is not None:
            listing = self.mdcache.get_listing(node.inode, node.selector)
            if listing is not None and listing.cap_id == node.cap_id:
                # Pre-materialized fast path: the permission verdict and
                # the name tuple were both evaluated when the listing was
                # built from a verified table -- O(1), zero round trips.
                with self.tracer.span("cache", hit=True, kind="listing"):
                    if not listing.can_list:
                        raise PermissionDenied(
                            f"{path}: listing requires read permission "
                            f"(CAP {node.cap_id})")
                    return list(listing.names)
        if node.cap_id not in _LIST_CAPS:
            raise PermissionDenied(
                f"{path}: listing requires read permission "
                f"(CAP {node.cap_id})")
        table = self._fetch_table(node)
        if self._readahead_on():
            self._prefetch_children(table)
        names = table.list_names()
        if self.mdcache is not None:
            self.mdcache.put_listing(node.inode, node.selector, table,
                                     node.cap_id)
        return names

    @traced("access")
    def access(self, path: str, want: str) -> bool:
        """access(2)-style check: ``want`` is a subset of "rwx".

        Evaluates the mode bits for this user's class, exactly like the
        *nix call; the cryptographic enforcement happens when the
        operation is actually attempted.
        """
        self._charge_other()
        try:
            node = self._resolve(path)
        except (PermissionDenied, FileNotFound):
            return False
        bits = node.attrs.perms().bits_for(self.agent.user_id,
                                           self.agent.user.groups)
        masks = {"r": 0o4, "w": 0o2, "x": 0o1}
        return all(bits & masks[ch] for ch in want)

    def _read_blocks(self, node: ResolvedNode) -> tuple[bytes, list[bytes]]:
        """Fetch, verify and decrypt all data blocks of a file/symlink."""
        if node.attrs.ftype == DIRECTORY:
            raise IsADirectory(f"inode {node.inode} is a directory")
        dek = node.view.require_dek()
        dvk = node.view.require_dvk()
        blocks: list[bytes] = []
        index = 0
        total = 1  # until block 0 tells us the real count
        while index < total:
            cache_key = ("data", node.inode, index)
            plain: bytes | None = None
            if self.config.data_cache:
                with self.tracer.span("cache", kind="data") as cspan:
                    plain = self.cache.get(cache_key)
                    cspan.attrs["hit"] = plain is not None
            if plain is None:
                blob_id = block_blob_id(node.inode, index)
                try:
                    blob = self._get(blob_id)
                except BlobNotFound:
                    if index == 0:
                        return b"", []  # empty file: no blocks at all
                    raise IntegrityError(
                        f"inode {node.inode}: block {index} missing "
                        f"(truncation attack?)") from None
                context = bind_context("data", node.inode, f"b{index}")
                with self.tracer.span("crypto", op="decrypt_block"):
                    plain = open_verified(self.provider, dek, dvk,
                                          context, blob)
                if self.config.data_cache and not self._was_degraded(
                        blob_id):
                    self.cache.put(cache_key, plain, len(plain))
            if index == 0:
                total = int.from_bytes(plain[:4], "big")
                plain = plain[4:]
                self._fetch_tail_blocks(node.inode, total)
            blocks.append(plain)
            index += 1
        return b"".join(blocks), blocks

    def _fetch_tail_blocks(self, inode: int, total: int) -> None:
        """Overlap the tail of a multi-block read (scheduler only).

        Block 0 just told us the real block count; the sequential loop
        would now pay one full RTT per remaining block.  With a
        scheduler, fetch the not-yet-cached tail as one flight (waves
        of ``concurrency`` requests sharing RTTs) and park the sealed
        bytes in the consume-once ``("raw", ...)`` slots the loop's
        :meth:`_get` drains -- same bytes, same verification, fewer
        serialized round trips.  A missing block simply stays unfetched
        and the demand path surfaces the usual truncation error.
        """
        if self.scheduler is None or total <= 2:
            return
        wanted = []
        for index in range(1, total):
            if (self.config.data_cache and
                    self.cache.get(("data", inode, index)) is not None):
                continue
            blob_id = block_blob_id(inode, index)
            if self.cache.get(("raw", blob_id)) is not None:
                continue
            if self._batch is not None and self._batch.read(blob_id)[0]:
                continue
            if self.scheduler.covers(blob_id):
                continue
            wanted.append(blob_id)
        if len(wanted) < 2:
            return
        wanted = wanted[:_MAX_PREFETCH]
        with self.tracer.span("network", op="fetch_tail",
                              count=len(wanted)):
            fetched = self.scheduler.fetch_many(wanted)
        for blob_id, payload in fetched.items():
            if payload is not None:
                self.cache.put(("raw", blob_id), payload, len(payload))
                self.metrics.counter(
                    "client.readahead.prefetched",
                    help="blobs fetched speculatively").inc()

    @traced("read_file")
    def read_file(self, path: str) -> bytes:
        """Read a whole file (requires the read CAP)."""
        self._charge_other()
        node = self._resolve(path)
        if node.attrs.ftype != FILE:
            raise IsADirectory(path)
        if node.cap_id not in ("fr", "frw"):
            raise PermissionDenied(
                f"{path}: read requires read permission (CAP {node.cap_id})")
        content, _ = self._read_blocks(node)
        return content

    # ------------------------------------------------------------------ writes

    @traced("open")
    def open(self, path: str, mode: str = "r") -> OpenFile:
        """Open a file; ``mode`` in {"r", "w", "a", "rw"}.

        "w" truncates.  Writes stay in the local handle until close.
        """
        self._charge_other()
        if mode not in ("r", "w", "a", "rw"):
            raise FilesystemError(f"bad open mode {mode!r}")
        node = self._resolve(path)
        if node.attrs.ftype != FILE:
            raise IsADirectory(path)
        readable = "r" in mode
        writable = mode in ("w", "a", "rw")
        if readable and node.cap_id not in ("fr", "frw"):
            raise PermissionDenied(f"{path}: no read permission")
        if writable and node.cap_id != "frw":
            raise PermissionDenied(f"{path}: no write permission")
        handle = OpenFile(fs=self, path=path, node=node,
                          readable=readable, writable=writable)
        if mode == "w":
            handle._loaded = True
            handle._dirty = True
            handle._original_blocks = []
        return handle

    @traced("write_file")
    def write_file(self, path: str, data: bytes) -> None:
        """Truncate + write a whole file."""
        with self.open(path, "w") as handle:
            handle.pwrite(data, 0)

    @traced("append_file")
    def append_file(self, path: str, data: bytes) -> None:
        with self.open(path, "a") as handle:
            handle.write(data)

    def _split_blocks(self, content: bytes) -> list[bytes]:
        block_size = self.volume.block_size
        if not content:
            return []
        return [content[i:i + block_size]
                for i in range(0, len(content), block_size)]

    @_mutating("writeback")
    def _flush_file(self, node: ResolvedNode, content: bytes,
                    original_blocks: list[bytes]) -> None:
        """Encrypt and upload dirty blocks; update metadata if owner.

        Only blocks whose plaintext changed are re-encrypted and re-sent --
        the point of the paper's per-block encryption.  Block 0 carries
        the total block count, so appends rewrite block 0 plus the new
        blocks, while an in-place change touches exactly one block.

        If a lazy revocation is pending (owner view, needs_rekey), this
        write is the moment it takes effect: fresh keys, full rewrite.
        """
        self._lease_for_write(node.inode)
        dek = node.view.require_dek()
        dsk = node.view.require_dsk()
        record = None
        rekeyed = False
        if node.view.is_owner_view:
            record = ObjectRecord.from_owner_view(node.view, node.mvk)
            if record.needs_rekey:
                record.rekey_data()
                dek, dsk = record.dek, record.dsk
                rekeyed = True
        new_blocks = self._split_blocks(content)
        old_count = len(original_blocks)
        new_count = len(new_blocks)
        outgoing = []
        with self.tracer.span("crypto", op="encrypt_blocks"):
            for index, block in enumerate(new_blocks):
                unchanged = (not rekeyed
                             and index < old_count
                             and original_blocks[index] == block
                             and (index > 0 or old_count == new_count))
                payload = block
                if index == 0:
                    payload = new_count.to_bytes(4, "big") + block
                if self.config.data_cache:
                    # Write-through: the plaintext just left this client.
                    self.cache.put(("data", node.inode, index), payload,
                                   len(payload))
                if unchanged:
                    continue
                context = bind_context("data", node.inode, f"b{index}")
                blob = seal_and_sign(self.provider, dek, dsk, context,
                                     payload)
                outgoing.append((block_blob_id(node.inode, index), blob))
        self._put_many(outgoing)
        self._delete_tail_blocks(node.inode, new_count,
                                 max(old_count, node.attrs.block_count))
        for index in range(new_count, max(old_count,
                                          node.attrs.block_count) + 1):
            self.cache.invalidate(("data", node.inode, index))
        # Per the paper's Figure 8, close costs exactly "1-dataencrypt,
        # data send": metadata is NOT rewritten on close (writers other
        # than the owner could not sign it anyway -- MSK is owner-only).
        # Sizes in metadata may go stale; block 0 carries the
        # authoritative block count.  Exceptions: a pending lazy
        # revocation (the fresh DEK must reach the replicas), or the
        # update_metadata_on_close convenience option.
        if record is not None and (
                rekeyed or self.config.update_metadata_on_close):
            record.attrs.size = len(content)
            record.attrs.block_count = new_count
            record.attrs.version += 1
            self._write_metadata_replicas(record)

    def _delete_tail_blocks(self, inode: int, new_count: int,
                            known_old_count: int) -> None:
        """Remove blocks past the new end, sweeping past stale counts."""
        victims = []
        index = new_count
        while index < known_old_count or self._exists(
                block_blob_id(inode, index)):
            victims.append(block_blob_id(inode, index))
            index += 1
        self._delete_many(victims)

    # ------------------------------------------------------------------ create

    def _require_dir_write(self, node: ResolvedNode, path: str) -> None:
        if node.attrs.ftype != DIRECTORY:
            raise NotADirectory(path)
        if node.cap_id not in _DIR_WRITE_CAPS:
            raise PermissionDenied(
                f"{path}: modifying a directory requires write+exec "
                f"(CAP {node.cap_id})")

    def _validate_mode(self, mode: int, ftype: str,
                       acl: tuple[AclEntry, ...] = ()) -> None:
        for shift in (6, 3, 0):
            cap_for_bits((mode >> shift) & 0o7, ftype)  # raises if bad
        for entry in acl:
            cap_for_bits(entry.bits, ftype)

    def _write_metadata_replicas(self, record: ObjectRecord) -> None:
        self._lease_for_write(record.attrs.inode)
        scheme = self.volume.scheme
        attrs = record.attrs
        owner_selector = scheme.owner_selector(attrs)
        blobs = []
        for selector in scheme.selectors(attrs):
            cap = scheme.cap_for_selector(attrs, selector)
            blob = record.metadata_blob(self.provider, selector, cap,
                                        selector == owner_selector)
            blobs.append((meta_blob(attrs.inode, selector), blob))
        self._put_many(blobs)
        self.cache.invalidate_prefix(("meta", attrs.inode))

    def _write_empty_tables(self, record: ObjectRecord) -> None:
        attrs = record.attrs
        blobs = []
        for selector in self.volume.scheme.selectors(attrs):
            style = self.volume.table_style(attrs, selector)
            if style == VIEW_NONE:
                continue
            dek = record.table_deks[selector]
            view = TableView.build(style, [], provider=self.provider,
                                   table_dek=dek)
            context = bind_context("table", attrs.inode, selector)
            blob = seal_and_sign(self.provider, dek, record.dsk, context,
                                 view.to_bytes())
            blobs.append((table_blob_id(attrs.inode, selector), blob))
            if selector == self.volume.scheme.owner_selector(attrs):
                self._cache_table(attrs.inode, selector, view, len(blob))
        self._put_many(blobs)

    def _entry_for_selector(self, parent_attrs: MetadataAttrs,
                            child_record: ObjectRecord,
                            parent_selector: str, name: str) -> DirEntry:
        kind, child_selector = self.volume.scheme.child_pointer(
            parent_attrs, child_record.attrs, parent_selector)
        if kind == DIRECT:
            pointer = DirPointer(
                selector=child_selector,
                mek=child_record.selector_meks[child_selector],
                mvk=child_record.mvk.to_bytes())
            return DirEntry(name=name, inode=child_record.attrs.inode,
                            kind=DIRECT, pointer=pointer)
        return DirEntry(name=name, inode=child_record.attrs.inode, kind=kind)

    def _update_parent_tables(self, parent: ResolvedNode, mutate) -> None:
        """Rewrite every view of the parent's table through ``mutate``.

        ``mutate(view, selector, dek)`` edits one view in place.  Requires
        the parent write CAP (table DEK map + DSK), which is how the
        cryptography enforces the *nix w+x requirement.
        """
        self._lease_for_write(parent.inode)
        scheme = self.volume.scheme
        attrs = parent.attrs
        dsk = parent.view.require_dsk()
        table_deks = parent.view.table_deks
        if not table_deks:
            raise PermissionDenied(
                f"inode {parent.inode}: write CAP carries no table keys")
        outgoing: list = []
        for selector in scheme.selectors(attrs):
            if self.volume.table_style(attrs, selector) == VIEW_NONE:
                continue
            dek = table_deks.get(selector)
            if dek is None:
                raise PermissionDenied(
                    f"inode {parent.inode}: missing table key for "
                    f"{selector!r}")
            context = bind_context("table", attrs.inode, selector)
            view = self._cached_table(attrs.inode, selector)
            if view is None:
                blob = self._get(table_blob_id(attrs.inode, selector))
                payload = open_verified(self.provider, dek,
                                        parent.view.require_dvk(),
                                        context, blob)
                view = TableView.from_bytes(payload)
            mutate(view, selector, dek)
            new_blob = seal_and_sign(self.provider, dek, dsk, context,
                                     view.to_bytes())
            outgoing.append((table_blob_id(attrs.inode, selector),
                             new_blob))
            # Write-through: the client just produced this view, no
            # need to re-fetch and re-verify its own write.  Under the
            # verified cache this also drops the directory's listing.
            self._cache_table(attrs.inode, selector, view, len(new_blob))
        self._put_many(outgoing)

    def _write_lockboxes(self, record: ObjectRecord) -> None:
        scheme = self.volume.scheme
        for user_id, selector in scheme.lockbox_map(record.attrs).items():
            public = self.volume.registry.directory.user_key(user_id)
            payload = lockbox_payload(selector,
                                      record.selector_meks[selector],
                                      record.mvk.to_bytes())
            self._put(lockbox_blob(record.attrs.inode, user_id),
                      self.provider.pk_encrypt(public, payload))

    @_mutating("create")
    def _create(self, path: str, mode: int, ftype: str,
                group: str | None, acl: tuple[AclEntry, ...]) -> Stat:
        self._charge_other()
        parent, name = self._resolve_parent(path)
        self._require_dir_write(parent, path)
        self._validate_mode(mode, ftype, acl)
        table = self._fetch_table(parent)
        if name in table:
            raise FileExists(path)
        inode = self.volume.allocator.allocate()
        attrs = MetadataAttrs(
            inode=inode, ftype=ftype, owner=self.agent.user_id,
            group=group or parent.attrs.group, mode=mode, acl=acl)
        scheme = self.volume.scheme
        record = ObjectRecord.create(attrs, scheme.selectors(attrs),
                                     self.volume.signature_prime_bits)
        self._write_metadata_replicas(record)
        if ftype == DIRECTORY:
            self._write_empty_tables(record)
        if self.config.metadata_cache:
            # Write-through: the creator will almost always touch the new
            # object next (write/readdir); no need to re-fetch its own
            # freshly uploaded replica.
            owner_selector = scheme.owner_selector(attrs)
            cap = scheme.cap_for_selector(attrs, owner_selector)
            view = record.view_for(owner_selector, cap, True)
            self._cache_view(inode, owner_selector, view,
                             len(view.to_bytes()))

        split_seen = False

        def add_row(view: TableView, selector: str, dek: bytes) -> None:
            nonlocal split_seen
            entry = self._entry_for_selector(parent.attrs, record,
                                             selector, name)
            split_seen = split_seen or entry.kind == SPLIT
            view.add(entry, provider=self.provider, table_dek=dek)

        self._update_parent_tables(parent, add_row)
        if split_seen or attrs.acl:
            self._write_lockboxes(record)
        return Stat.from_attrs(attrs)

    @traced("mknod")
    def mknod(self, path: str, mode: int = 0o644,
              group: str | None = None,
              acl: tuple[AclEntry, ...] = ()) -> Stat:
        """Create an empty file (paper Fig. 8's mknod)."""
        return self._create(path, mode, FILE, group, acl)

    @traced("mkdir")
    def mkdir(self, path: str, mode: int = 0o755,
              group: str | None = None,
              acl: tuple[AclEntry, ...] = ()) -> Stat:
        """Create a directory with all its CAP replicas."""
        return self._create(path, mode, DIRECTORY, group, acl)

    @traced("create_file")
    @_mutating("create_file")
    def create_file(self, path: str, data: bytes = b"",
                    mode: int = 0o644, group: str | None = None) -> Stat:
        """mknod + write + close in one call."""
        stat = self.mknod(path, mode, group)
        if data:
            self.write_file(path, data)
        return stat

    # ------------------------------------------------------------------ remove

    def _delete_object_blobs(self, attrs: MetadataAttrs) -> None:
        self._lease_for_write(attrs.inode)
        scheme = self.volume.scheme
        victims = []
        for selector in scheme.selectors(attrs):
            victims.append(meta_blob(attrs.inode, selector))
            if attrs.ftype == DIRECTORY:
                victims.append(table_blob_id(attrs.inode, selector))
        if attrs.ftype != DIRECTORY:
            index = 0
            while (index < max(attrs.block_count, 1)
                   or self._exists(
                       block_blob_id(attrs.inode, index))):
                victims.append(block_blob_id(attrs.inode, index))
                index += 1
        if attrs.acl or scheme.supports_splits():
            for user_id in scheme.lockbox_map(attrs):
                victims.append(lockbox_blob(attrs.inode, user_id))
        self._delete_many(victims)
        self._invalidate(attrs.inode)
        self.freshness.forget(attrs.inode)

    @traced("unlink")
    @_mutating("unlink")
    def unlink(self, path: str) -> None:
        """Remove a file or symlink: drop its rows from the parent views.

        Blobs are reclaimed when the last link goes (hard-linked objects
        survive with a decremented link count; only the owner can update
        the count, so a non-owner unlink of a multi-linked file leaves
        the stored count stale -- *nix-over-untrusted-storage tradeoff).
        """
        self._charge_other()
        parent, name = self._resolve_parent(path)
        self._require_dir_write(parent, path)
        child = self._lookup_child(parent, name)
        if child.attrs.ftype == DIRECTORY:
            raise IsADirectory(path)
        self._update_parent_tables(
            parent, lambda view, sel, dek: view.remove(
                name, provider=self.provider, table_dek=dek))
        if child.attrs.nlink > 1:
            if child.view.is_owner_view:
                record = ObjectRecord.from_owner_view(child.view,
                                                      child.mvk)
                record.attrs.nlink -= 1
                record.attrs.version += 1
                self._write_metadata_replicas(record)
            return
        self._delete_object_blobs(child.attrs)

    @traced("rmdir")
    @_mutating("rmdir")
    def rmdir(self, path: str) -> None:
        self._charge_other()
        parent, name = self._resolve_parent(path)
        self._require_dir_write(parent, path)
        child = self._lookup_child(parent, name)
        if child.attrs.ftype != DIRECTORY:
            raise NotADirectory(path)
        try:
            table = self._fetch_table(child)
        except CryptoError:
            raise PermissionDenied(
                f"{path}: cannot verify emptiness without read access"
            ) from None
        if table.entry_count():
            raise DirectoryNotEmpty(path)
        self._update_parent_tables(
            parent, lambda view, sel, dek: view.remove(
                name, provider=self.provider, table_dek=dek))
        self._delete_object_blobs(child.attrs)

    @traced("rename")
    @_mutating("rename")
    def rename(self, old_path: str, new_path: str) -> None:
        """Move/rename: child keys are untouched, only rows move."""
        self._charge_other()
        old_parent, old_name = self._resolve_parent(old_path)
        new_parent, new_name = self._resolve_parent(new_path)
        self._require_dir_write(old_parent, old_path)
        self._require_dir_write(new_parent, new_path)
        child = self._lookup_child(old_parent, old_name)
        new_table = self._fetch_table(new_parent)
        if new_name in new_table:
            raise FileExists(new_path)
        record = self._child_record_for_rows(child)

        def add_row(view: TableView, selector: str, dek: bytes) -> None:
            entry = self._entry_for_selector(new_parent.attrs, record,
                                             selector, new_name)
            view.add(entry, provider=self.provider, table_dek=dek)

        self._update_parent_tables(new_parent, add_row)
        self._update_parent_tables(
            old_parent, lambda view, sel, dek: view.remove(
                old_name, provider=self.provider, table_dek=dek))

    def _child_record_for_rows(self, child: ResolvedNode) -> ObjectRecord:
        """A record sufficient to mint parent rows for ``child``.

        Owners reconstruct the full record.  Non-owner writers renaming a
        child can still mint rows for selectors whose MEK they can learn
        -- which in general they cannot, so rename of objects you do not
        own requires the owner view (documented limitation; plain *nix
        has the same flavour with sticky directories).
        """
        return ObjectRecord.from_owner_view(child.view, child.mvk)

    # ------------------------------------------------------------------ chmod

    def _is_revocation(self, old_attrs: MetadataAttrs,
                       new_attrs: MetadataAttrs) -> bool:
        """Did any permission class lose read or write ability?"""
        scheme = self.volume.scheme
        old_map = {s: scheme.cap_for_selector(old_attrs, s)
                   for s in scheme.selectors(old_attrs)}
        new_map = {s: scheme.cap_for_selector(new_attrs, s)
                   for s in scheme.selectors(new_attrs)}
        for selector, old_cap in old_map.items():
            new_cap = new_map.get(selector)
            if new_cap is None:
                if old_cap.dek or old_cap.dsk:
                    return True
                continue
            if (old_cap.dek and not new_cap.dek) or (
                    old_cap.dsk and not new_cap.dsk):
                return True
        return False

    def _reencrypt_data(self, record: ObjectRecord, node: ResolvedNode,
                        old_attrs: MetadataAttrs | None = None) -> None:
        """Re-encrypt a file's blocks (or a dir's tables) under new keys.

        ``node`` still carries the *old* view (old DEK), so the content is
        readable; ``record`` carries the new keys.  ``old_attrs`` matters
        for chown under Scheme-1, where the owner's management selector
        itself changes with the owner.
        """
        attrs = record.attrs
        if attrs.ftype != DIRECTORY:
            content, _ = self._read_blocks(node)
            blocks = self._split_blocks(content)
            for index, block in enumerate(blocks):
                payload = block
                if index == 0:
                    payload = len(blocks).to_bytes(4, "big") + block
                context = bind_context("data", attrs.inode, f"b{index}")
                blob = seal_and_sign(self.provider, record.dek, record.dsk,
                                     context, payload)
                self._put(block_blob_id(attrs.inode, index), blob)
        else:
            self._rebuild_tables(record, node, old_attrs or attrs)
        self._invalidate(attrs.inode)

    def _rebuild_tables(self, record: ObjectRecord, node: ResolvedNode,
                        old_attrs: MetadataAttrs) -> None:
        """Rewrite every table view of a directory under new keys/styles.

        Each view's rows come, in order of preference, from:

        1. that view's *own* previous rows (a rekey or style change never
           alters which child replica a chain points at);
        2. for views that did not exist before (a chain upgraded from the
           zero CAP) -- re-derived pointers, which requires the child's
           owner replica and therefore works when the caller owns the
           child; otherwise the row is written as a SPLIT marker, to be
           resolved through lockboxes once the child's owner refreshes
           them.

        The canonical (owner, always-FULL) view supplies the name/inode
        census; crucially, its per-chain key material is *never* copied
        into other views -- that would hand the owner's MEKs to every
        reader.
        """
        attrs = record.attrs
        scheme = self.volume.scheme
        old_record = ObjectRecord.from_owner_view(node.view, node.mvk)
        old_owner_sel = scheme.owner_selector(old_attrs)

        def fetch_old_view(selector: str, dek: bytes) -> TableView:
            blob = self._get(table_blob_id(attrs.inode, selector))
            context = bind_context("table", attrs.inode, selector)
            payload = open_verified(self.provider, dek, old_record.dvk,
                                    context, blob)
            return TableView.from_bytes(payload)

        canonical = fetch_old_view(old_owner_sel,
                                   old_record.table_deks[old_owner_sel])
        names = sorted(canonical.entries)
        child_records: dict[str, ObjectRecord | None] = {}

        def child_record_for(name: str) -> ObjectRecord | None:
            """Child's full record, fetchable only if the caller owns it."""
            if name in child_records:
                return child_records[name]
            row = canonical.entries[name]
            result = None
            if row.kind == DIRECT and row.pointer is not None:
                child_owner_sel = row.pointer.selector
                try:
                    mvk = esign.VerificationKey.from_bytes(row.pointer.mvk)
                    child_view = self._fetch_view(
                        row.inode, child_owner_sel, row.pointer.mek, mvk)
                    if child_view.is_owner_view:
                        result = ObjectRecord.from_owner_view(child_view,
                                                              mvk)
                except (PermissionDenied, CryptoError):
                    result = None
            child_records[name] = result
            return result

        outgoing = []
        for selector in scheme.selectors(attrs):
            style = self.volume.table_style(attrs, selector)
            if style == VIEW_NONE:
                continue
            old_style = (self.volume.table_style(old_attrs, selector)
                         if selector in scheme.selectors(old_attrs)
                         else VIEW_NONE)
            old_view = None
            if old_style not in (VIEW_NONE,):
                old_dek = old_record.table_deks.get(selector)
                if old_dek is not None:
                    try:
                        old_view = fetch_old_view(selector, old_dek)
                    except (BlobNotFound, CryptoError):
                        old_view = None

            dek = record.table_deks[selector]
            view = TableView.build(style, [], provider=self.provider,
                                   table_dek=dek)
            for name in names:
                entry = self._recover_row(name, canonical, old_view,
                                          old_record, selector)
                if entry is None:
                    entry = self._derive_row(name, canonical,
                                             child_record_for, selector,
                                             attrs)
                view.add(entry, provider=self.provider, table_dek=dek)
            context = bind_context("table", attrs.inode, selector)
            blob = seal_and_sign(self.provider, dek, record.dsk, context,
                                 view.to_bytes())
            outgoing.append((table_blob_id(attrs.inode, selector), blob))
        self._put_many(outgoing)

    def _recover_row(self, name: str, canonical: TableView,
                     old_view: TableView | None, old_record: ObjectRecord,
                     selector: str) -> DirEntry | None:
        """Extract this view's previous row for ``name``, if recoverable."""
        if old_view is None:
            return None
        if old_view.style == "full":
            return old_view.entries.get(name)
        if old_view.style == "hidden":
            old_dek = old_record.table_deks.get(selector)
            if old_dek is None:
                return None
            try:
                return old_view.lookup(name, provider=self.provider,
                                       table_dek=old_dek)
            except (FileNotFound, CryptoError):
                return None
        return None  # names-only views carry no pointers

    def _derive_row(self, name: str, canonical: TableView,
                    child_record_for, selector: str,
                    parent_attrs: MetadataAttrs) -> DirEntry:
        """Mint a fresh row for a chain that had no previous view."""
        census_row = canonical.entries[name]
        child = child_record_for(name)
        if child is None:
            # Caller does not own the child: its per-chain MEKs are out
            # of reach, so readers must go through lockboxes.
            return DirEntry(name=name, inode=census_row.inode, kind=SPLIT)
        return self._entry_for_selector(parent_attrs, child, selector,
                                        name)

    @traced("chmod")
    @_mutating("chmod")
    def chmod(self, path: str, mode: int) -> Stat:
        """Change permissions (owner only -- MSK is the capability).

        Creates/destroys CAP replicas as needed; on revocation the
        prototype's immediate mode re-encrypts the data under fresh keys
        right away, the lazy mode defers to the next write (paper
        section IV discusses both).
        """
        self._charge_other()
        node = self._resolve(path)
        self._validate_mode(mode, node.attrs.ftype, node.attrs.acl)
        record = ObjectRecord.from_owner_view(node.view, node.mvk)
        old_attrs = record.attrs.copy()
        record.attrs.mode = mode
        record.attrs.version += 1
        revoked = self._is_revocation(old_attrs, record.attrs)
        scheme = self.volume.scheme
        new_selectors = scheme.selectors(record.attrs)
        record.ensure_selector_keys(new_selectors)
        dropped = record.drop_selectors(new_selectors)
        if revoked:
            if self.config.immediate_revocation:
                record.rekey_data()
                self._reencrypt_data(record, node, old_attrs)
            else:
                record.needs_rekey = True
        elif record.attrs.ftype == DIRECTORY and self._table_layout_changed(
                old_attrs, record.attrs):
            # View styles or the view set changed (e.g. o--x -> o-rx):
            # every table view is rebuilt from the management copy.
            self._reencrypt_data(record, node, old_attrs)
        self._write_metadata_replicas(record)
        for selector in dropped:
            self._delete(meta_blob(record.attrs.inode, selector))
            if record.attrs.ftype == DIRECTORY:
                self._delete(table_blob_id(record.attrs.inode, selector))
        self._refresh_parent_pointers(path, record, old_attrs)
        return Stat.from_attrs(record.attrs)

    def _table_layout_changed(self, old_attrs: MetadataAttrs,
                              new_attrs: MetadataAttrs) -> bool:
        """Did the set of table views, or any view's style, change?"""
        scheme = self.volume.scheme
        old_styles = {s: self.volume.table_style(old_attrs, s)
                      for s in scheme.selectors(old_attrs)}
        new_styles = {s: self.volume.table_style(new_attrs, s)
                      for s in scheme.selectors(new_attrs)}
        return old_styles != new_styles

    def _refresh_parent_pointers(self, path: str, record: ObjectRecord,
                                 old_attrs: MetadataAttrs) -> None:
        """Update parent rows / superblocks if the pointer structure moved.

        Pointers embed the child's MEK and MVK, so rows refresh whenever
        (a) the scheme maps any parent chain to a different child
        selector/kind than before, or (b) the child's metadata keys
        rotated.  A plain permission tweak that keeps structure and keys
        touches no parent state -- the paper's Fig. 8 chmod cost.
        """
        scheme = self.volume.scheme
        sb = self._require_mounted()
        if record.attrs.inode == sb.root_inode:
            self.volume.write_superblocks(self.provider, record)
            self.volume._root_record = record
            self.mount()  # refresh our own superblock view
            return
        parent_path, name = fspath.parent_and_name(path)
        parent = self._resolve(parent_path)

        old_pointers = {
            s: scheme.child_pointer(parent.attrs, old_attrs, s)
            for s in scheme.selectors(parent.attrs)}
        new_pointers = {
            s: scheme.child_pointer(parent.attrs, record.attrs, s)
            for s in scheme.selectors(parent.attrs)}
        if (old_pointers != new_pointers
                or self._pointer_keys_changed(record, parent, name)):

            def refresh_row(view: TableView, selector: str,
                            dek: bytes) -> None:
                entry = self._entry_for_selector(parent.attrs, record,
                                                 selector, name)
                view.remove(name, provider=self.provider, table_dek=dek)
                view.add(entry, provider=self.provider, table_dek=dek)

            self._update_parent_tables(parent, refresh_row)
        if any(kind == SPLIT for kind, _ in new_pointers.values()) or (
                record.attrs.acl):
            self._write_lockboxes(record)

    def _pointer_keys_changed(self, record: ObjectRecord,
                              parent: ResolvedNode, name: str) -> bool:
        """Do the parent's current rows still carry the right MEK/MVK?"""
        table = self._fetch_table(parent)
        if table.style != "full":
            return True
        entry = table.entries.get(name)
        if entry is None or entry.pointer is None:
            return True
        expected_mek = record.selector_meks.get(entry.pointer.selector)
        return (expected_mek != entry.pointer.mek
                or entry.pointer.mvk != record.mvk.to_bytes())

    # ------------------------------------------------------------------ chown / acl

    @traced("chown")
    @_mutating("chown")
    def chown(self, path: str, new_owner: str,
              new_group: str | None = None) -> Stat:
        """Transfer ownership: full rekey (the old owner knew every key)."""
        self._charge_other()
        node = self._resolve(path)
        record = ObjectRecord.from_owner_view(node.view, node.mvk)
        old_attrs = record.attrs.copy()
        self.volume.registry.user(new_owner)  # must exist
        record.attrs.owner = new_owner
        if new_group is not None:
            record.attrs.group = new_group
        record.attrs.version += 1
        new_selectors = self.volume.scheme.selectors(record.attrs)
        record.ensure_selector_keys(new_selectors)
        dropped = record.drop_selectors(new_selectors)
        record.rekey_data()
        record.rekey_metadata()
        self._reencrypt_data(record, node, old_attrs)
        self._write_metadata_replicas(record)
        for selector in dropped:
            self._delete(meta_blob(record.attrs.inode, selector))
            if record.attrs.ftype == DIRECTORY:
                self._delete(table_blob_id(record.attrs.inode, selector))
        self._refresh_parent_pointers(path, record, old_attrs)
        return Stat.from_attrs(record.attrs)

    @traced("set_acl")
    @_mutating("set_acl")
    def set_acl(self, path: str, entries: tuple[AclEntry, ...]) -> Stat:
        """Replace the POSIX-ACL user entries (owner only).

        ACL grants are delivered through public-key lockboxes -- the
        paper's split-point machinery (section III-D).
        """
        self._charge_other()
        node = self._resolve(path)
        for entry in entries:
            self.volume.registry.user(entry.user_id)
        self._validate_mode(node.attrs.mode, node.attrs.ftype, entries)
        record = ObjectRecord.from_owner_view(node.view, node.mvk)
        old_attrs = record.attrs.copy()
        revoked = any(e.user_id not in {n.user_id for n in entries}
                      for e in old_attrs.acl)
        record.attrs.acl = tuple(entries)
        record.attrs.version += 1
        new_selectors = self.volume.scheme.selectors(record.attrs)
        record.ensure_selector_keys(new_selectors)
        record.drop_selectors(new_selectors)
        if revoked:
            if self.config.immediate_revocation:
                record.rekey_data()
                self._reencrypt_data(record, node, old_attrs)
            else:
                record.needs_rekey = True
        elif record.attrs.ftype == DIRECTORY and self._table_layout_changed(
                old_attrs, record.attrs):
            self._reencrypt_data(record, node, old_attrs)
        self._write_metadata_replicas(record)
        removed_users = ({e.user_id for e in old_attrs.acl}
                         - {e.user_id for e in entries})
        for user_id in removed_users:
            self._delete(lockbox_blob(record.attrs.inode, user_id))
        self._refresh_parent_pointers(path, record, old_attrs)
        return Stat.from_attrs(record.attrs)

    @traced("rekey")
    @_mutating("rekey")
    def rekey(self, path: str) -> Stat:
        """Rotate every key of an object (owner only).

        Used after group-membership revocation: departed members knew the
        group replica's MEK, so metadata keys rotate and parent pointers
        are refreshed.
        """
        self._charge_other()
        node = self._resolve(path)
        record = ObjectRecord.from_owner_view(node.view, node.mvk)
        old_attrs = record.attrs.copy()
        record.attrs.version += 1
        record.rekey_data()
        record.rekey_metadata()
        self._reencrypt_data(record, node)
        self._write_metadata_replicas(record)
        self._refresh_parent_pointers(path, record, old_attrs)
        return Stat.from_attrs(record.attrs)
