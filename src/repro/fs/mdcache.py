"""Verified metadata cache + pre-materialized listings.

Path resolution is the client's hottest path: the Andrew benchmark
spends 44% of its wall-clock re-fetching and re-verifying directory
tables and metadata replicas it has already seen (BENCH_5/BENCH_6,
``repro profile --format resolve``).  The plain :class:`~.cache.LruCache`
cannot close that gap because the close-to-open consistency model drops
every metadata entry at each open boundary -- the conservative choice
when the only coherence signal is "re-fetch and re-verify".

SHAROES already has stronger signals.  Every metadata replica carries a
signed, monotonically-increasing version; the
:class:`~.freshness.FreshnessMonitor` pins the highest version this
client ever verified; leases advance a fencing epoch whenever another
writer may have touched an inode.  This module layers a **verified
metadata cache** on those signals (the same insight UPSS applies to its
mutable-fixed-point metadata over an immutable encrypted block store):

* entries hold *decrypted, signature-verified* views only -- raw
  untrusted bytes never enter (the single-consume readahead buffer is
  verified at consumption time, before any of its bytes are trusted);
* each metadata entry is keyed by ``(inode, selector)`` and pinned to
  the **version** it was verified at; an entry whose version falls
  behind the freshness monitor's high watermark is discarded instead of
  served (``stale_rejects``);
* coherence is event-driven, not fetch-driven: a close-to-open
  ``revalidate()`` keeps entries warm, while lease-epoch advancement
  (fresh acquire, takeover, renewal loss), local deletes/rekeys, and
  unmount invalidate;
* storage is the client's existing byte-budgeted LRU, so metadata
  views, directory tables, pre-materialized listings, data blocks and
  the speculative readahead buffer share **one** coherence surface and
  one eviction policy -- ``invalidate_inode`` is the single choke point
  every trigger funnels through.

On top of the table cache sit **pre-materialized listings** (Tiger
Cache's pre-computed permission sets, scaled down to one principal): a
``readdir`` on a warm directory returns the previously computed name
tuple plus this principal's already-evaluated list/traverse/write
verdicts -- O(1) and zero SSP round trips.

What the cache may and may not trust is documented in docs/CACHING.md;
the cached-vs-uncached differential suite and the coherence matrix in
``tests/test_mdcache_differential.py`` are the proof obligations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import LruCache
from .dirtable import TableView
from .freshness import FreshnessMonitor
from .metadata import MetadataView

#: CAP ids that allow traversing a directory (the *nix x bit).
TRAVERSE_CAPS = frozenset({"drx", "drwx", "dx"})
#: CAP ids that allow listing a directory (the *nix r bit).
LIST_CAPS = frozenset({"dr", "drx", "drwx"})
#: CAP ids that allow modifying a directory (w and x bits).
DIR_WRITE_CAPS = frozenset({"drwx"})


@dataclass(frozen=True)
class Listing:
    """A pre-materialized directory listing for one principal.

    Built once per (directory, selector) from a verified table view and
    the principal's CAP; served on every subsequent ``readdir`` without
    touching the table again.  The permission verdicts are the Tiger
    Cache idea -- evaluate the principal's rights when the listing is
    materialized, then answer permission checks from the cached set.
    """

    #: child names in ``list_names()`` order, ready to return from
    #: ``readdir`` byte-for-byte identically to the uncached path.
    names: tuple[str, ...]
    #: the CAP the listing was evaluated under; a CAP change rewrites
    #: the metadata replica (new version), which invalidates the entry.
    cap_id: str
    can_list: bool
    can_traverse: bool
    can_write: bool

    @classmethod
    def build(cls, table: TableView, cap_id: str) -> "Listing":
        return cls(names=tuple(table.list_names()),
                   cap_id=cap_id,
                   can_list=cap_id in LIST_CAPS,
                   can_traverse=cap_id in TRAVERSE_CAPS,
                   can_write=cap_id in DIR_WRITE_CAPS)


@dataclass
class _VerifiedView:
    """A decrypted metadata view pinned to its verified version."""

    view: MetadataView
    version: int


class VerifiedMetadataCache:
    """Coherence manager for verified metadata over a shared LRU store.

    The cache owns no storage of its own: entries live in the client's
    byte-budgeted :class:`~.cache.LruCache` under ``("meta", ...)``,
    ``("table", ...)`` and ``("listing", ...)`` keys, next to the data
    blocks and the readahead buffer.  This class decides *when an entry
    may be trusted* -- version pinning against the freshness monitor,
    and the event-driven invalidation documented in docs/CACHING.md.
    """

    def __init__(self, store: LruCache, freshness: FreshnessMonitor):
        self.store = store
        self.freshness = freshness
        #: coherence counters, exported as ``client.mdcache.*``.
        self.hits = 0
        self.misses = 0
        self.listing_hits = 0
        self.listing_builds = 0
        #: close-to-open boundaries crossed with entries kept warm.
        self.revalidations = 0
        #: per-inode invalidation events (lease churn, deletes, rekeys).
        self.invalidations = 0
        #: entries discarded because their pinned version fell behind
        #: the freshness monitor's high watermark -- a stale entry is
        #: *never* served, it is re-fetched and re-verified.
        self.stale_rejects = 0
        #: verified payloads not cached because the transport served
        #: them from its degraded last-known-good fallback.
        self.degraded_skips = 0

    # ---------------------------------------------------------- views

    def get_view(self, inode: int, selector: str) -> MetadataView | None:
        entry = self.store.get(("meta", inode, selector))
        if entry is None:
            self.misses += 1
            return None
        watermark = self.freshness.high_watermark(inode)
        if watermark is not None and entry.version < watermark:
            # Another fetch path (a different selector, a peer's
            # statement) proved a newer version exists: trusting this
            # entry would serve a rollback this client can already
            # refute.  Drop it and make the caller re-verify.
            self.store.invalidate(("meta", inode, selector))
            self.stale_rejects += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry.view

    def put_view(self, inode: int, selector: str, view: MetadataView,
                 size_bytes: int) -> None:
        self.store.put(("meta", inode, selector),
                       _VerifiedView(view, view.attrs.version),
                       size_bytes)

    # --------------------------------------------------------- tables

    def get_table(self, inode: int, selector: str) -> TableView | None:
        table = self.store.get(("table", inode, selector))
        if table is None:
            self.misses += 1
            return None
        self.hits += 1
        return table

    def put_table(self, inode: int, selector: str, table: TableView,
                  size_bytes: int) -> None:
        self.store.put(("table", inode, selector), table, size_bytes)
        # The old listing (if any) no longer matches the table; it is
        # rebuilt lazily from this cached view -- still zero round trips.
        self.store.invalidate(("listing", inode, selector))

    # ------------------------------------------------------- listings

    def get_listing(self, inode: int, selector: str) -> Listing | None:
        listing = self.store.get(("listing", inode, selector))
        if listing is not None:
            self.listing_hits += 1
        return listing

    def put_listing(self, inode: int, selector: str, table: TableView,
                    cap_id: str) -> Listing:
        listing = Listing.build(table, cap_id)
        size = sum(len(name) for name in listing.names) + len(cap_id)
        self.store.put(("listing", inode, selector), listing, size)
        self.listing_builds += 1
        return listing

    # ------------------------------------------------------ coherence

    def revalidate(self) -> None:
        """Close-to-open boundary crossed.

        The legacy model drops every metadata entry here; the verified
        cache keeps them -- entries were signature-verified on entry,
        version-pinned against rollback, and every event that could have
        made them stale (lease churn, local mutation, unmount) funnels
        through :meth:`invalidate_inode` or :meth:`clear`.  See
        docs/CACHING.md for the staleness bound this implies.
        """
        self.revalidations += 1

    def invalidate_inode(self, inode: int) -> None:
        """Another writer may have touched ``inode``: drop everything.

        The raw readahead buffer is keyed by blob id, not inode, so it
        cannot be dropped per-inode; invalidation means "a concurrent
        writer exists", which is exactly when speculative bytes must not
        survive either -- one coherence surface, one rule.
        """
        self.store.invalidate_prefix(("meta", inode))
        self.store.invalidate_prefix(("table", inode))
        self.store.invalidate_prefix(("listing", inode))
        self.store.invalidate_prefix(("data", inode))
        self.store.invalidate_prefix(("raw",))
        self.invalidations += 1

    def clear(self) -> None:
        self.store.clear()

    # -------------------------------------------------------- metrics

    def snapshot(self) -> dict[str, float]:
        """Pull-based metrics source (``client.mdcache.*``)."""
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "listing_hits": float(self.listing_hits),
            "listing_builds": float(self.listing_builds),
            "revalidations": float(self.revalidations),
            "invalidations": float(self.invalidations),
            "stale_rejects": float(self.stale_rejects),
            "degraded_skips": float(self.degraded_skips),
        }
