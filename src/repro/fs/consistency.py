"""Fork-consistency log: the paper's SUNDR integration (section VI).

"Their [SUNDR's] work is a complimentary contribution and we are
currently integrating their consistency mechanisms with the SHAROES
prototype."  This module provides that integration in simplified,
SUNDR-inspired form.

The local :class:`~repro.fs.freshness.FreshnessMonitor` catches rollbacks
against a client's *own* history.  What it cannot catch is a **fork**: the
SSP showing client A one consistent history and client B another.  SUNDR's
answer is signed *version statements*: every client periodically signs
what it has observed and publishes the statement; clients verify each
other's statements, so the SSP can only keep a fork alive by partitioning
the statement log forever -- and any cross-read exposes it.

Protocol implemented here:

* every client keeps a hash-chained sequence of signed
  :class:`VersionStatement`s.  A statement carries:

  - the publisher's ``sequence`` and the digest of its previous statement
    (its own chain must be linear);
  - ``observations``: {inode: version} high-water marks the publisher
    *knows* (verified itself, or learned from a verified peer statement);
  - ``seen``: the latest sequence number the publisher has verified from
    each peer -- the causal vector that makes cross-client checks sound.

* on :meth:`sync`, a client fetches peers' latest statements and enforces:

  1. signature validity and slot/author agreement;
  2. per-peer linearity: sequences never regress, and a re-served
     sequence must be byte-identical (no equivocation);
  3. **causal consistency**: if a peer's statement declares it has seen
     my statement ``s``, then every version I asserted in or before
     ``s`` must appear in the peer's observations at least as new.  A
     peer that merely *lags* (has not seen ``s``) is legal; a peer that
     acknowledges my history while contradicting it proves the SSP
     forked us.

Any violation raises :class:`ForkDetected`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import hashes, rsa
from ..crypto.provider import CryptoProvider
from ..errors import BlobNotFound, IntegrityError
from ..serialize import Reader, Writer
from ..storage.blobs import BlobId, principal_hash
from ..storage.server import StorageServer

VSL_KIND = "vsl"


class ForkDetected(IntegrityError):
    """The SSP has shown divergent histories to different clients."""


def statement_blob(user_id: str) -> BlobId:
    """Well-known location of a user's latest version statement."""
    return BlobId(kind=VSL_KIND, inode=0, selector=principal_hash(user_id))


@dataclass(frozen=True)
class VersionStatement:
    """One signed observation of filesystem state."""

    user_id: str
    sequence: int
    previous_digest: bytes
    #: {inode: version} high-water marks, sorted
    observations: tuple[tuple[int, int], ...]
    #: (peer user id, latest sequence verified from them), sorted
    seen: tuple[tuple[str, int], ...]
    #: highest journal intent sequence this client has *committed*
    #: (applied + truncated).  Binds the journal to the VSL: an SSP
    #: re-serving a stale committed journal at mount presents intents
    #: at or below this watermark, which recovery rejects as a
    #: rollback instead of silently re-replaying.
    journal_seq: int = 0
    signature: bytes = b""

    # -- encoding ------------------------------------------------------------

    def signed_payload(self) -> bytes:
        writer = Writer()
        writer.put_str(self.user_id)
        writer.put_int(self.sequence)
        writer.put_bytes(self.previous_digest)
        writer.put_int(len(self.observations))
        for inode, version in self.observations:
            writer.put_int(inode)
            writer.put_int(version)
        writer.put_int(len(self.seen))
        for peer, sequence in self.seen:
            writer.put_str(peer)
            writer.put_int(sequence)
        writer.put_int(self.journal_seq)
        return writer.getvalue()

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_bytes(self.signed_payload())
        writer.put_bytes(self.signature)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "VersionStatement":
        outer = Reader(raw)
        payload = outer.get_bytes()
        signature = outer.get_bytes()
        outer.expect_end()
        reader = Reader(payload)
        user_id = reader.get_str()
        sequence = reader.get_int()
        previous_digest = reader.get_bytes()
        observations = tuple(
            (reader.get_int(), reader.get_int())
            for _ in range(reader.get_int()))
        seen = tuple((reader.get_str(), reader.get_int())
                     for _ in range(reader.get_int()))
        journal_seq = reader.get_int()
        reader.expect_end()
        return cls(user_id=user_id, sequence=sequence,
                   previous_digest=previous_digest,
                   observations=observations, seen=seen,
                   journal_seq=journal_seq, signature=signature)

    def digest(self) -> bytes:
        return hashes.digest(self.signed_payload())

    def observed(self, inode: int) -> int | None:
        for candidate, version in self.observations:
            if candidate == inode:
                return version
        return None

    def seen_sequence(self, user_id: str) -> int:
        for peer, sequence in self.seen:
            if peer == user_id:
                return sequence
        return 0


class ConsistencyLog:
    """Client-side fork-consistency state for one user."""

    def __init__(self, user_id: str, private_key: rsa.PrivateKey,
                 directory, provider: CryptoProvider | None = None):
        """``directory`` maps user ids to RSA public keys (the registry's
        :class:`~repro.principals.registry.PublicKeyDirectory`)."""
        self.user_id = user_id
        self._private = private_key
        self._directory = directory
        self._provider = provider or CryptoProvider()
        self._sequence = 0
        self._previous_digest = b"\x00" * 32
        #: committed journal watermark published with every statement.
        self.journal_seq = 0
        #: inode -> highest version known (verified or learned)
        self.known_high: dict[int, int] = {}
        #: inode -> (my sequence when I first asserted it, version)
        self._asserted: dict[int, tuple[int, int]] = {}
        #: peer -> (sequence, digest) last accepted
        self._peer_state: dict[str, tuple[int, bytes]] = {}

    # -- recording local observations -----------------------------------------

    def observe(self, inode: int, version: int) -> None:
        """Record a version this client verified itself (e.g. wired to
        the freshness monitor's accepted fetches)."""
        if version > self.known_high.get(inode, 0):
            self.known_high[inode] = version

    def observe_journal(self, seq: int) -> None:
        """Record a committed (applied + truncated) intent sequence."""
        if seq > self.journal_seq:
            self.journal_seq = seq

    # -- publishing -----------------------------------------------------------

    def publish(self, server: StorageServer) -> VersionStatement:
        """Sign and upload this client's current observation statement."""
        observations = tuple(sorted(self.known_high.items()))
        seen = tuple(sorted((peer, state[0])
                            for peer, state in self._peer_state.items()))
        self._sequence += 1
        unsigned = VersionStatement(
            user_id=self.user_id, sequence=self._sequence,
            previous_digest=self._previous_digest,
            observations=observations, seen=seen,
            journal_seq=self.journal_seq)
        signature = rsa.sign(self._private, unsigned.signed_payload())
        statement = VersionStatement(
            user_id=unsigned.user_id, sequence=unsigned.sequence,
            previous_digest=unsigned.previous_digest,
            observations=unsigned.observations, seen=unsigned.seen,
            journal_seq=unsigned.journal_seq, signature=signature)
        server.put(statement_blob(self.user_id), statement.to_bytes())
        self._previous_digest = statement.digest()
        for inode, version in observations:
            current = self._asserted.get(inode)
            if current is None or current[1] < version:
                self._asserted[inode] = (self._sequence, version)
        return statement

    # -- resuming an existing chain -------------------------------------------

    def resume_from(self, server: StorageServer) -> VersionStatement | None:
        """Adopt this user's last published statement from the SSP.

        Called at mount, *before* journal recovery: verifies the
        statement in our own slot (our signature -- the SSP cannot forge
        one) and resumes its chain position, so a remounted client keeps
        publishing linearly instead of restarting at sequence 1 (which
        peers would reject as equivocation).  Returns the statement, or
        ``None`` if we never published.  The statement's ``journal_seq``
        is the committed watermark recovery checks stale journals
        against.  (An SSP serving an *older own statement* on first
        contact is SUNDR's residual first-contact gap -- peers detect it
        at the next cross-sync.)
        """
        try:
            raw = server.get(statement_blob(self.user_id))
        except BlobNotFound:
            return None
        statement = VersionStatement.from_bytes(raw)
        if statement.user_id != self.user_id:
            raise ForkDetected(
                f"statement in my slot claims author "
                f"{statement.user_id!r}")
        try:
            rsa.verify(self._directory.user_key(self.user_id),
                       statement.signed_payload(), statement.signature)
        except IntegrityError as exc:
            raise ForkDetected(
                f"{self.user_id}: invalid signature on my own "
                f"statement ({exc})") from exc
        self._sequence = statement.sequence
        self._previous_digest = statement.digest()
        self.journal_seq = max(self.journal_seq, statement.journal_seq)
        for inode, version in statement.observations:
            if version > self.known_high.get(inode, 0):
                self.known_high[inode] = version
        return statement

    # -- verification ------------------------------------------------------------

    def sync(self, server: StorageServer,
             peer_ids: list[str]) -> list[VersionStatement]:
        """Fetch, verify and fork-check every peer's latest statement.

        Accepted observations are merged into this client's known
        high-water marks (that is what makes the causal check bite on
        the *next* round of statements).
        """
        accepted = []
        for peer_id in peer_ids:
            if peer_id == self.user_id:
                continue
            try:
                raw = server.get(statement_blob(peer_id))
            except BlobNotFound:
                continue
            statement = VersionStatement.from_bytes(raw)
            self._verify(peer_id, statement)
            for inode, version in statement.observations:
                if version > self.known_high.get(inode, 0):
                    self.known_high[inode] = version
            self._peer_state[peer_id] = (statement.sequence,
                                         statement.digest())
            accepted.append(statement)
        return accepted

    def _verify(self, peer_id: str, statement: VersionStatement) -> None:
        if statement.user_id != peer_id:
            raise ForkDetected(
                f"statement in {peer_id!r}'s slot claims author "
                f"{statement.user_id!r}")
        public = self._directory.user_key(peer_id)
        try:
            rsa.verify(public, statement.signed_payload(),
                       statement.signature)
        except IntegrityError as exc:
            raise ForkDetected(
                f"{peer_id}: invalid statement signature ({exc})"
            ) from exc

        previous = self._peer_state.get(peer_id)
        if previous is not None:
            prev_seq, prev_digest = previous
            if statement.sequence < prev_seq:
                raise ForkDetected(
                    f"{peer_id}: statement sequence regressed "
                    f"({statement.sequence} < {prev_seq}) -- the SSP is "
                    f"serving a forked history")
            if (statement.sequence == prev_seq
                    and statement.digest() != prev_digest):
                raise ForkDetected(
                    f"{peer_id}: two statements share sequence "
                    f"{statement.sequence} (equivocation)")

        # Causal cross-check: the peer acknowledges my chain up to
        # seen_sequence(me); everything I asserted by then must be
        # reflected at least as new in the peer's observations.
        acked = statement.seen_sequence(self.user_id)
        if acked:
            for inode, (asserted_seq, version) in self._asserted.items():
                if asserted_seq > acked:
                    continue  # the peer legitimately has not seen it
                peer_version = statement.observed(inode)
                if peer_version is None or peer_version < version:
                    raise ForkDetected(
                        f"inode {inode}: {peer_id} acknowledged my "
                        f"statement {acked} (which asserted version "
                        f"{version}) yet reports "
                        f"{peer_version} -- divergent histories")
