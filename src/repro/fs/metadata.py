"""Metadata objects: attributes plus embedded keys (paper Figure 2).

A traditional metadata object holds attributes (inode, owner, group,
permissions, size) and a pointer to the data block.  SHAROES extends it
with key fields so that *metadata leads to data* also in the cryptographic
sense: DEK/DSK/DVK for the object's data block, plus the MSK for owners.

In this reproduction a metadata *replica* exists per selector (per user
under Scheme-1, per permission-class chain under Scheme-2) and carries
only the key fields its CAP grants -- that selective accessibility IS the
access control.  The owner's replica additionally carries the management
key maps (per-selector MEKs, per-selector table DEKs) needed to rebuild
every replica on chmod/chown/revocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..crypto import esign
from ..errors import KeyAccessError
from ..serialize import Reader, Writer
from .permissions import AclEntry, ObjectPerms


@dataclass
class MetadataAttrs:
    """Plain (non-key) attributes, present in every replica."""

    inode: int
    ftype: str  # "file" | "dir"
    owner: str
    group: str
    mode: int
    size: int = 0
    nlink: int = 1
    version: int = 1
    block_count: int = 0
    acl: tuple[AclEntry, ...] = ()

    def perms(self) -> ObjectPerms:
        return ObjectPerms(owner=self.owner, group=self.group,
                           mode=self.mode, ftype=self.ftype, acl=self.acl)

    def copy(self) -> "MetadataAttrs":
        return replace(self)

    # -- serialization -----------------------------------------------------

    def to_writer(self, writer: Writer) -> None:
        writer.put_int(self.inode)
        writer.put_str(self.ftype)
        writer.put_str(self.owner)
        writer.put_str(self.group)
        writer.put_int(self.mode)
        writer.put_int(self.size)
        writer.put_int(self.nlink)
        writer.put_int(self.version)
        writer.put_int(self.block_count)
        writer.put_int(len(self.acl))
        for entry in self.acl:
            writer.put_str(entry.user_id)
            writer.put_int(entry.bits)

    @classmethod
    def from_reader(cls, reader: Reader) -> "MetadataAttrs":
        inode = reader.get_int()
        ftype = reader.get_str()
        owner = reader.get_str()
        group = reader.get_str()
        mode = reader.get_int()
        size = reader.get_int()
        nlink = reader.get_int()
        version = reader.get_int()
        block_count = reader.get_int()
        acl = tuple(AclEntry(reader.get_str(), reader.get_int())
                    for _ in range(reader.get_int()))
        return cls(inode=inode, ftype=ftype, owner=owner, group=group,
                   mode=mode, size=size, nlink=nlink, version=version,
                   block_count=block_count, acl=acl)


def _put_key_map(writer: Writer, mapping: dict[str, bytes]) -> None:
    writer.put_int(len(mapping))
    for key in sorted(mapping):
        writer.put_str(key)
        writer.put_bytes(mapping[key])


def _get_key_map(reader: Reader) -> dict[str, bytes]:
    return {reader.get_str(): reader.get_bytes()
            for _ in range(reader.get_int())}


@dataclass
class MetadataView:
    """One decrypted metadata replica, as seen by its CAP's holders.

    Key fields are ``None`` when the CAP does not grant them -- accessing
    a missing key raises :class:`KeyAccessError`, the cryptographic
    equivalent of EACCES.
    """

    attrs: MetadataAttrs
    cap_id: str
    selector: str
    #: data encryption key: the file DEK, or this selector's table DEK
    dek: bytes | None = None
    dvk: esign.VerificationKey | None = None
    dsk: esign.SigningKey | None = None
    #: owner only: metadata signing key
    msk: esign.SigningKey | None = None
    #: owner only: per-selector metadata encryption keys
    selector_meks: dict[str, bytes] = field(default_factory=dict)
    #: directory writers/owner: per-selector table DEKs
    table_deks: dict[str, bytes] = field(default_factory=dict)
    #: lazy-revocation marker (owner view): data must be rekeyed on write
    needs_rekey: bool = False

    # -- guarded accessors ---------------------------------------------------

    def require_dek(self) -> bytes:
        if self.dek is None:
            raise KeyAccessError(
                f"CAP {self.cap_id} on inode {self.attrs.inode} grants no "
                "data encryption key")
        return self.dek

    def require_dvk(self) -> esign.VerificationKey:
        if self.dvk is None:
            raise KeyAccessError(
                f"CAP {self.cap_id} on inode {self.attrs.inode} grants no "
                "data verification key")
        return self.dvk

    def require_dsk(self) -> esign.SigningKey:
        if self.dsk is None:
            raise KeyAccessError(
                f"CAP {self.cap_id} on inode {self.attrs.inode} grants no "
                "data signing key (read-only access)")
        return self.dsk

    def require_msk(self) -> esign.SigningKey:
        if self.msk is None:
            raise KeyAccessError(
                f"inode {self.attrs.inode}: only the owner holds the "
                "metadata signing key")
        return self.msk

    @property
    def is_owner_view(self) -> bool:
        return self.msk is not None

    # -- serialization -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        writer = Writer()
        self.attrs.to_writer(writer)
        writer.put_str(self.cap_id)
        writer.put_str(self.selector)
        writer.put_optional_bytes(self.dek)
        writer.put_optional_bytes(
            self.dvk.to_bytes() if self.dvk else None)
        writer.put_optional_bytes(
            self.dsk.to_bytes() if self.dsk else None)
        writer.put_optional_bytes(
            self.msk.to_bytes() if self.msk else None)
        _put_key_map(writer, self.selector_meks)
        _put_key_map(writer, self.table_deks)
        writer.put_bool(self.needs_rekey)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MetadataView":
        reader = Reader(raw)
        attrs = MetadataAttrs.from_reader(reader)
        cap_id = reader.get_str()
        selector = reader.get_str()
        dek = reader.get_optional_bytes()
        dvk_raw = reader.get_optional_bytes()
        dsk_raw = reader.get_optional_bytes()
        msk_raw = reader.get_optional_bytes()
        selector_meks = _get_key_map(reader)
        table_deks = _get_key_map(reader)
        needs_rekey = reader.get_bool()
        reader.expect_end()
        return cls(
            attrs=attrs,
            cap_id=cap_id,
            selector=selector,
            dek=dek,
            dvk=esign.VerificationKey.from_bytes(dvk_raw) if dvk_raw else None,
            dsk=esign.SigningKey.from_bytes(dsk_raw) if dsk_raw else None,
            msk=esign.SigningKey.from_bytes(msk_raw) if msk_raw else None,
            selector_meks=selector_meks,
            table_deks=table_deks,
            needs_rekey=needs_rekey,
        )


@dataclass(frozen=True)
class Stat:
    """What ``getattr`` returns to applications."""

    inode: int
    ftype: str
    owner: str
    group: str
    mode: int
    size: int
    nlink: int
    version: int

    @classmethod
    def from_attrs(cls, attrs: MetadataAttrs) -> "Stat":
        return cls(inode=attrs.inode, ftype=attrs.ftype, owner=attrs.owner,
                   group=attrs.group, mode=attrs.mode, size=attrs.size,
                   nlink=attrs.nlink, version=attrs.version)
