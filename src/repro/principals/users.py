"""Users and groups: public/private key pairs as identity.

Paper section II-A: each user has a key pair ``(U_pub, U_priv)`` that
"effectively serves as the identity of the user"; groups have a pair too.
Users are assumed to know everyone's public key (a PKI, or identity-based
encryption where the email address *is* the public key) -- that assumption
is the :class:`~repro.principals.registry.PublicKeyDirectory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import rsa

#: Modulus size for principal key pairs in tests/examples.  The simulated
#: cost model always charges 2048-bit costs (see crypto.provider), so a
#: smaller real modulus changes nothing in benchmark output while making
#: key generation ~100x faster.
DEFAULT_USER_KEY_BITS = 512


@dataclass
class User:
    """An enterprise user: an id plus their RSA identity key pair."""

    user_id: str
    keypair: rsa.KeyPair
    groups: set[str] = field(default_factory=set)

    @classmethod
    def create(cls, user_id: str,
               key_bits: int = DEFAULT_USER_KEY_BITS) -> "User":
        return cls(user_id=user_id, keypair=rsa.generate_keypair(key_bits))

    @property
    def public_key(self) -> rsa.PublicKey:
        return self.keypair.public

    @property
    def private_key(self) -> rsa.PrivateKey:
        return self.keypair.private

    def __repr__(self) -> str:
        return f"User({self.user_id!r})"


@dataclass
class Group:
    """A user group with its own key pair and a member set.

    The group's *private* key never sits at the SSP in plaintext: it is
    wrapped with each member's public key (one blob per member) by
    :class:`~repro.principals.groups.GroupKeyService`.
    """

    group_id: str
    keypair: rsa.KeyPair
    members: set[str] = field(default_factory=set)

    @classmethod
    def create(cls, group_id: str, members: set[str] | None = None,
               key_bits: int = DEFAULT_USER_KEY_BITS) -> "Group":
        return cls(group_id=group_id,
                   keypair=rsa.generate_keypair(key_bits),
                   members=set(members or ()))

    @property
    def public_key(self) -> rsa.PublicKey:
        return self.keypair.public

    def __repr__(self) -> str:
        return f"Group({self.group_id!r}, members={sorted(self.members)})"
