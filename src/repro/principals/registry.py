"""Public-key directory and principal registry.

Models the paper's PKI assumption: "we assume that each user knows the
public keys for all other users" (section II-A).  The directory holds only
*public* material; private keys stay with their owners (the
:class:`~repro.principals.groups.UserAgent` wallet).
"""

from __future__ import annotations

from ..crypto import rsa
from ..errors import SharoesError
from .users import Group, User


class UnknownPrincipal(SharoesError):
    """Lookup of a user or group the registry has never seen."""


class PublicKeyDirectory:
    """Maps principal ids to their public keys."""

    def __init__(self) -> None:
        self._user_keys: dict[str, rsa.PublicKey] = {}
        self._group_keys: dict[str, rsa.PublicKey] = {}

    def register_user(self, user: User) -> None:
        self._user_keys[user.user_id] = user.public_key

    def register_group(self, group: Group) -> None:
        self._group_keys[group.group_id] = group.public_key

    def user_key(self, user_id: str) -> rsa.PublicKey:
        try:
            return self._user_keys[user_id]
        except KeyError:
            raise UnknownPrincipal(f"user {user_id!r}") from None

    def group_key(self, group_id: str) -> rsa.PublicKey:
        try:
            return self._group_keys[group_id]
        except KeyError:
            raise UnknownPrincipal(f"group {group_id!r}") from None

    def known_users(self) -> list[str]:
        return sorted(self._user_keys)

    def known_groups(self) -> list[str]:
        return sorted(self._group_keys)


class PrincipalRegistry:
    """Enterprise-side roster of users and groups.

    This is *enterprise* infrastructure (it exists before outsourcing and
    stays inside the trust domain); the SSP never sees it.  It answers the
    membership questions the filesystem needs: which class (owner, group,
    other) does user U fall into for an object owned by O with group G?
    """

    def __init__(self) -> None:
        self.directory = PublicKeyDirectory()
        self._users: dict[str, User] = {}
        self._groups: dict[str, Group] = {}

    # -- enrolment ------------------------------------------------------------

    def add_user(self, user: User) -> User:
        if user.user_id in self._users:
            raise SharoesError(f"duplicate user {user.user_id!r}")
        self._users[user.user_id] = user
        self.directory.register_user(user)
        return user

    def add_group(self, group: Group) -> Group:
        if group.group_id in self._groups:
            raise SharoesError(f"duplicate group {group.group_id!r}")
        unknown = group.members - set(self._users)
        if unknown:
            raise UnknownPrincipal(f"group members {sorted(unknown)}")
        self._groups[group.group_id] = group
        for member in group.members:
            self._users[member].groups.add(group.group_id)
        self.directory.register_group(group)
        return group

    def create_user(self, user_id: str, **kwargs) -> User:
        return self.add_user(User.create(user_id, **kwargs))

    def create_group(self, group_id: str, members: set[str] | None = None,
                     **kwargs) -> Group:
        return self.add_group(Group.create(group_id, members, **kwargs))

    # -- membership -----------------------------------------------------------

    def user(self, user_id: str) -> User:
        try:
            return self._users[user_id]
        except KeyError:
            raise UnknownPrincipal(f"user {user_id!r}") from None

    def group(self, group_id: str) -> Group:
        try:
            return self._groups[group_id]
        except KeyError:
            raise UnknownPrincipal(f"group {group_id!r}") from None

    def is_member(self, user_id: str, group_id: str) -> bool:
        return user_id in self.group(group_id).members

    def add_member(self, group_id: str, user_id: str) -> None:
        self.group(group_id).members.add(self.user(user_id).user_id)
        self._users[user_id].groups.add(group_id)

    def remove_member(self, group_id: str, user_id: str) -> None:
        """Membership revocation; the caller must re-wrap group keys."""
        self.group(group_id).members.discard(user_id)
        if user_id in self._users:
            self._users[user_id].groups.discard(group_id)

    def users(self) -> list[User]:
        return [self._users[uid] for uid in sorted(self._users)]

    def groups(self) -> list[Group]:
        return [self._groups[gid] for gid in sorted(self._groups)]
