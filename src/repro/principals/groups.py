"""Group key distribution and the per-user key wallet.

Paper section II-A: group key pairs are distributed by storing the group's
private key encrypted with the public key of each member (individually) at
the SSP.  When a user mounts the filesystem they fetch their encrypted
group key blocks and unwrap them with their private key -- entirely
in-band, no out-of-channel key exchange.

:class:`UserAgent` is the client-side wallet: it holds the user's private
key plus whatever group private keys were unwrapped at mount time, and it
is the single place that can open principal-addressed lockboxes (used for
superblocks and Scheme-2 split points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import rsa
from ..crypto.provider import CryptoProvider
from ..errors import BlobNotFound, KeyAccessError
from ..storage.blobs import group_key_blob
from ..storage.server import StorageServer
from .registry import PrincipalRegistry
from .users import Group, User


class GroupKeyService:
    """Publishes and rotates group keys at the SSP."""

    def __init__(self, registry: PrincipalRegistry, server: StorageServer,
                 provider: CryptoProvider):
        self._registry = registry
        self._server = server
        self._provider = provider

    def publish(self, group: Group) -> int:
        """Wrap the group private key for every member; returns blob count."""
        payload = group.keypair.private.to_bytes()
        for member_id in sorted(group.members):
            member_key = self._registry.directory.user_key(member_id)
            wrapped = self._provider.pk_encrypt(member_key, payload)
            self._server.put(group_key_blob(group.group_id, member_id),
                             wrapped)
        return len(group.members)

    def publish_all(self) -> int:
        return sum(self.publish(g) for g in self._registry.groups())

    def revoke_member(self, group_id: str, user_id: str) -> Group:
        """Remove a member and rotate the group key pair.

        Rotation is mandatory: the departing member still *knows* the old
        group private key, so every remaining member gets a fresh key and
        the departed member's blob is deleted.  Objects whose CAPs were
        wrapped under the old group key must be re-wrapped by their owners
        (the filesystem's revocation path does this).
        """
        group = self._registry.group(group_id)
        self._server.delete(group_key_blob(group_id, user_id))
        self._registry.remove_member(group_id, user_id)
        group.keypair = rsa.generate_keypair(group.keypair.public.n.bit_length())
        self._registry.directory.register_group(group)
        self.publish(group)
        return group


@dataclass
class UserAgent:
    """Client-side wallet: the only holder of a user's private keys."""

    user: User
    provider: CryptoProvider
    group_keys: dict[str, rsa.PrivateKey] = field(default_factory=dict)

    @property
    def user_id(self) -> str:
        return self.user.user_id

    def principal_ids(self) -> list[str]:
        """Identities this agent can decrypt for: the user, then groups."""
        return [self.user.user_id] + sorted(self.group_keys)

    def fetch_group_keys(self, server: StorageServer) -> int:
        """Mount-time step: unwrap this user's group key blocks from the SSP.

        Returns the number of group keys obtained.  Missing blobs are not
        an error -- the user may simply belong to no published groups.
        """
        self.group_keys.clear()
        for group_id in sorted(self.user.groups):
            try:
                wrapped = server.get(
                    group_key_blob(group_id, self.user.user_id))
            except BlobNotFound:
                continue
            raw = self.provider.pk_decrypt(self.user.private_key, wrapped)
            self.group_keys[group_id] = rsa.PrivateKey.from_bytes(raw)
        return len(self.group_keys)

    def install_group_key(self, group_id: str, wrapped: bytes) -> None:
        """Unwrap one group key block fetched by the client at mount."""
        raw = self.provider.pk_decrypt(self.user.private_key, wrapped)
        self.group_keys[group_id] = rsa.PrivateKey.from_bytes(raw)

    def private_key_for(self, principal_id: str) -> rsa.PrivateKey:
        """Private key for one of this agent's identities."""
        if principal_id == self.user.user_id:
            return self.user.private_key
        try:
            return self.group_keys[principal_id]
        except KeyError:
            raise KeyAccessError(
                f"{self.user.user_id} holds no key for {principal_id!r}"
            ) from None

    def unwrap(self, principal_id: str, blob: bytes) -> bytes:
        """Decrypt a lockbox addressed to one of this agent's identities."""
        return self.provider.pk_decrypt(
            self.private_key_for(principal_id), blob)
