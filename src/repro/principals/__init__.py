"""Principals: users, groups, the PKI assumption, and key distribution."""

from .groups import GroupKeyService, UserAgent
from .registry import PrincipalRegistry, PublicKeyDirectory, UnknownPrincipal
from .users import DEFAULT_USER_KEY_BITS, Group, User

__all__ = [
    "User",
    "Group",
    "DEFAULT_USER_KEY_BITS",
    "PrincipalRegistry",
    "PublicKeyDirectory",
    "UnknownPrincipal",
    "GroupKeyService",
    "UserAgent",
]
