"""Identity-based enrolment: the paper's PKI-free alternative.

Section II-A: users must know everyone's public keys, which "would imply
existence of a public key infrastructure or usage of Identity-Based
Encryption schemes in which the email address of the user is a valid
public key".  This module provides that second option end to end:

* the enterprise runs a :class:`~repro.crypto.ibe.KeyAuthority`;
* anyone can wrap a user's RSA key-pair bootstrap (or any small secret)
  to their *email address* with no directory lookup;
* the user redeems it once with their extracted identity key.

The flow mirrors how real deployments bridge IBE to the session crypto:
IBE wraps a symmetric bootstrap key; the bootstrap key seals the actual
payload.  SHAROES proper keeps using RSA lockboxes after enrolment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import ibe, stream
from ..crypto.keys import new_symmetric_key
from ..errors import CryptoError
from ..serialize import Reader, Writer


@dataclass
class IdentityEnvelope:
    """IBE-wrapped bootstrap key + symmetrically sealed payload."""

    identity: str
    wrapped_key: bytes
    sealed_payload: bytes

    def to_bytes(self) -> bytes:
        writer = Writer()
        writer.put_str(self.identity)
        writer.put_bytes(self.wrapped_key)
        writer.put_bytes(self.sealed_payload)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "IdentityEnvelope":
        reader = Reader(raw)
        identity = reader.get_str()
        wrapped_key = reader.get_bytes()
        sealed_payload = reader.get_bytes()
        reader.expect_end()
        return cls(identity=identity, wrapped_key=wrapped_key,
                   sealed_payload=sealed_payload)


def wrap_for_identity(params: ibe.PublicParams, identity: str,
                      payload: bytes) -> IdentityEnvelope:
    """Encrypt any payload to an email address -- no directory needed."""
    bootstrap = new_symmetric_key()
    return IdentityEnvelope(
        identity=identity,
        wrapped_key=ibe.encrypt(params, identity, bootstrap),
        sealed_payload=stream.seal(bootstrap, payload),
    )


def unwrap_with_identity_key(params: ibe.PublicParams,
                             key: ibe.IdentityKey,
                             envelope: IdentityEnvelope) -> bytes:
    """Redeem an envelope with the authority-extracted identity key."""
    if key.identity != envelope.identity:
        raise CryptoError(
            f"envelope is addressed to {envelope.identity!r}, "
            f"not {key.identity!r}")
    bootstrap = ibe.decrypt(params, key, envelope.wrapped_key)
    return stream.open_sealed(bootstrap, envelope.sealed_payload)
