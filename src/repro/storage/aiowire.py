"""Asyncio front-end for the SSP wire protocol (PR 10).

The threaded :class:`~repro.storage.wire.SspServer` dedicates one OS
thread per connection -- fine for a handful of clients, unreasonable for
the many-client throughput axis where hundreds of mounted clients hold
connections open concurrently.  :class:`AsyncSspServer` serves the
**identical protocol** (same length-prefixed frames, same opcodes
including ``OP_BATCH``, same optional trace-context blocks) from a
single event loop: per-connection coroutines multiplex on one thread,
so idle connections cost a buffer, not a stack.

Interchangeability is structural, not aspirational: every received
frame is handed to :func:`repro.storage.wire.dispatch_message`, the
same function the threaded server calls, so the two front-ends cannot
disagree on framing, trace handling, or error mapping.  An unmodified
:class:`~repro.storage.wire.RemoteStorageClient` (and therefore a
mounted :class:`~repro.fs.client.SharoesFilesystem`) works against
either -- tests/test_aiowire.py proves it by running the whole client
stack over a loopback asyncio server.

The event loop runs on a daemon background thread so synchronous
callers (tests, benchmarks, the CLI) keep their usual start/stop/
context-manager ergonomics.  Requests on one connection are processed
in arrival order (the protocol is request/response per connection);
different connections interleave freely, which is exactly the
concurrency contract the client-side scheduler assumes.
"""

from __future__ import annotations

import asyncio
import contextlib
import struct
import threading

from ..errors import StorageError
from .server import StorageServer
from .wire import _MAX_MESSAGE, dispatch_message


class AsyncSspServer:
    """Single-threaded asyncio TCP front-end for a storage backend."""

    def __init__(self, backend: StorageServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.backend = backend
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._address: tuple[str, int] | None = None
        self._startup_error: BaseException | None = None
        #: connections accepted / frames served since start (read from
        #: the owning thread after stop, or racily for progress counts).
        self.connections = 0
        self.frames = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AsyncSspServer":
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="async-ssp-server")
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise StorageError("async SSP server failed to start")
        if self._startup_error is not None:
            raise StorageError(
                f"async SSP server failed to bind: {self._startup_error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=5)

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise StorageError("async SSP server is not running")
        return self._address

    def __enter__(self) -> "AsyncSspServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- event loop ----------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # bind failure and the like
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop_event.wait()
        # Connection coroutines are daemons of this loop: asyncio.run
        # cancels anything still pending when _main returns.

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client hung up between frames
                (length,) = struct.unpack(">I", header)
                if length > _MAX_MESSAGE:
                    return  # mirror the threaded server: drop framing
                try:
                    message = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                response = dispatch_message(self.backend, message)
                self.frames += 1
                writer.write(struct.pack(">I", len(response)) + response)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    return  # client vanished mid-reply
        finally:
            writer.close()
            # Loop teardown cancels connection tasks mid-wait; swallow
            # the cancellation here so shutdown stays silent -- the
            # socket is already closed either way.
            with contextlib.suppress(ConnectionError, OSError,
                                     asyncio.CancelledError):
                await writer.wait_closed()
