"""Crash-safe online shard rebalancing: change N or k under load.

The paper's enterprise outsources storage to SSPs it does not control,
so the SSP fleet itself must be mutable: a provider gets decommissioned,
a new one is added, or the replication factor changes -- all while
clients keep reading and writing.  This module grows the PR 8
:class:`~repro.storage.shards.ShardedServer` into that shape with a
signed, persisted :class:`RebalancePlan` executed as an idempotent

    copy -> verify -> flip -> drop

pipeline.  Every safety argument reduces to two mechanisms the repo
already trusts:

* **Dual placement.**  While a plan is adopted, reads consult the union
  of the old and new rings (authoritative ring first -- see
  ``ShardedServer.placement``) and every mutation fans out to both, so
  a crash at *any* pipeline step can never strand the only copy of a
  newer version on the losing ring.
* **Epoch fencing.**  The plan blob (``plan/0/-``) carries a plaintext
  8-byte prefix ``epoch * 256 + state_rank``: monotone across plan
  epochs *and* across states within one plan.  Every state transition
  is a ``put_if`` CAS against the stored winner, and every data move is
  a ``put_fenced``/``delete_fenced`` against the plan blob at the
  plan's own prefix -- a crashed-and-resurrected ("zombie") rebalancer
  is mechanically rejected with :class:`~repro.errors.StaleEpochError`
  or :class:`~repro.errors.CasConflictError`, exactly like a zombie
  writer under the PR 7 lease protocol.

The plan *body* (epoch, rings, move list) is RSA-signed by the
proposing administrator; the state rides outside the signature (in the
prefix) so a keyless repair process can still advance or abort a
stranded plan, but a malicious SSP that tampers with the body is
refused at load time (signature check raises
:class:`~repro.errors.IntegrityError`; the copy is simply ignored --
see docs/THREAT_MODEL.md).

Recovery policy (used by ``ShardedServer.repair`` via
:func:`resolve_plan`): a plan that already **flipped** made the new
ring authoritative, so the only safe direction is forward (resume
drop + finish); a plan that has not flipped never took authority away
from the old ring, so it is rolled back (reverse-copy any newer
versions home, then abandon the staged copies).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..crypto import rsa
from ..errors import (IntegrityError, StaleEpochError,
                      TransientStorageError)
from .blobs import LEASE, PLAN, BlobId, parse_blob_id, plan_blob
from .resilient import ServerWrapper
from .server import EPOCH_PREFIX_BYTES, StorageServer, fence_epoch
from .shards import RingSpec, ShardedServer

# -- plan states --------------------------------------------------------------

COPYING = "copying"     # staging copies onto the new ring
VERIFIED = "verified"   # every staged copy re-read and matched
FLIPPED = "flipped"     # the new ring is now authoritative
DONE = "done"           # old-placement copies dropped; plan retired
ABORTED = "aborted"     # rolled back pre-flip; staged copies dropped

#: State ranks are monotone within one plan *and* dominated by the
#: epoch (prefix = epoch * 256 + rank), so ``fence_epoch`` over the
#: plan blob orders every (epoch, state) pair ever stored.
_RANK = {COPYING: 1, VERIFIED: 2, FLIPPED: 3, DONE: 4, ABORTED: 5}
_STATE_FOR_RANK = {rank: state for state, rank in _RANK.items()}

#: States with pipeline work still pending.
ACTIVE_STATES = (COPYING, VERIFIED, FLIPPED)


@dataclass(frozen=True)
class RebalancePlan:
    """A signed old-ring -> new-ring migration contract.

    The signature covers :meth:`body_bytes` -- epoch, both rings and
    the move list -- but *not* ``state``: state transitions are CAS'd
    through the quorum by whoever is driving recovery, keys in hand or
    not, while the contract itself stays tamper-evident.
    """

    epoch: int
    state: str
    old: RingSpec
    new: RingSpec
    moves: tuple[BlobId, ...]
    signature: bytes = b""

    @property
    def rank(self) -> int:
        return _RANK[self.state]

    @property
    def prefix(self) -> int:
        """The plaintext fencing prefix: monotone over epoch then state."""
        return self.epoch * 256 + self.rank

    @property
    def flipped(self) -> bool:
        """Has authority moved to the new ring?  (Consumed by
        ``ShardedServer._rings`` through the adopt-plan duck type.)"""
        return self.state in (FLIPPED, DONE)

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def body_bytes(self) -> bytes:
        """The canonical signed body (state deliberately excluded)."""
        return json.dumps({
            "epoch": self.epoch,
            "old": {"members": list(self.old.members),
                    "replicas": self.old.replicas},
            "new": {"members": list(self.new.members),
                    "replicas": self.new.replicas},
            "moves": [str(b) for b in self.moves],
        }, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def sign(self, private: rsa.PrivateKey) -> "RebalancePlan":
        return replace(self,
                       signature=rsa.sign(private, self.body_bytes()))

    def to_blob(self) -> bytes:
        """Wire form: 8-byte prefix, then JSON {body, sig}."""
        payload = json.dumps({
            "body": self.body_bytes().decode("utf-8"),
            "sig": self.signature.hex(),
        }, sort_keys=True).encode("utf-8")
        return self.prefix.to_bytes(EPOCH_PREFIX_BYTES, "big") + payload

    @classmethod
    def from_blob(cls, raw: bytes,
                  verify_key: rsa.PublicKey) -> "RebalancePlan":
        """Parse + verify one stored plan copy; tampering is refused.

        Raises :class:`~repro.errors.IntegrityError` when the signature
        does not cover the body, the prefix disagrees with the signed
        epoch, or the encoding is malformed -- callers treat any such
        copy as hostile and ignore it.
        """
        if len(raw) < EPOCH_PREFIX_BYTES:
            raise IntegrityError("plan blob too short for its prefix")
        prefix = int.from_bytes(raw[:EPOCH_PREFIX_BYTES], "big")
        try:
            outer = json.loads(raw[EPOCH_PREFIX_BYTES:])
            body_raw = outer["body"].encode("utf-8")
            signature = bytes.fromhex(outer["sig"])
        except (ValueError, KeyError, TypeError) as exc:
            raise IntegrityError(f"malformed plan blob: {exc}") from exc
        rsa.verify(verify_key, body_raw, signature)
        try:
            body = json.loads(body_raw)
            plan = cls(
                epoch=int(body["epoch"]),
                state=_STATE_FOR_RANK.get(prefix % 256, ""),
                old=RingSpec(tuple(body["old"]["members"]),
                             int(body["old"]["replicas"])),
                new=RingSpec(tuple(body["new"]["members"]),
                             int(body["new"]["replicas"])),
                moves=tuple(parse_blob_id(m) for m in body["moves"]),
                signature=signature,
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise IntegrityError(f"malformed plan body: {exc}") from exc
        if not plan.state:
            raise IntegrityError(f"unknown plan state rank {prefix % 256}")
        if prefix // 256 != plan.epoch:
            raise IntegrityError(
                f"plan prefix epoch {prefix // 256} does not match "
                f"signed epoch {plan.epoch}")
        return plan


@dataclass
class RebalanceReport:
    """What one :class:`Rebalancer` drive (or recovery) did."""

    epoch: int = 0
    state: str = ""
    moved: int = 0        # copies staged onto the new placement
    verified: int = 0     # staged copies re-read and matched
    healed: int = 0       # staged copies re-written on mismatch
    dropped: int = 0      # old-placement copies dropped post-flip
    skipped: int = 0      # moves skipped (blob deleted mid-plan)
    unreachable: int = 0  # replica calls lost to shard outages

    def summary(self) -> str:
        return (f"plan {self.epoch} {self.state}: "
                f"moved {self.moved}, verified {self.verified}, "
                f"healed {self.healed}, dropped {self.dropped}, "
                f"skipped {self.skipped}, unreachable {self.unreachable}")


class Rebalancer:
    """Drives a :class:`RebalancePlan` through the sharded router.

    ``keypair`` (an :class:`rsa.KeyPair`) is required to *propose* a
    plan; resuming, finishing or rolling back a stored plan is keyless
    (state lives outside the signature).  ``hook(step, detail)`` fires
    before every pipeline action and is the crash-injection point for
    the rebalance crash matrix -- everything between two hook calls is
    atomic in the single-threaded testbed.
    """

    def __init__(self, server: ShardedServer,
                 keypair: rsa.KeyPair | None = None,
                 verify_key: rsa.PublicKey | None = None,
                 hook: Callable[[str, str], None] | None = None):
        self.server = server
        self.keypair = keypair
        self.verify_key = verify_key or (
            keypair.public if keypair is not None else None)
        self.hook = hook
        #: the plan this rebalancer believes it owns (adopted on the
        #: server); a zombie's stale copy is fenced at the next CAS.
        self.plan: RebalancePlan | None = getattr(server, "plan", None)
        self.report = RebalanceReport()

    # -- crash-injection seam -------------------------------------------------

    def _act(self, step: str, detail: str = "") -> None:
        if self.hook is not None:
            self.hook(step, detail)

    # -- plan lifecycle -------------------------------------------------------

    def propose(self, members: Sequence[int],
                replicas: int) -> RebalancePlan:
        """Sign and CAS-install a plan moving the ring to ``members``.

        The epoch is one past the highest stored plan epoch, and the
        install is a ``put_if`` against the stored winner -- two
        concurrent proposers cannot both win.  The plan is adopted
        (dual placement on) *before* the CAS so the plan blob itself
        lands on every member of both rings; on a lost race the
        adoption is undone.
        """
        if self.keypair is None:
            raise ValueError("proposing a plan requires a signing keypair")
        server = self.server
        if server.plan is not None:
            raise ValueError("a rebalance plan is already active")
        old = server.ring
        new = RingSpec(tuple(members), replicas)
        for m in new.members:
            if not 0 <= m < len(server.shards):
                raise ValueError(f"ring member {m} is not attached")
        if server.read_quorum > new.replicas:
            raise ValueError("read_quorum would exceed the replica count")
        if new == old:
            raise ValueError("new ring equals the current ring")
        current = server._read(plan_blob())
        epoch = (fence_epoch(current) // 256 if current is not None
                 else 0) + 1
        moves = tuple(sorted(
            (b for b in server.census()
             if b.kind != PLAN and b not in server._deleted
             and self._dsts(b, old, new)), key=str))
        plan = RebalancePlan(epoch=epoch, state=COPYING, old=old,
                             new=new, moves=moves).sign(
                                 self.keypair.private)
        server.adopt_plan(plan)
        try:
            server.put_if(plan_blob(), plan.to_blob(), current)
        except Exception:
            server.adopt_plan(None)
            raise
        self.plan = plan
        self.report = RebalanceReport(epoch=epoch, state=COPYING)
        return plan

    @staticmethod
    def load(server: ShardedServer,
             verify_key: rsa.PublicKey) -> RebalancePlan | None:
        """Highest-prefix *signature-valid* stored plan, or None.

        Scans every shard's raw store directly (no placement
        assumptions -- a half-finished plan is exactly when placement
        is in doubt).  Tampered copies fail :meth:`RebalancePlan.
        from_blob` and are skipped: a malicious SSP can hide its own
        copy of the plan, never forge one.
        """
        best: RebalancePlan | None = None
        for shard in server.shards:
            raw = shard.backend.raw_blobs().get(plan_blob())
            if raw is None:
                continue
            try:
                plan = RebalancePlan.from_blob(raw, verify_key)
            except IntegrityError:
                continue
            if best is None or plan.prefix > best.prefix:
                best = plan
        return best

    @classmethod
    def recover(cls, server: ShardedServer,
                verify_key: rsa.PublicKey,
                keypair: rsa.KeyPair | None = None,
                hook: Callable[[str, str], None] | None = None
                ) -> "Rebalancer":
        """Re-attach to whatever plan the store holds (crash recovery).

        An active stored plan is adopted (dual placement resumes); a
        terminal one has its bookkeeping reconciled -- a DONE plan
        whose ring switch never landed is applied, an ABORTED one's
        vacated ring is recorded so repair classifies strays as
        ``migrated``.
        """
        reb = cls(server, keypair=keypair, verify_key=verify_key,
                  hook=hook)
        stored = cls.load(server, reb.verify_key)
        if stored is None:
            server.adopt_plan(None)
            reb.plan = None
            return reb
        if stored.state == DONE:
            if server.ring != stored.new:
                server.set_ring(stored.new.members, stored.new.replicas)
            server.retire_plan(vacated=stored.old)
            reb.plan = None
        elif stored.state == ABORTED:
            server.retire_plan(vacated=stored.new)
            reb.plan = None
        else:
            server.adopt_plan(stored)
            reb.plan = stored
        reb.report = RebalanceReport(epoch=stored.epoch,
                                     state=stored.state)
        return reb

    # -- pipeline -------------------------------------------------------------

    def execute(self, until: str = DONE) -> RebalanceReport:
        """Drive the adopted plan forward, stopping after ``until``.

        Idempotent from any state: already-staged copies are skipped,
        already-passed transitions are not replayed, and a superseding
        plan (or a concurrent driver) surfaces as
        :class:`~repro.errors.StaleEpochError` at the next CAS.
        """
        plan = self.plan
        if plan is None:
            raise ValueError("no rebalance plan to execute")
        report = self.report
        report.epoch, report.state = plan.epoch, plan.state
        stop = _RANK[until]
        if plan.rank < _RANK[VERIFIED] <= stop:
            self._copy(report)
            self._verify(report)
            plan = self._advance(VERIFIED)
        if plan.rank < _RANK[FLIPPED] <= stop:
            self._act("flip", f"epoch {plan.epoch}")
            plan = self._advance(FLIPPED)
        if plan.rank < _RANK[DONE] <= stop:
            self._drop(report)
            self._finish(report)
        if self.plan is not None:
            report.state = self.plan.state
        return report

    def resume(self) -> RebalanceReport:
        """Finish whatever plan :meth:`recover` re-attached (no-op
        when the store held none or a terminal one)."""
        if self.plan is None:
            return self.report
        return self.execute()

    def rollback(self) -> RebalanceReport:
        """Abandon an unflipped plan; the old ring keeps authority.

        Any version a dual write landed only on the staging placement
        is reverse-copied home *before* the staged copies are dropped
        (the union read below votes it the winner because the missed
        old-ring replicas sit in the suspect ledger), so rollback can
        never lose a write.  Only then is ABORTED CAS'd: a crash
        mid-rollback leaves the plan active and the whole rollback
        re-runs idempotently.
        """
        plan = self.plan
        if plan is None:
            raise ValueError("no rebalance plan to roll back")
        if plan.flipped:
            raise ValueError("cannot roll back a flipped plan: the new "
                             "ring is already authoritative")
        server = self.server
        report = self.report
        report.epoch, report.state = plan.epoch, plan.state
        fence = plan_blob()
        for blob_id in plan.moves:
            if blob_id in server._deleted:
                report.skipped += 1
                continue
            self._act("rollback", str(blob_id))
            winner = server._read(blob_id)
            if winner is not None:
                homes = (plan.old.members if blob_id.kind == LEASE
                         else plan.old.targets(blob_id))
                for home in homes:
                    have = (server.shards[home].backend
                            .raw_blobs().get(blob_id))
                    if have == winner:
                        continue
                    try:
                        server.shards[home].transport.put_fenced(
                            blob_id, winner, fence, plan.prefix)
                    except TransientStorageError:
                        report.unreachable += 1
                        continue
                    server._clear_suspect(blob_id, home)
            for dst in self._dsts(blob_id, plan.old, plan.new):
                if not server.shards[dst].backend.exists(blob_id):
                    continue
                try:
                    server.shards[dst].transport.delete_fenced(
                        blob_id, fence, plan.prefix)
                except TransientStorageError:
                    report.unreachable += 1
                    continue
                server._clear_suspect(blob_id, dst)
                report.dropped += 1
                server.rebalance_dropped += 1
        self._act("abort", f"epoch {plan.epoch}")
        self._advance(ABORTED)
        server.retire_plan(vacated=plan.new)
        self.plan = None
        report.state = ABORTED
        return report

    # -- pipeline stages ------------------------------------------------------

    @staticmethod
    def _dsts(blob_id: BlobId, old: RingSpec,
              new: RingSpec) -> tuple[int, ...]:
        """Shards the new placement adds for one blob (the copy set)."""
        if blob_id.kind == PLAN:
            return ()
        if blob_id.kind == LEASE:
            return tuple(sorted(set(new.members) - set(old.members)))
        old_targets = set(old.targets(blob_id))
        return tuple(s for s in new.targets(blob_id)
                     if s not in old_targets)

    @staticmethod
    def _srcs(blob_id: BlobId, old: RingSpec,
              new: RingSpec) -> tuple[int, ...]:
        """Shards the new placement vacates for one blob (the drop set)."""
        if blob_id.kind == PLAN:
            return ()
        if blob_id.kind == LEASE:
            return tuple(sorted(set(old.members) - set(new.members)))
        new_targets = set(new.targets(blob_id))
        return tuple(s for s in old.targets(blob_id)
                     if s not in new_targets)

    def _copy(self, report: RebalanceReport) -> None:
        """Stage every move's winner onto its new-placement shards."""
        plan, server = self.plan, self.server
        fence = plan_blob()
        for blob_id in plan.moves:
            if blob_id in server._deleted:
                report.skipped += 1
                continue
            self._act("copy", str(blob_id))
            winner = server._read(blob_id)
            if winner is None:
                report.skipped += 1
                continue
            for dst in self._dsts(blob_id, plan.old, plan.new):
                have = (server.shards[dst].backend
                        .raw_blobs().get(blob_id))
                if have == winner and \
                        not server._is_suspect(blob_id, dst):
                    continue
                try:
                    server.shards[dst].transport.put_fenced(
                        blob_id, winner, fence, plan.prefix)
                except TransientStorageError:
                    report.unreachable += 1
                    continue
                server._clear_suspect(blob_id, dst)
                report.moved += 1
                server.rebalance_moved += 1

    def _verify(self, report: RebalanceReport) -> None:
        """Re-read every staged copy against the winner; heal mismatches."""
        plan, server = self.plan, self.server
        fence = plan_blob()
        for blob_id in plan.moves:
            if blob_id in server._deleted:
                continue
            self._act("verify", str(blob_id))
            winner = server._read(blob_id)
            if winner is None:
                continue
            for dst in self._dsts(blob_id, plan.old, plan.new):
                have = (server.shards[dst].backend
                        .raw_blobs().get(blob_id))
                if have == winner:
                    report.verified += 1
                    server.rebalance_verified += 1
                    continue
                try:
                    server.shards[dst].transport.put_fenced(
                        blob_id, winner, fence, plan.prefix)
                except TransientStorageError:
                    report.unreachable += 1
                    continue
                server._clear_suspect(blob_id, dst)
                report.healed += 1
                report.verified += 1
                server.rebalance_verified += 1

    def _drop(self, report: RebalanceReport) -> None:
        """Post-flip: vacate old-only placements, healing new first.

        A dual write that missed a new-ring replica (flagged suspect at
        write time) must be healed onto it from the union winner before
        the old copy -- possibly the only good one -- is dropped.
        """
        plan, server = self.plan, self.server
        fence = plan_blob()
        for blob_id in plan.moves:
            if blob_id in server._deleted:
                continue
            self._act("drop", str(blob_id))
            winner = server._read(blob_id)
            if winner is not None:
                targets = (plan.new.members if blob_id.kind == LEASE
                           else plan.new.targets(blob_id))
                for dst in targets:
                    have = (server.shards[dst].backend
                            .raw_blobs().get(blob_id))
                    if have == winner and \
                            not server._is_suspect(blob_id, dst):
                        continue
                    try:
                        server.shards[dst].transport.put_fenced(
                            blob_id, winner, fence, plan.prefix)
                    except TransientStorageError:
                        report.unreachable += 1
                        continue
                    server._clear_suspect(blob_id, dst)
                    server.rebalance_moved += 1
            for src in self._srcs(blob_id, plan.old, plan.new):
                if not server.shards[src].backend.exists(blob_id):
                    continue
                try:
                    server.shards[src].transport.delete_fenced(
                        blob_id, fence, plan.prefix)
                except TransientStorageError:
                    # Left for anti-entropy: post-retire the copy is
                    # classified ``migrated``, never lost data.
                    report.unreachable += 1
                    continue
                server._clear_suspect(blob_id, src)
                report.dropped += 1
                server.rebalance_dropped += 1

    def _finish(self, report: RebalanceReport) -> None:
        """Seal DONE, switch the ring, sweep ex-members.

        One hook call guards the whole block: the DONE CAS, the ring
        switch and the plan retirement are atomic in the testbed, so
        recovery only ever sees "still FLIPPED" (resume forward) or
        "DONE and reconciled".  The done plan blob stays on the current
        ring's members forever -- dropping it would reopen the fencing
        gap a zombie at the same epoch could slip through.
        """
        plan, server = self.plan, self.server
        self._act("finish", f"epoch {plan.epoch}")
        self._advance(DONE)
        server.set_ring(plan.new.members, plan.new.replicas)
        server.retire_plan(vacated=plan.old)
        self.plan = None
        # Sweep every copy the retired ring stranded.  Ex-members are
        # vacated wholesale (control blobs included); dual writes of
        # blobs *created* while the plan was active -- so never in
        # ``plan.moves`` -- left copies on old-only placements of
        # surviving members, and those must go too: a later delete
        # fans to the new placement only, and a stranded copy would
        # resurrect the blob in the union.  New-placement copies are
        # healed from the winner first (a dual write may have missed
        # one), and a blob with no live authoritative copy is left for
        # anti-entropy rather than dropped blind.
        census = server.census()
        for blob_id in sorted(census, key=str):
            keep = set(server.placement(blob_id))
            extras = census[blob_id] - keep
            if not extras:
                continue
            winner = None
            if blob_id.kind != PLAN:
                winner = server._read(blob_id)
                if winner is None and blob_id not in server._deleted:
                    report.unreachable += 1
                    continue
                for dst in sorted(keep):
                    if winner is None:
                        break
                    have = (server.shards[dst].backend
                            .raw_blobs().get(blob_id))
                    if have == winner and \
                            not server._is_suspect(blob_id, dst):
                        continue
                    try:
                        server.shards[dst].transport.put(blob_id, winner)
                    except TransientStorageError:
                        report.unreachable += 1
                        continue
                    server._clear_suspect(blob_id, dst)
            for src in sorted(extras):
                if not server.shards[src].backend.exists(blob_id):
                    continue
                try:
                    server.shards[src].transport.delete(blob_id)
                except TransientStorageError:
                    report.unreachable += 1
                    continue
                server._clear_suspect(blob_id, src)
                if blob_id.kind != PLAN:
                    report.dropped += 1
                    server.rebalance_dropped += 1
        report.state = DONE

    def _advance(self, state: str) -> RebalancePlan:
        """CAS the plan's state through the quorum (the fencing step).

        The expected value is the stored winner; a zombie driver whose
        in-memory plan no longer matches the store is rejected here
        with :class:`~repro.errors.StaleEpochError` before it can touch
        anything else.
        """
        plan, server = self.plan, self.server
        current = server._read(plan_blob())
        if current is None or fence_epoch(current) != plan.prefix:
            raise StaleEpochError(
                f"plan epoch {plan.epoch} ({plan.state}) superseded: "
                f"store holds prefix {fence_epoch(current or b'')}",
                current_epoch=fence_epoch(current or b""))
        advanced = replace(plan, state=state)
        server.put_if(plan_blob(), advanced.to_blob(), current)
        self.plan = advanced
        if advanced.active:
            server.adopt_plan(advanced)
        return advanced


def resolve_plan(server: ShardedServer) -> str:
    """Repair's plan arbiter: resume a flipped plan, abort the rest.

    Keyless by design -- the adopted plan was signature-checked when it
    was adopted (or proposed), and state transitions ride outside the
    signature.  Returns the action taken for the repair report.
    """
    plan = server.plan
    if plan is None:
        return ""
    reb = Rebalancer(server)
    if plan.flipped:
        reb.execute()
        return "resumed"
    reb.rollback()
    return "rolled_back"


class MidRunRebalance(ServerWrapper):
    """Fires rebalance stages at exact points in a client's op stream.

    The acceptance trio mounts a workload over this wrapper with e.g.
    ``[(40, stage1), (80, stage2)]``: just before the client's 40th
    mutation the first stage callable runs (propose + copy + verify),
    before the 80th the second (flip + drop + finish) -- a rebalance
    genuinely interleaved with live traffic, deterministically.
    Counts the same mutation set as ``CrashingServer``/``PauseServer``.
    """

    def __init__(self, inner: StorageServer,
                 stages: Sequence[tuple[int, Callable[[], None]]]):
        super().__init__(inner, name=f"midrun({inner.name})")
        self.stages = sorted(stages, key=lambda s: s[0])
        self.mutations = 0
        self.fired = 0

    def _mutation(self) -> None:
        self.mutations += 1
        while self.stages and self.mutations >= self.stages[0][0]:
            _, stage = self.stages.pop(0)
            self.fired += 1
            stage()

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._mutation()
        self.inner.put(blob_id, payload)

    def delete(self, blob_id: BlobId) -> None:
        self._mutation()
        self.inner.delete(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._mutation()
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.delete_fenced(blob_id, fence, epoch)
