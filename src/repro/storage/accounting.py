"""SSP-side accounting.

Tracks request counts, transferred bytes and stored bytes.  Two consumers:

* tests assert that clients perform exactly the expected number of SSP
  round trips per filesystem operation (Figure 8's cost table);
* the Scheme-1 vs Scheme-2 ablation converts stored metadata bytes into
  the paper's "$0.60 per user per month for a million-file filesystem"
  estimate using 2008 Amazon S3 pricing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Amazon S3 storage price circa the paper's writing, $/GB-month.
S3_2008_DOLLARS_PER_GB_MONTH = 0.15


@dataclass
class ServerStats:
    """Running totals of SSP activity."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    misses: int = 0
    bytes_received: int = 0
    bytes_served: int = 0
    bytes_freed: int = 0
    puts_by_kind: dict[str, int] = field(default_factory=dict)
    gets_by_kind: dict[str, int] = field(default_factory=dict)
    deletes_by_kind: dict[str, int] = field(default_factory=dict)

    def record_put(self, kind: str, num_bytes: int) -> None:
        self.puts += 1
        self.bytes_received += num_bytes
        self.puts_by_kind[kind] = self.puts_by_kind.get(kind, 0) + 1

    def record_get(self, kind: str, num_bytes: int) -> None:
        self.gets += 1
        self.bytes_served += num_bytes
        self.gets_by_kind[kind] = self.gets_by_kind.get(kind, 0) + 1

    def record_delete(self, kind: str = "?", num_bytes: int = 0) -> None:
        """Same parity as put/get: per-kind counts and bytes freed.

        ``num_bytes`` is the stored size reclaimed (0 for idempotent
        deletes of absent blobs, or backends that cannot know, like the
        remote wire proxy).
        """
        self.deletes += 1
        self.bytes_freed += num_bytes
        self.deletes_by_kind[kind] = self.deletes_by_kind.get(kind, 0) + 1

    def record_miss(self) -> None:
        self.misses += 1

    def reset(self) -> None:
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.misses = 0
        self.bytes_received = 0
        self.bytes_served = 0
        self.bytes_freed = 0
        self.puts_by_kind.clear()
        self.gets_by_kind.clear()
        self.deletes_by_kind.clear()


def monthly_storage_dollars(stored_bytes: int,
                            dollars_per_gb_month: float =
                            S3_2008_DOLLARS_PER_GB_MONTH) -> float:
    """Monthly storage cost of ``stored_bytes`` at SSP pricing."""
    return stored_bytes / (1024 ** 3) * dollars_per_gb_month
