"""Resilient SSP transport: surviving an *unreliable* storage provider.

The paper's threat model (section VII) worries about a malicious SSP --
tampering, rollback -- and :mod:`repro.storage.faults` models those.  A
production client mounted over a WAN must also survive an SSP that is
merely flaky: dropped connections, slow responses, transient refusals.
This module supplies both halves of that story:

* **transient-fault injectors** -- delegating server wrappers that make
  any :class:`~repro.storage.server.StorageServer` unreliable on demand:
  :class:`FlakyServer` (seeded per-op failure probability),
  :class:`SlowServer` (extra simulated latency per request) and
  :class:`OutageServer` (a hard failure window on the simulated clock);

* :class:`ResilientTransport` -- the client-side wrapper that masks those
  faults: deadline-bounded retries with exponential backoff and
  decorrelated jitter charged *on the simulated clock* (so retry cost
  shows up in :class:`~repro.sim.costmodel.CostBreakdown` and span
  traces), a circuit breaker (open after N consecutive failures,
  half-open probe after a cooldown), and graceful degradation: a read
  that exhausts its retries falls back to the last blob this client
  verified-and-cached, flagged stale.

Only :class:`~repro.errors.TransientStorageError` is retried.  A plain
:class:`~repro.errors.StorageError` (protocol corruption) or
:class:`~repro.errors.BlobNotFound` (a definitive answer) propagates
immediately -- retrying cannot change either.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import (CasConflictError, CircuitOpenError, ClientCrashed,
                      TransientStorageError)
from ..fs.cache import LruCache
from ..sim.clock import SimClock
from ..sim.costmodel import NETWORK, CostModel
from .blobs import BlobId
from .server import BatchOp, BatchReply, StorageServer, apply_batch


class ServerWrapper:
    """Delegating base for transparent StorageServer decorators.

    Unlike the subclass-style fault servers in :mod:`repro.storage.
    faults`, a wrapper composes with *any* backend -- in-memory, disk,
    remote proxy, or another wrapper -- without owning blob state.
    """

    def __init__(self, inner: StorageServer, name: str | None = None):
        self.inner = inner
        self.name = name or f"wrapped({inner.name})"

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self.inner.put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        return self.inner.get(blob_id)

    def delete(self, blob_id: BlobId) -> None:
        self.inner.delete(blob_id)

    def exists(self, blob_id: BlobId) -> bool:
        return self.inner.exists(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self.inner.delete_fenced(blob_id, fence, epoch)

    def batch(self, ops) -> list[BatchReply]:
        """Apply sub-ops through *this wrapper's own* single-op methods.

        This keeps every decorator honest inside a batch: a flaky wrapper
        can fail at sub-op k, a crashing wrapper counts each mutation,
        and per-blob stats are identical to the unbatched sequence.
        Wrappers that model per-*request* cost (slow, outage) override
        this to pay once per frame instead.
        """
        return apply_batch(self, ops)


class CrashingServer(ServerWrapper):
    """Kills the client at the k-th mutation (crash-point injection).

    Counts *mutations* (put/delete) only -- reads never change SSP state,
    so crash points between them are indistinguishable from crashing at
    the next mutation.  With ``crash_after=k`` the k-th mutation raises
    :class:`~repro.errors.ClientCrashed` *before* touching the backend
    (the paper's SSP applies a request atomically or not at all; the
    interesting partial states come from dying *between* blobs of a
    multi-blob op, which per-mutation counting covers exhaustively).
    ``crash_after=None`` never crashes: the harness uses a counting run
    to discover how many crash points an op has.
    """

    def __init__(self, inner: StorageServer,
                 crash_after: int | None = None):
        super().__init__(inner, name=f"crashing({inner.name})")
        self.crash_after = crash_after
        self.mutations = 0
        self.crashed = False

    def _mutation(self) -> None:
        self.mutations += 1
        if self.crash_after is not None and \
                self.mutations >= self.crash_after:
            self.crashed = True
            raise ClientCrashed(
                f"injected crash at mutation {self.mutations}")

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._mutation()
        self.inner.put(blob_id, payload)

    def delete(self, blob_id: BlobId) -> None:
        self._mutation()
        self.inner.delete(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._mutation()
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._mutation()
        self.inner.delete_fenced(blob_id, fence, epoch)


# -- transient-fault injectors ------------------------------------------------


class FlakyServer(ServerWrapper):
    """Fails a seeded fraction of requests with TransientStorageError.

    ``failure_rate`` is either one probability for every operation or a
    ``{op: probability}`` map over ``"put" | "get" | "delete" |
    "exists"`` (missing ops never fail).  Deterministic given the seed,
    so chaos tests can replay exact failure sequences.
    """

    OPS = ("put", "get", "delete", "exists")

    def __init__(self, inner: StorageServer,
                 failure_rate: float | dict[str, float] = 0.1,
                 seed: int = 0, name: str = "flaky-ssp"):
        super().__init__(inner, name)
        if isinstance(failure_rate, dict):
            rates = {op: float(failure_rate.get(op, 0.0))
                     for op in self.OPS}
        else:
            rates = {op: float(failure_rate) for op in self.OPS}
        for op, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"failure rate for {op!r} must be within [0, 1]")
        self.rates = rates
        self._rng = random.Random(seed)
        self.injected_faults = 0
        self.faults_by_op = {op: 0 for op in self.OPS}

    def _maybe_fail(self, op: str, blob_id: BlobId) -> None:
        if self._rng.random() < self.rates[op]:
            self.injected_faults += 1
            self.faults_by_op[op] += 1
            raise TransientStorageError(
                f"{self.name}: injected {op} failure for {blob_id}")

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._maybe_fail("put", blob_id)
        self.inner.put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        self._maybe_fail("get", blob_id)
        return self.inner.get(blob_id)

    def delete(self, blob_id: BlobId) -> None:
        self._maybe_fail("delete", blob_id)
        self.inner.delete(blob_id)

    def exists(self, blob_id: BlobId) -> bool:
        self._maybe_fail("exists", blob_id)
        return self.inner.exists(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._maybe_fail("put", blob_id)
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._maybe_fail("put", blob_id)
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._maybe_fail("delete", blob_id)
        self.inner.delete_fenced(blob_id, fence, epoch)


class SlowServer(ServerWrapper):
    """Charges extra simulated latency on every request.

    With a cost model the delay lands in the NETWORK bucket (and in the
    innermost open span); with only a clock it just advances time --
    enough for deadline and breaker-cooldown tests.
    """

    def __init__(self, inner: StorageServer, delay_s: float,
                 cost: CostModel | None = None,
                 clock: SimClock | None = None, name: str = "slow-ssp"):
        super().__init__(inner, name)
        if delay_s < 0:
            raise ValueError("delay must be >= 0")
        self.delay_s = delay_s
        self._cost = cost
        self._clock = clock if clock is not None else (
            cost.clock if cost is not None else None)
        self.delayed_requests = 0

    def _stall(self) -> None:
        self.delayed_requests += 1
        if self._cost is not None:
            self._cost.charge(NETWORK, self.delay_s)
        elif self._clock is not None:
            self._clock.advance(self.delay_s)

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._stall()
        self.inner.put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        self._stall()
        return self.inner.get(blob_id)

    def delete(self, blob_id: BlobId) -> None:
        self._stall()
        self.inner.delete(blob_id)

    def exists(self, blob_id: BlobId) -> bool:
        self._stall()
        return self.inner.exists(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._stall()
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._stall()
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._stall()
        self.inner.delete_fenced(blob_id, fence, epoch)

    def batch(self, ops) -> list[BatchReply]:
        """One frame = one request = one stall; sub-ops ride for free.

        This is the whole point of batching under a per-request latency
        model, so the stall is charged once and the sub-ops go straight
        to the inner backend."""
        self._stall()
        return self.inner.batch(ops)


class OutageServer(ServerWrapper):
    """Fails every request inside a simulated-clock time window."""

    def __init__(self, inner: StorageServer, clock: SimClock,
                 start_s: float, end_s: float, name: str = "outage-ssp"):
        super().__init__(inner, name)
        if end_s < start_s:
            raise ValueError("outage window must not end before it starts")
        self._clock = clock
        self.start_s = start_s
        self.end_s = end_s
        self.rejected_requests = 0

    @property
    def in_outage(self) -> bool:
        return self.start_s <= self._clock.now < self.end_s

    def _gate(self, op: str, blob_id: BlobId) -> None:
        if self.in_outage:
            self.rejected_requests += 1
            raise TransientStorageError(
                f"{self.name}: outage until t={self.end_s:g}s "
                f"(now {self._clock.now:g}s, {op} {blob_id})")

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._gate("put", blob_id)
        self.inner.put(blob_id, payload)

    def get(self, blob_id: BlobId) -> bytes:
        self._gate("get", blob_id)
        return self.inner.get(blob_id)

    def delete(self, blob_id: BlobId) -> None:
        self._gate("delete", blob_id)
        self.inner.delete(blob_id)

    def exists(self, blob_id: BlobId) -> bool:
        self._gate("exists", blob_id)
        return self.inner.exists(blob_id)

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        self._gate("put_if", blob_id)
        self.inner.put_if(blob_id, payload, expected)

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        self._gate("put_fenced", blob_id)
        self.inner.put_fenced(blob_id, payload, fence, epoch)

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._gate("delete_fenced", blob_id)
        self.inner.delete_fenced(blob_id, fence, epoch)

    def batch(self, ops) -> list[BatchReply]:
        """An outage rejects the whole frame at the door (one request)."""
        if ops:
            self._gate("batch", ops[0].blob_id)
        return self.inner.batch(ops)


# -- the retry / breaker / degradation layer ----------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one client's resilient transport.

    Delays are *simulated* seconds.  ``deadline_s`` bounds the total
    backoff spent on one request; attempts themselves are priced by the
    cost model like any other request, so the deadline is a promise
    about added waiting, not total operation latency.
    """

    #: total tries per request (first attempt included).
    max_attempts: int = 4
    #: first backoff delay; subsequent delays grow exponentially.
    base_delay_s: float = 0.05
    #: cap on any single backoff delay.
    max_delay_s: float = 2.0
    #: total backoff budget per request; exhausted -> give up early.
    deadline_s: float = 10.0
    #: decorrelated jitter (uniform in [base, 3*previous]) on by default;
    #: False gives pure exponential doubling for byte-reproducible tests.
    jitter: bool = True
    #: consecutive failed attempts that open the circuit breaker.
    breaker_threshold: int = 5
    #: simulated seconds the breaker stays open before a half-open probe.
    breaker_cooldown_s: float = 5.0
    #: serve the last-known-good cached blob (flagged stale) when a read
    #: exhausts its retries or hits an open breaker.
    cache_fallback: bool = True
    #: byte budget of the last-known-good blob cache (None = unbounded).
    fallback_cache_bytes: int | None = 8 * 1024 * 1024
    #: seeds the jitter RNG: same seed -> identical retry schedule.
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


#: Circuit-breaker states, in escalation order (gauge values 0/1/2).
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half-open"
BREAKER_OPEN = "open"
_BREAKER_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class _NullScope:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


class ResilientTransport(ServerWrapper):
    """Deadline-bounded retries + circuit breaker + degraded reads.

    Sits between a :class:`~repro.fs.client.SharoesFilesystem` and any
    backend (including the fault injectors above).  All waiting happens
    on the *simulated* clock via the cost model's NETWORK bucket, so
    chaos runs report retry cost exactly like any other network time.

    Instrumentation: plain integer counters on the instance (adapted
    into a :class:`~repro.obs.metrics.MetricsRegistry` by
    ``bind_transport``) and, when a tracer is attached, an ``attempt``
    child span per attempt -- the first included -- carrying the
    attempt's backoff charge; failed attempts are error-marked.  An
    injected fault at attempt k therefore yields k+1 sibling attempt
    spans under the issuing ``network`` span, and the total attempt-span
    count reconciles with the ``attempts`` counter.
    """

    def __init__(self, inner: StorageServer,
                 policy: RetryPolicy | None = None,
                 cost: CostModel | None = None, tracer=None,
                 name: str | None = None,
                 clock: SimClock | None = None):
        super().__init__(inner, name or f"resilient({inner.name})")
        self.policy = policy or RetryPolicy()
        self._cost = cost
        # Breaker cooldowns and backoff must elapse on *one* simulated
        # clock.  A cost model's clock always wins (backoff is charged
        # through it); without a cost model, callers that share a clock
        # (the client's volume clock, the sharded router, tests) pass it
        # explicitly.  The old behaviour -- a private SimClock only this
        # transport's own backoff ever advanced -- meant an open breaker
        # could never cool down however much simulated time the rest of
        # the system spent.
        if cost is not None:
            self._clock = cost.clock
        elif clock is not None:
            self._clock = clock
        else:
            self._clock = SimClock()
        self._tracer = tracer
        self._rng = random.Random(self.policy.seed)
        self._fallback = LruCache(self.policy.fallback_cache_bytes
                                  if self.policy.cache_fallback else 0)
        # breaker state
        self.breaker_state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        # counters (see obs.metrics.bind_transport for the exported names)
        self.attempts = 0
        self.retries = 0
        self.failed_attempts = 0
        self.giveups = 0
        self.degraded_reads = 0
        self.breaker_opens = 0
        self.breaker_rejections = 0
        self.backoff_seconds = 0.0
        #: blob ids ever served from the stale fallback path.
        self.stale_blob_ids: set[BlobId] = set()

    # -- clock / instrumentation helpers -----------------------------------

    def _now(self) -> float:
        return self._clock.now

    def _sleep(self, seconds: float) -> None:
        """Backoff on the simulated clock; charged as NETWORK time so it
        lands in the CostBreakdown and the innermost open span."""
        self.backoff_seconds += seconds
        if self._cost is not None:
            self._cost.charge(NETWORK, seconds)
        else:
            self._clock.advance(seconds)

    def _attempt_scope(self, op: str, attempt: int, delay: float):
        """One span per attempt (attempt 1 included, delay 0.0)."""
        if self._tracer is None:
            return _NULL_SCOPE
        return self._tracer.span("attempt", op=op, attempt=attempt,
                                 delay=round(delay, 6))

    # -- circuit breaker ----------------------------------------------------

    def _breaker_allows(self) -> bool:
        if self.breaker_state != BREAKER_OPEN:
            return True
        if self._now() - self._opened_at >= self.policy.breaker_cooldown_s:
            self.breaker_state = BREAKER_HALF_OPEN
            return True
        return False

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self.breaker_state = BREAKER_CLOSED

    def _record_failure(self) -> None:
        self.failed_attempts += 1
        self._consecutive_failures += 1
        if (self.breaker_state == BREAKER_HALF_OPEN
                or self._consecutive_failures
                >= self.policy.breaker_threshold):
            if self.breaker_state != BREAKER_OPEN:
                self.breaker_opens += 1
            self.breaker_state = BREAKER_OPEN
            self._opened_at = self._now()

    # -- the retry loop -----------------------------------------------------

    def _execute(self, op: str, blob_id: BlobId, attempt_fn,
                 fallback_fn=None):
        policy = self.policy
        if not self._breaker_allows():
            self.breaker_rejections += 1
            if fallback_fn is not None:
                served = fallback_fn()
                if served is not None:
                    return served
            raise CircuitOpenError(
                f"{self.name}: circuit open for another "
                f"{self._opened_at + policy.breaker_cooldown_s - self._now():.3f}s "
                f"({op} {blob_id})")

        backoff_spent = 0.0
        delay = policy.base_delay_s
        wait = 0.0  # backoff before the next attempt (0 for the first)
        last_error: TransientStorageError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                if backoff_spent + wait > policy.deadline_s:
                    break  # deadline: give up before sleeping again
                self.retries += 1
            failed = False
            with self._attempt_scope(op, attempt, wait) as span:
                if wait:
                    self._sleep(wait)
                    backoff_spent += wait
                try:
                    self.attempts += 1
                    result = attempt_fn()
                except TransientStorageError as exc:
                    last_error = exc
                    failed = True
                    if span is not None:
                        span.error = type(exc).__name__
            if failed:
                self._record_failure()
                if attempt > 1:
                    delay = self._next_delay(delay)
                wait = delay
                continue
            self._record_success()
            return result

        self.giveups += 1
        if fallback_fn is not None:
            served = fallback_fn()
            if served is not None:
                return served
        raise TransientStorageError(
            f"{self.name}: {op} {blob_id} failed after "
            f"{policy.max_attempts} attempts "
            f"({backoff_spent:.3f}s backoff)") from last_error

    def _next_delay(self, previous: float) -> float:
        policy = self.policy
        if policy.base_delay_s == 0:
            return 0.0
        if policy.jitter:
            # Decorrelated jitter (Brooker, AWS architecture blog):
            # uniform in [base, 3 * previous], capped.
            candidate = self._rng.uniform(policy.base_delay_s,
                                          max(policy.base_delay_s,
                                              previous * 3.0))
        else:
            candidate = previous * 2.0
        return min(policy.max_delay_s, candidate)

    # -- degraded reads -----------------------------------------------------

    def _serve_stale(self, blob_id: BlobId):
        if not self.policy.cache_fallback:
            return None
        payload = self._fallback.get(blob_id)
        if payload is None:
            return None
        self.degraded_reads += 1
        self.stale_blob_ids.add(blob_id)
        return payload

    def consume_stale_flags(self) -> int:
        """Degraded reads served since the last call (for callers that
        must flag results stale, e.g. the chaos harness)."""
        count = self.degraded_reads - getattr(self, "_stale_mark", 0)
        self._stale_mark = self.degraded_reads
        return count

    # -- the StorageServer interface ----------------------------------------

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self._execute("put", blob_id,
                      lambda: self.inner.put(blob_id, payload))
        if self.policy.cache_fallback:
            # Write-through: this client's own upload is the freshest
            # possible fallback copy.
            self._fallback.put(blob_id, bytes(payload), len(payload))

    def get(self, blob_id: BlobId) -> bytes:
        degraded_before = self.degraded_reads
        payload = self._execute(
            "get", blob_id, lambda: self.inner.get(blob_id),
            fallback_fn=lambda: self._serve_stale(blob_id))
        if (self.policy.cache_fallback
                and self.degraded_reads == degraded_before):
            # A genuinely fresh fetch: refresh the fallback copy and
            # clear any stale mark from an earlier degraded serve.
            self._fallback.put(blob_id, payload, len(payload))
            self.stale_blob_ids.discard(blob_id)
        return payload

    def delete(self, blob_id: BlobId) -> None:
        self._fallback.invalidate(blob_id)
        self.stale_blob_ids.discard(blob_id)
        self._execute("delete", blob_id,
                      lambda: self.inner.delete(blob_id))

    def exists(self, blob_id: BlobId) -> bool:
        return self._execute("exists", blob_id,
                             lambda: self.inner.exists(blob_id))

    def put_if(self, blob_id: BlobId, payload: bytes,
               expected: bytes | None) -> None:
        """Retried CAS: transient faults are retried like any put, but a
        genuine conflict is terminal (:class:`CasConflictError` is a plain
        StorageError and propagates immediately).

        One subtlety: if an earlier attempt *applied* before its ack was
        lost, the retry sees a "conflict" whose current bytes are exactly
        what we tried to write -- that is success, not a lost race.
        """
        def attempt() -> None:
            try:
                self.inner.put_if(blob_id, payload, expected)
            except CasConflictError as exc:
                if exc.current == bytes(payload):
                    return  # our own earlier attempt landed
                raise

        self._execute("put_if", blob_id, attempt)
        if self.policy.cache_fallback:
            self._fallback.put(blob_id, bytes(payload), len(payload))

    def put_fenced(self, blob_id: BlobId, payload: bytes,
                   fence: BlobId, epoch: int) -> None:
        """Retried fenced put.  :class:`~repro.errors.StaleEpochError`
        is terminal and propagates unretried -- a revoked fence can only
        move further away."""
        self._execute("put_fenced", blob_id,
                      lambda: self.inner.put_fenced(blob_id, payload,
                                                    fence, epoch))
        if self.policy.cache_fallback:
            self._fallback.put(blob_id, bytes(payload), len(payload))

    def delete_fenced(self, blob_id: BlobId,
                      fence: BlobId, epoch: int) -> None:
        self._fallback.invalidate(blob_id)
        self.stale_blob_ids.discard(blob_id)
        self._execute("delete_fenced", blob_id,
                      lambda: self.inner.delete_fenced(blob_id, fence,
                                                       epoch))

    # -- batched requests ----------------------------------------------------

    def _absorb_subop(self, op: BatchOp, reply: BatchReply) -> None:
        """Fallback-cache upkeep for one terminally-resolved sub-op."""
        if not self.policy.cache_fallback:
            return
        if reply.status == "ok":
            if op.kind in ("put", "put_if", "put_fenced"):
                payload = op.payload or b""
                self._fallback.put(op.blob_id, bytes(payload),
                                   len(payload))
            elif op.kind == "get":
                payload = reply.payload or b""
                self._fallback.put(op.blob_id, payload, len(payload))
                self.stale_blob_ids.discard(op.blob_id)
            elif op.kind in ("delete", "delete_fenced"):
                self._fallback.invalidate(op.blob_id)
                self.stale_blob_ids.discard(op.blob_id)

    def batch(self, ops) -> list[BatchReply]:
        """Batched request with *partial-failure* retry.

        Sub-ops resolve in order, so each server answer is a terminal
        prefix (ok/missing/conflict, possibly ending in fenced or error)
        plus an unattempted tail.  The terminal prefix is committed to
        the merged result and **only the unapplied suffix is re-sent** on
        a transient failure -- applied sub-ops are never re-executed, so
        the applied/failed/remaining contract survives retries intact.

        Terminal outcomes: a ``fenced`` sub-reply ends the batch (a
        revoked fence only moves further away); a non-transient error
        ends it; exhausted retries leave a transient ``error`` sub-reply
        at the failure point.  The caller maps those onto
        ``StaleEpochError`` / ``PartialWriteError`` exactly as for
        single ops.  ``ClientCrashed`` propagates unhandled.
        """
        ops = list(ops)
        if not ops:
            return []
        policy = self.policy
        if not self._breaker_allows():
            self.breaker_rejections += 1
            raise CircuitOpenError(
                f"{self.name}: circuit open for another "
                f"{self._opened_at + policy.breaker_cooldown_s - self._now():.3f}s "
                f"(batch of {len(ops)})")

        merged: list[BatchReply | None] = [None] * len(ops)
        start = 0  # first sub-op not yet terminally resolved
        backoff_spent = 0.0
        delay = policy.base_delay_s
        attempt = 0
        failure_msg = "batch failed"

        def _giveup() -> list[BatchReply]:
            self.giveups += 1
            merged[start] = BatchReply(
                "error", transient=True,
                message=(f"{self.name}: batch sub-op {start} failed "
                         f"after {attempt} attempts: {failure_msg}"))
            for k in range(start + 1, len(ops)):
                merged[k] = BatchReply("unattempted")
            return merged  # type: ignore[return-value]

        wait = 0.0  # backoff before the next attempt (0 for the first)
        while True:
            attempt += 1
            self.attempts += 1
            retry_needed = False
            with self._attempt_scope("batch", attempt, wait) as span:
                if wait:
                    self._sleep(wait)
                    backoff_spent += wait
                try:
                    replies = self.inner.batch(ops[start:])
                except TransientStorageError as exc:
                    # Whole frame lost (e.g. the socket died): nothing in
                    # this slice is known-applied; re-send it verbatim.
                    # Sub-ops are idempotent (put_if via the echo below).
                    failure_msg = str(exc)
                    retry_needed = True
                    replies = []
                for j, reply in enumerate(replies):
                    i = start + j
                    op = ops[i]
                    if (reply.status == "conflict" and op.kind == "put_if"
                            and attempt > 1
                            and reply.payload == bytes(op.payload or b"")):
                        # Our own earlier attempt landed before its ack
                        # was lost: that is success, not a lost race.
                        reply = BatchReply("ok")
                    if reply.status in ("ok", "missing", "conflict"):
                        merged[i] = reply
                        self._absorb_subop(op, reply)
                        continue
                    if reply.status == "fenced":
                        merged[i] = reply
                        for k in range(i + 1, len(ops)):
                            merged[k] = BatchReply("unattempted")
                        self._record_success()
                        return merged  # type: ignore[return-value]
                    if reply.status == "error" and not reply.transient:
                        merged[i] = reply
                        for k in range(i + 1, len(ops)):
                            merged[k] = BatchReply("unattempted")
                        # The server answered; the transport is fine.
                        self._record_success()
                        return merged  # type: ignore[return-value]
                    if reply.status == "error":  # transient: retry suffix
                        start = i
                        failure_msg = reply.message
                        retry_needed = True
                    break  # unattempted tail (or the error we just noted)
                if not retry_needed:
                    if start + len(replies) < len(ops):
                        # Defensive: a short reply with no error marker.
                        start += len(replies)
                        failure_msg = "short batch reply"
                        retry_needed = True
                    else:
                        self._record_success()
                        return merged  # type: ignore[return-value]
                if span is not None:
                    span.error = "TransientStorageError"
            self._record_failure()
            if attempt >= policy.max_attempts:
                return _giveup()
            if backoff_spent + delay > policy.deadline_s:
                return _giveup()
            self.retries += 1
            wait = delay
            delay = self._next_delay(delay)
