"""Disk-backed SSP storage.

The in-memory :class:`~repro.storage.server.StorageServer` is perfect for
tests and benchmarks; a real SSP persists.  This backend keeps the same
interface while writing each blob to a file, so a volume survives process
restarts -- and so one can point a filesystem browser at the store and
see for oneself that there is nothing but ciphertext in it.

Blob ids map to filesystem paths as ``<root>/<kind>/<inode>/<selector>``
with the selector percent-encoded (selectors may contain ``/`` for group
key blobs).
"""

from __future__ import annotations

import pathlib
import urllib.parse
from typing import Iterator

from ..errors import BlobNotFound
from .blobs import BlobId
from .server import BatchOp, BatchReply, StorageServer, apply_batch


def _selector_to_name(selector: str) -> str:
    return urllib.parse.quote(selector, safe="")


def _name_to_selector(name: str) -> str:
    return urllib.parse.unquote(name)


class DiskStorageServer(StorageServer):
    """Persistent SSP: one file per encrypted blob."""

    def __init__(self, root: str | pathlib.Path, name: str = "disk-ssp"):
        super().__init__(name=name)
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, blob_id: BlobId) -> pathlib.Path:
        return (self.root / blob_id.kind / str(blob_id.inode)
                / _selector_to_name(blob_id.selector))

    def put(self, blob_id: BlobId, payload: bytes) -> None:
        self.stats.record_put(blob_id.kind, len(payload))
        path = self._path(blob_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)  # atomic within one filesystem

    def get(self, blob_id: BlobId) -> bytes:
        path = self._path(blob_id)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            self.stats.record_miss()
            raise BlobNotFound(str(blob_id)) from None
        self.stats.record_get(blob_id.kind, len(payload))
        return payload

    def delete(self, blob_id: BlobId) -> None:
        path = self._path(blob_id)
        freed = 0
        try:
            freed = path.stat().st_size
            path.unlink()
        except FileNotFoundError:
            freed = 0
        self.stats.record_delete(blob_id.kind, freed)

    def exists(self, blob_id: BlobId) -> bool:
        return self._path(blob_id).is_file()

    def _peek(self, blob_id: BlobId) -> bytes | None:
        try:
            return self._path(blob_id).read_bytes()
        except FileNotFoundError:
            return None

    def batch(self, ops: list[BatchOp]) -> list[BatchReply]:
        """Batched sub-ops with directory creation amortized per frame.

        Per-sub-op semantics are the generic :func:`apply_batch` ones;
        the only disk-specific win is touching each parent directory
        once per frame instead of once per blob write.
        """
        seen: set[pathlib.Path] = set()
        for op in ops:
            if op.kind in ("put", "put_if", "put_fenced"):
                parent = self._path(op.blob_id).parent
                if parent not in seen:
                    parent.mkdir(parents=True, exist_ok=True)
                    seen.add(parent)
        return apply_batch(self, ops)

    def _iter_ids(self) -> Iterator[BlobId]:
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for inode_dir in sorted(kind_dir.iterdir()):
                for blob_file in sorted(inode_dir.iterdir()):
                    if blob_file.suffix == ".tmp":
                        continue
                    yield BlobId(
                        kind=kind_dir.name, inode=int(inode_dir.name),
                        selector=_name_to_selector(blob_file.name))

    def list_kind(self, kind: str) -> Iterator[BlobId]:
        return (bid for bid in self._iter_ids() if bid.kind == kind)

    def blob_count(self) -> int:
        return sum(1 for _ in self._iter_ids())

    def stored_bytes(self, kind: str | None = None) -> int:
        return sum(self._path(bid).stat().st_size
                   for bid in self._iter_ids()
                   if kind is None or bid.kind == kind)

    def raw_blobs(self) -> dict[BlobId, bytes]:
        return {bid: self._path(bid).read_bytes()
                for bid in self._iter_ids()}
